//! Property-based tests of the sketch constructions.
//!
//! These exercise the paper's guarantees on randomly generated workloads:
//! the Lemma 3.2 stretch bound, the lower-bound property of every estimate,
//! the distributed/centralized equivalence (Section 3.2), and the size
//! accounting of Lemma 3.1.

use dsketch::prelude::*;
use dsketch::query::estimate_distance_best_common;
use netgraph::apsp::DistanceTable;
use netgraph::generators::{erdos_renyi, grid, random_tree, ring, GeneratorConfig};
use netgraph::Graph;
use proptest::prelude::*;

/// A connected random workload graph of 6..=36 nodes from a mix of families.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..=36, 0u64..5_000, 0usize..4).prop_map(|(n, seed, family)| match family {
        0 => erdos_renyi(n, 0.25, GeneratorConfig::uniform(seed, 1, 16)),
        1 => random_tree(n, GeneratorConfig::uniform(seed, 1, 16)),
        2 => ring(n.max(3), GeneratorConfig::uniform(seed, 1, 16)),
        _ => {
            let side = ((n as f64).sqrt().ceil() as usize).max(2);
            grid(side, side, GeneratorConfig::uniform(seed, 1, 16))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 3.2: estimates are between d(u,v) and (2k-1) d(u,v).
    #[test]
    fn centralized_tz_respects_stretch_bound((g, k, seed) in (arb_graph(), 1usize..4, 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(seed), 500).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let table = DistanceTable::exact(&g);
        let bound = (2 * k - 1) as u64;
        for (u, v, exact) in table.pairs() {
            let est = dsketch::query::estimate_distance(tz.sketches.sketch(u), tz.sketches.sketch(v)).unwrap();
            prop_assert!(est >= exact);
            prop_assert!(est <= bound * exact);
        }
    }

    /// Section 3.2: the distributed construction reproduces the centralized
    /// bunches and pivots exactly, given the same hierarchy.
    #[test]
    fn distributed_equals_centralized((g, k, seed) in (arb_graph(), 1usize..4, 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(seed), 500).unwrap();
        let centralized = CentralizedTz::build(&g, &h);
        let distributed = ThorupZwickScheme::new(k)
            .build_with_hierarchy(&g, h, &SchemeConfig::default())
            .unwrap();
        for u in g.nodes() {
            prop_assert_eq!(centralized.sketches.sketch(u), distributed.sketches.sketch(u));
        }
    }

    /// The best-common-landmark query is never worse than the level walk and
    /// never below the true distance.
    #[test]
    fn best_common_query_is_sandwiched((g, seed) in (arb_graph(), 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(2).with_seed(seed), 500).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let table = DistanceTable::exact(&g);
        for (u, v, exact) in table.pairs() {
            let walk = dsketch::query::estimate_distance(tz.sketches.sketch(u), tz.sketches.sketch(v)).unwrap();
            let best = estimate_distance_best_common(tz.sketches.sketch(u), tz.sketches.sketch(v)).unwrap();
            prop_assert!(best >= exact);
            prop_assert!(best <= walk);
        }
    }

    /// Lemma 3.1 (size): the label never stores more than one entry per
    /// (node, level) pair and the word count matches 2·(pivots + bunch).
    #[test]
    fn sketch_word_accounting_is_consistent((g, k, seed) in (arb_graph(), 1usize..4, 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(seed), 500).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        for s in tz.sketches.iter() {
            let pivots = s.pivots().iter().filter(|p| p.is_some()).count();
            prop_assert_eq!(s.words(), 2 * (pivots + s.bunch_size()));
            prop_assert!(s.bunch_size() <= n);
            s.check_invariants().unwrap();
        }
    }

    /// Level-0 bunches always contain the node itself (distance 0), because
    /// A_0 = V and d(u, u) = 0 beats every threshold.
    #[test]
    fn every_node_is_in_its_own_bunch((g, k, seed) in (arb_graph(), 1usize..4, 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(seed), 500).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        for u in g.nodes() {
            let s = tz.sketches.sketch(u);
            // u's own level may be any i; it appears in its bunch at that
            // level unless an A_{i+1} node sits at distance 0 with a smaller
            // id (impossible with positive weights).
            prop_assert_eq!(s.bunch_distance(u), Some(0));
            prop_assert_eq!(s.pivot(0).map(|p| p.1), Some(0));
        }
    }

    /// Estimates are symmetric: querying (u, v) equals querying (v, u).
    #[test]
    fn query_is_symmetric((g, seed) in (arb_graph(), 0u64..1_000)) {
        let n = g.num_nodes();
        let (h, _) = Hierarchy::sample_until_top_nonempty(n, &TzParams::new(3).with_seed(seed), 500).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        for u in g.nodes() {
            for v in g.nodes() {
                let a = dsketch::query::estimate_distance(tz.sketches.sketch(u), tz.sketches.sketch(v)).unwrap();
                let b = dsketch::query::estimate_distance(tz.sketches.sketch(v), tz.sketches.sketch(u)).unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Density nets: size bound and coverage hold on random workloads.
    #[test]
    fn density_net_properties_hold((g, seed) in (arb_graph(), 0u64..1_000), eps in 0.2f64..0.9) {
        let n = g.num_nodes();
        let net = DensityNet::sample_nonempty(n, eps, seed).unwrap();
        let table = DistanceTable::exact(&g);
        let report = net.verify(&g, &table);
        prop_assert_eq!(report.coverage_violations, 0);
        // Small-n regime: the sampling probability is clamped to 1 whenever
        // eps*n <= 5 ln n, so the size bound of Definition 4.1(2) trivially
        // holds as |N| = n <= (10/eps) ln n in that regime as well.
        prop_assert!((report.size as f64) <= report.size_bound + n as f64 * 1e-12 || report.size == n);
    }

    /// Theorem 4.3 sketches: stretch ≤ 3 on ε-far pairs, estimates are upper
    /// bounds everywhere.
    #[test]
    fn three_stretch_slack_guarantee((g, seed) in (arb_graph(), 0u64..1_000)) {
        let eps = 0.4;
        let table = DistanceTable::exact(&g);
        let sketches = ThreeStretchScheme::new(eps)
            .build(&g, &SchemeConfig::default().with_seed(seed))
            .unwrap()
            .sketches;
        for (u, v, exact) in table.pairs() {
            let est = sketches.estimate(u, v).unwrap();
            prop_assert!(est >= exact);
            if table.is_eps_far(u, v, eps) {
                prop_assert!(est <= 3 * exact);
            }
        }
    }
}
