//! Stable binary encoding of sketches — the wire/disk representation behind
//! the `dsketch-store` persistence layer.
//!
//! The paper's economics only pay off if the expensive CONGEST construction
//! is paid **once**: labels must outlive the process that built them.  This
//! module defines [`SketchCodec`], a hand-rolled, dependency-free binary
//! codec (little-endian, fixed-width fields, length-prefixed collections)
//! implemented for every piece of label state — [`DistKey`], [`BunchEntry`],
//! [`Sketch`], [`SketchSet`], [`Hierarchy`], [`DensityNet`], [`RunStats`] —
//! and for all four sketch-set families, so that a decoded sketch set is
//! **bit-identical** to the one that was encoded: same pivots, same bunches,
//! same estimates for every query.
//!
//! The encoding is *payload only*: framing, versioning, checksums and
//! corruption detection live one layer up, in the `dsketch-store` snapshot
//! container (`DSK1` format).  Keeping the codec flat and deterministic is
//! what makes the container's section CRCs meaningful.
//!
//! # Stability rules
//!
//! * Every field is little-endian and fixed-width (`u8`/`u32`/`u64`,
//!   `f64` as IEEE-754 bits); collections are length-prefixed with `u64`.
//! * Bunches encode in `BTreeMap` iteration order (ascending node id), so
//!   encoding is deterministic: `encode(decode(bytes)) == bytes`.
//! * Changing any encoding below is a **format break** and must bump the
//!   container's major version in `dsketch-store`.
//!
//! ```
//! use dsketch::codec::SketchCodec;
//! use dsketch::sketch::Sketch;
//! use netgraph::NodeId;
//!
//! let mut sketch = Sketch::new(NodeId(3), 2);
//! sketch.set_pivot(0, NodeId(3), 0);
//! sketch.insert_bunch(NodeId(5), 1, 9);
//!
//! let bytes = sketch.to_bytes();
//! assert_eq!(Sketch::from_bytes(&bytes).unwrap(), sketch);
//! ```

use crate::hierarchy::Hierarchy;
use crate::scheme::{SchemeSpec, TzSketchSet};
use crate::sketch::{BunchEntry, DistKey, Sketch, SketchSet};
use crate::slack::cdg::{CdgParams, CdgSketchSet};
use crate::slack::degrading::DegradingSketchSet;
use crate::slack::density_net::DensityNet;
use crate::slack::three_stretch::ThreeStretchSketchSet;
use congest_sim::RunStats;
use netgraph::NodeId;

/// Errors produced while decoding a binary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a field could be read.
    UnexpectedEof {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A field decoded to a value that violates the type's invariants.
    Invalid {
        /// What was being decoded.
        context: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// Decoding finished but bytes were left over (the payload length and
    /// content disagree — a framing bug or corruption).
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof {
                context,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of payload while decoding {context}: needed {needed} bytes, \
                 {remaining} remaining"
            ),
            CodecError::Invalid { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding finished")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian payload builder.  All [`SketchCodec`] encodings go through
/// this type, so the byte layout is defined in exactly one place.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the on-disk form is
    /// architecture-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(crate::cast::u64_from_usize(v));
    }

    /// Append an `f64` as its IEEE-754 bit pattern (NaN-safe: the exact
    /// bits round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(crate::cast::u8_from_bool(v));
    }

    /// Append a length-prefixed byte string (`u64` length, then the raw
    /// bytes) — the encoding the network protocol uses for error details
    /// and JSON payloads.
    pub fn put_byte_string(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian payload reader over a byte slice.
///
/// Every read names the field being decoded, so a truncated or corrupted
/// payload fails with a [`CodecError::UnexpectedEof`] that says *what* was
/// being read — not with a panic.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        let remaining = self.bytes.len() - self.pos;
        if remaining < n {
            return Err(CodecError::UnexpectedEof {
                context,
                needed: n,
                remaining,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Like [`Decoder::take`], but as a fixed-size array — the shape the
    /// `from_le_bytes` constructors want, with the length mismatch a typed
    /// error instead of a panicking slice conversion.
    fn take_array<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], CodecError> {
        let slice = self.take(N, context)?;
        slice
            .first_chunk::<N>()
            .copied()
            .ok_or(CodecError::UnexpectedEof {
                context,
                needed: N,
                remaining: slice.len(),
            })
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array(context)?))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self, context: &'static str) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take_array(context)?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array(context)?))
    }

    /// Read a `usize` stored as `u64`, rejecting values that do not fit.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            context,
            message: format!("{v} does not fit in usize"),
        })
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a bool byte, rejecting anything but `0` / `1`.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid {
                context,
                message: format!("bool byte must be 0 or 1, got {other}"),
            }),
        }
    }

    /// A length prefix for a collection whose elements occupy at least
    /// `min_element_bytes` each: rejects counts that could not possibly fit
    /// in the remaining payload, so corrupted counts fail fast instead of
    /// attempting a huge allocation.
    pub fn len_prefix(
        &mut self,
        min_element_bytes: usize,
        context: &'static str,
    ) -> Result<usize, CodecError> {
        let count = self.usize(context)?;
        let need = count.saturating_mul(min_element_bytes.max(1));
        if need > self.remaining() {
            return Err(CodecError::UnexpectedEof {
                context,
                needed: need,
                remaining: self.remaining(),
            });
        }
        Ok(count)
    }

    /// Read a length-prefixed byte string written by
    /// [`Encoder::put_byte_string`]: a `u64` length, then that many raw
    /// bytes.  The length is bounds-checked against the remaining payload
    /// before any allocation.
    pub fn byte_string(&mut self, context: &'static str) -> Result<Vec<u8>, CodecError> {
        let len = self.len_prefix(1, context)?;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the whole payload was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() > 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Stable binary encode/decode for sketch state.
///
/// Implementations must be **lossless and deterministic**: `decode` of an
/// `encode` yields a value equal to the original (same estimates for every
/// query), and `encode` of that value yields the same bytes.  See the
/// [module docs](self) for the layout rules.
pub trait SketchCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Encoder);

    /// Decode one value, consuming exactly the bytes `encode` produced.
    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Encoder::new();
        self.encode(&mut out);
        out.into_bytes()
    }

    /// Decode from a byte slice, requiring the slice to be exactly one
    /// encoded value (trailing bytes are an error).
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut input = Decoder::new(bytes);
        let value = Self::decode(&mut input)?;
        input.finish()?;
        Ok(value)
    }
}

impl SketchCodec for NodeId {
    fn encode(&self, out: &mut Encoder) {
        out.put_u32(self.0);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(input.u32("NodeId")?))
    }
}

impl SketchCodec for DistKey {
    fn encode(&self, out: &mut Encoder) {
        out.put_u64(self.distance);
        self.node.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let distance = input.u64("DistKey.distance")?;
        let node = NodeId::decode(input)?;
        Ok(DistKey { distance, node })
    }
}

impl SketchCodec for BunchEntry {
    fn encode(&self, out: &mut Encoder) {
        out.put_u32(self.level);
        out.put_u64(self.distance);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BunchEntry {
            level: input.u32("BunchEntry.level")?,
            distance: input.u64("BunchEntry.distance")?,
        })
    }
}

impl SketchCodec for Sketch {
    fn encode(&self, out: &mut Encoder) {
        self.owner.encode(out);
        out.put_usize(self.k);
        for pivot in self.pivots() {
            match pivot {
                Some((node, distance)) => {
                    out.put_u8(1);
                    node.encode(out);
                    out.put_u64(*distance);
                }
                None => out.put_u8(0),
            }
        }
        out.put_usize(self.bunch_size());
        for (&node, entry) in self.bunch() {
            node.encode(out);
            entry.encode(out);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let owner = NodeId::decode(input)?;
        // Each pivot slot is at least one flag byte.
        let k = input.len_prefix(1, "Sketch.k")?;
        if k == 0 {
            return Err(CodecError::Invalid {
                context: "Sketch.k",
                message: "k must be at least 1".to_string(),
            });
        }
        let mut sketch = Sketch::new(owner, k);
        for level in 0..k {
            if input.bool("Sketch.pivot flag")? {
                let node = NodeId::decode(input)?;
                let distance = input.u64("Sketch.pivot distance")?;
                sketch.set_pivot(level, node, distance);
            }
        }
        // node id (4) + level (4) + distance (8) per bunch entry.
        let bunch_len = input.len_prefix(16, "Sketch.bunch length")?;
        for _ in 0..bunch_len {
            let node = NodeId::decode(input)?;
            let entry = BunchEntry::decode(input)?;
            if crate::cast::usize_from_u32(entry.level) >= k {
                return Err(CodecError::Invalid {
                    context: "Sketch.bunch entry",
                    message: format!("bunch level {} out of range for k = {k}", entry.level),
                });
            }
            sketch.insert_bunch(node, entry.level, entry.distance);
        }
        Ok(sketch)
    }
}

impl SketchCodec for SketchSet {
    fn encode(&self, out: &mut Encoder) {
        out.put_usize(self.len());
        for sketch in self.iter() {
            sketch.encode(out);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // A sketch is at least owner (4) + k (8) + one pivot flag + empty
        // bunch length (8).
        let count = input.len_prefix(21, "SketchSet length")?;
        let mut sketches = Vec::with_capacity(count);
        for _ in 0..count {
            sketches.push(Sketch::decode(input)?);
        }
        Ok(SketchSet::new(sketches))
    }
}

impl SketchCodec for Hierarchy {
    fn encode(&self, out: &mut Encoder) {
        out.put_usize(self.k());
        out.put_f64(self.probability());
        out.put_usize(self.levels().len());
        for &level in self.levels() {
            out.put_i32(level);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let k = input.usize("Hierarchy.k")?;
        let probability = input.f64("Hierarchy.probability")?;
        let len = input.len_prefix(4, "Hierarchy levels length")?;
        let mut levels = Vec::with_capacity(len);
        for _ in 0..len {
            levels.push(input.i32("Hierarchy level")?);
        }
        Hierarchy::from_parts(levels, k, probability).map_err(|e| CodecError::Invalid {
            context: "Hierarchy",
            message: e.to_string(),
        })
    }
}

impl SketchCodec for DensityNet {
    fn encode(&self, out: &mut Encoder) {
        out.put_usize(self.num_nodes());
        out.put_f64(self.eps());
        out.put_usize(self.len());
        for &member in self.members() {
            member.encode(out);
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let num_nodes = input.usize("DensityNet.num_nodes")?;
        let eps = input.f64("DensityNet.eps")?;
        if !eps.is_finite() {
            return Err(CodecError::Invalid {
                context: "DensityNet.eps",
                message: format!("epsilon must be finite, got {eps}"),
            });
        }
        let len = input.len_prefix(4, "DensityNet members length")?;
        let mut members = Vec::with_capacity(len);
        for _ in 0..len {
            members.push(NodeId::decode(input)?);
        }
        Ok(DensityNet::from_members(num_nodes, eps, members))
    }
}

impl SketchCodec for CdgParams {
    fn encode(&self, out: &mut Encoder) {
        out.put_f64(self.eps);
        out.put_usize(self.k);
        out.put_u64(self.seed);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let eps = input.f64("CdgParams.eps")?;
        let k = input.usize("CdgParams.k")?;
        let seed = input.u64("CdgParams.seed")?;
        let params = CdgParams::new(eps, k).with_seed(seed);
        params.validate().map_err(|e| CodecError::Invalid {
            context: "CdgParams",
            message: e.to_string(),
        })?;
        Ok(params)
    }
}

impl SketchCodec for RunStats {
    fn encode(&self, out: &mut Encoder) {
        out.put_u64(self.rounds);
        out.put_u64(self.messages);
        out.put_u64(self.words);
        out.put_u64(self.max_messages_in_round);
        out.put_u64(self.active_rounds);
        out.put_u64(self.bandwidth_violations);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RunStats {
            rounds: input.u64("RunStats.rounds")?,
            messages: input.u64("RunStats.messages")?,
            words: input.u64("RunStats.words")?,
            max_messages_in_round: input.u64("RunStats.max_messages_in_round")?,
            active_rounds: input.u64("RunStats.active_rounds")?,
            bandwidth_violations: input.u64("RunStats.bandwidth_violations")?,
        })
    }
}

/// Scheme-spec tags used on disk (stable; new variants append, never renumber).
const SPEC_TZ: u8 = 0;
const SPEC_THREE_STRETCH: u8 = 1;
const SPEC_CDG: u8 = 2;
const SPEC_DEGRADING: u8 = 3;

fn encode_option_usize(value: Option<usize>, out: &mut Encoder) {
    match value {
        Some(v) => {
            out.put_u8(1);
            out.put_usize(v);
        }
        None => out.put_u8(0),
    }
}

fn decode_option_usize(
    input: &mut Decoder<'_>,
    context: &'static str,
) -> Result<Option<usize>, CodecError> {
    if input.bool(context)? {
        Ok(Some(input.usize(context)?))
    } else {
        Ok(None)
    }
}

impl SketchCodec for SchemeSpec {
    fn encode(&self, out: &mut Encoder) {
        match *self {
            SchemeSpec::ThorupZwick { k } => {
                out.put_u8(SPEC_TZ);
                out.put_usize(k);
            }
            SchemeSpec::ThreeStretch { eps } => {
                out.put_u8(SPEC_THREE_STRETCH);
                out.put_f64(eps);
            }
            SchemeSpec::Cdg { eps, k } => {
                out.put_u8(SPEC_CDG);
                out.put_f64(eps);
                out.put_usize(k);
            }
            SchemeSpec::Degrading { max_layers, max_k } => {
                out.put_u8(SPEC_DEGRADING);
                encode_option_usize(max_layers, out);
                encode_option_usize(max_k, out);
            }
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match input.u8("SchemeSpec tag")? {
            SPEC_TZ => Ok(SchemeSpec::ThorupZwick {
                k: input.usize("SchemeSpec.k")?,
            }),
            SPEC_THREE_STRETCH => Ok(SchemeSpec::ThreeStretch {
                eps: input.f64("SchemeSpec.eps")?,
            }),
            SPEC_CDG => Ok(SchemeSpec::Cdg {
                eps: input.f64("SchemeSpec.eps")?,
                k: input.usize("SchemeSpec.k")?,
            }),
            SPEC_DEGRADING => Ok(SchemeSpec::Degrading {
                max_layers: decode_option_usize(input, "SchemeSpec.max_layers")?,
                max_k: decode_option_usize(input, "SchemeSpec.max_k")?,
            }),
            other => Err(CodecError::Invalid {
                context: "SchemeSpec tag",
                message: format!("unknown scheme tag {other}"),
            }),
        }
    }
}

impl SketchCodec for TzSketchSet {
    fn encode(&self, out: &mut Encoder) {
        self.sketches.encode(out);
        self.hierarchy.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let sketches = SketchSet::decode(input)?;
        let hierarchy = Hierarchy::decode(input)?;
        Ok(TzSketchSet {
            sketches,
            hierarchy,
        })
    }
}

impl SketchCodec for ThreeStretchSketchSet {
    fn encode(&self, out: &mut Encoder) {
        self.net.encode(out);
        self.sketches.encode(out);
        self.stats.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(ThreeStretchSketchSet {
            net: DensityNet::decode(input)?,
            sketches: SketchSet::decode(input)?,
            stats: RunStats::decode(input)?,
        })
    }
}

impl SketchCodec for CdgSketchSet {
    fn encode(&self, out: &mut Encoder) {
        self.params.encode(out);
        self.net.encode(out);
        self.hierarchy.encode(out);
        self.sketches.encode(out);
        self.stats.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CdgSketchSet {
            params: CdgParams::decode(input)?,
            net: DensityNet::decode(input)?,
            hierarchy: Hierarchy::decode(input)?,
            sketches: SketchSet::decode(input)?,
            stats: RunStats::decode(input)?,
        })
    }
}

impl SketchCodec for DegradingSketchSet {
    fn encode(&self, out: &mut Encoder) {
        out.put_usize(self.layers.len());
        for layer in &self.layers {
            layer.encode(out);
        }
        self.stats.encode(out);
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // A layer is at least params (24) + empty net (24) + hierarchy
        // header (24) + empty sketch set (8) + stats (48).
        let count = input.len_prefix(128, "DegradingSketchSet layers length")?;
        let mut layers = Vec::with_capacity(count);
        for _ in 0..count {
            layers.push(CdgSketchSet::decode(input)?);
        }
        let stats = RunStats::decode(input)?;
        Ok(DegradingSketchSet { layers, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sketch(owner: u32) -> Sketch {
        let mut s = Sketch::new(NodeId(owner), 3);
        s.set_pivot(0, NodeId(owner), 0);
        s.set_pivot(2, NodeId(9), 14);
        s.insert_bunch(NodeId(owner), 0, 0);
        s.insert_bunch(NodeId(4), 1, 7);
        s.insert_bunch(NodeId(9), 2, 14);
        s
    }

    #[test]
    fn primitive_round_trips() {
        let key = DistKey::new(17, NodeId(3));
        assert_eq!(DistKey::from_bytes(&key.to_bytes()).unwrap(), key);
        let infinite = DistKey::INFINITE;
        assert_eq!(DistKey::from_bytes(&infinite.to_bytes()).unwrap(), infinite);

        let entry = BunchEntry {
            level: 2,
            distance: 99,
        };
        assert_eq!(BunchEntry::from_bytes(&entry.to_bytes()).unwrap(), entry);
    }

    #[test]
    fn sketch_round_trip_is_exact_and_deterministic() {
        let sketch = sample_sketch(7);
        let bytes = sketch.to_bytes();
        let decoded = Sketch::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, sketch);
        // encode(decode(bytes)) == bytes: the representation is canonical.
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn sketch_set_round_trip() {
        let set = SketchSet::new(vec![sample_sketch(0), sample_sketch(1)]);
        let decoded = SketchSet::from_bytes(&set.to_bytes()).unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn hierarchy_and_net_round_trip() {
        let h = Hierarchy::sample(50, &crate::hierarchy::TzParams::new(3).with_seed(5)).unwrap();
        assert_eq!(Hierarchy::from_bytes(&h.to_bytes()).unwrap(), h);

        let net = DensityNet::sample_nonempty(60, 0.3, 9).unwrap();
        assert_eq!(DensityNet::from_bytes(&net.to_bytes()).unwrap(), net);
    }

    #[test]
    fn stats_and_params_round_trip() {
        let stats = RunStats {
            rounds: 1,
            messages: 2,
            words: 3,
            max_messages_in_round: 4,
            active_rounds: 5,
            bandwidth_violations: 6,
        };
        assert_eq!(RunStats::from_bytes(&stats.to_bytes()).unwrap(), stats);

        let params = CdgParams::new(0.25, 2).with_seed(11);
        assert_eq!(CdgParams::from_bytes(&params.to_bytes()).unwrap(), params);
    }

    #[test]
    fn scheme_spec_round_trips_every_variant() {
        let specs = [
            SchemeSpec::thorup_zwick(3),
            SchemeSpec::three_stretch(0.25),
            SchemeSpec::cdg(0.2, 2),
            SchemeSpec::degrading(),
            SchemeSpec::Degrading {
                max_layers: Some(3),
                max_k: Some(4),
            },
        ];
        for spec in specs {
            assert_eq!(SchemeSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
        }
        assert!(matches!(
            SchemeSpec::from_bytes(&[200]),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn truncated_payloads_fail_with_eof_not_panic() {
        let bytes = sample_sketch(3).to_bytes();
        for cut in 0..bytes.len() {
            let err = Sketch::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::UnexpectedEof { .. } | CodecError::Invalid { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_sketch(3).to_bytes();
        bytes.push(0xFF);
        assert!(matches!(
            Sketch::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn absurd_length_prefixes_fail_fast() {
        // A corrupted count must be rejected by the remaining-bytes bound,
        // not attempted as an allocation.
        let mut out = Encoder::new();
        out.put_usize(u32::MAX as usize);
        let err = SketchSet::from_bytes(out.as_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn bunch_levels_are_validated_against_k() {
        let mut out = Encoder::new();
        NodeId(0).encode(&mut out); // owner
        out.put_usize(1); // k = 1
        out.put_u8(0); // no pivot
        out.put_usize(1); // one bunch entry
        NodeId(2).encode(&mut out);
        BunchEntry {
            level: 9,
            distance: 1,
        }
        .encode(&mut out);
        let err = Sketch::from_bytes(out.as_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::Invalid { .. }), "{err}");
    }

    #[test]
    fn decoder_rejects_bad_bools_and_oversize_usize() {
        let mut d = Decoder::new(&[7]);
        assert!(matches!(d.bool("flag"), Err(CodecError::Invalid { .. })));
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let mut d = Decoder::new(e.as_bytes());
        // On 64-bit targets u64::MAX fits in usize; the interesting part is
        // that it round-trips without wrapping.
        assert_eq!(d.usize("count").unwrap(), u64::MAX as usize);
    }
}
