//! A small, dependency-free worker pool for batching independent graph
//! explorations across threads — the engine room of the parallel
//! construction path ([`crate::build`]).
//!
//! Every sketch construction in this workspace decomposes into *independent
//! per-seed explorations* over one shared, read-only [`netgraph::Graph`]:
//! one truncated Dijkstra per cluster source in Thorup–Zwick, one
//! exploration per density-net node in the 3-stretch scheme, one restricted
//! hierarchy per CDG layer.  Those explorations never observe each other, so
//! they can be executed on any number of worker threads — as long as the
//! *merge* of their results is deterministic.
//!
//! The contract of this module is exactly that determinism guarantee:
//!
//! * [`parallel_map`] executes `f` over a work list on `threads` workers and
//!   returns the results **in input order**, regardless of which worker
//!   computed which item or in what order items finished.  Work is handed
//!   out through a single atomic counter (work stealing), so stragglers are
//!   balanced automatically; each worker accumulates `(index, result)` pairs
//!   privately and the results are re-assembled by index after the scoped
//!   threads join.
//! * With `threads == 1` no threads are spawned at all — the call is a plain
//!   sequential loop.  Because the output only depends on the input order,
//!   `parallel_map(k, …)` is **bit-identical** to `parallel_map(1, …)` for
//!   every `k` (the property the `parallel_build` integration suite checks
//!   end-to-end, down to the serialized `DSK1` snapshot bytes).
//!
//! Threads are plain `std::thread::scope` workers: no unsafe code, no shared
//! mutable state beyond the atomic work counter, no dependencies.
//!
//! ```
//! use dsketch::parallel::parallel_map;
//!
//! let squares = parallel_map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The number of hardware threads available to this process (at least 1).
///
/// This is what a `threads` knob of `0` ("use all available parallelism")
/// resolves to — see [`resolve_threads`].
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Resolve a user-facing `threads` knob: `0` means "all available
/// parallelism", anything else is used as given.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// Spawn a named, long-lived worker thread — the one blessed spawn path of
/// the workspace (the `no-raw-thread-spawn` project lint keeps
/// `std::thread` spawns out of everything but this module, so thread
/// naming and failure policy live in one place).
///
/// The name shows up in panic messages, debuggers and `/proc`, which is
/// what makes a wedged serving shard diagnosable in production.
///
/// # Panics
///
/// Panics if the OS refuses to spawn the thread (resource exhaustion) —
/// there is no meaningful recovery for a worker that never existed.
pub fn spawn_named<T, F>(name: &str, f: F) -> std::thread::JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        // dsketch-lint: allow(no-unwrap-in-hot-path): OS spawn failure is resource exhaustion — no recovery without a thread
        .unwrap_or_else(|e| panic!("failed to spawn thread `{name}`: {e}"))
}

/// Map `f` over `items` on up to `threads` worker threads, returning the
/// results in input order.
///
/// `f` receives the item's index and a reference to the item.  See the
/// [module docs](self) for the determinism contract; `threads` is resolved
/// with [`resolve_threads`] and clamped to the number of items.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(threads, items, || (), |(), index, item| f(index, item))
}

/// Like [`parallel_map`], but each worker thread carries private scratch
/// state created by `init` — reusable buffers that would otherwise be
/// re-allocated per item (e.g. the distance array of a truncated Dijkstra).
///
/// The scratch state must never influence results (it is per-*worker*, and
/// which worker runs which item is scheduling-dependent); it exists purely
/// to amortize allocations.
pub fn parallel_map_with<S, T, R, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(&mut state, index, item))
            .collect();
    }

    // Work stealing over one atomic cursor: each worker claims the next
    // unclaimed index until the list is drained, keeping all workers busy
    // even when per-item costs vary wildly (cluster sizes do).
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        out.push((index, f(&mut state, index, &items[index])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // dsketch-lint: allow(no-unwrap-in-hot-path): join propagates a worker panic — there is no error to type
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });

    // Deterministic merge: place every result back at its input index.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (index, result) in bucket {
            debug_assert!(slots[index].is_none(), "index {index} computed twice");
            slots[index] = Some(result);
        }
    }
    slots
        .into_iter()
        // dsketch-lint: allow(no-unwrap-in-hot-path): merge invariant — every index in 0..n is claimed by exactly one worker
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// Wall-clock timing of one batched phase of a parallel build.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase label, e.g. `"tz/clusters"` or `"3stretch/net-explorations"`.
    pub phase: String,
    /// Number of independent explorations batched in this phase.
    pub items: usize,
    /// Wall-clock seconds the phase took.
    pub seconds: f64,
}

/// Per-phase wall-clock timings of one parallel build, surfaced in
/// [`crate::scheme::BuildOutcome::timings`].
///
/// The CONGEST-simulated engine reports its cost in rounds/messages/words
/// ([`congest_sim::RunStats`]); the parallel engine's currency is wall-clock
/// time per batched phase, which is what experiment `e14` and the
/// `parallel_build` criterion bench report.  Timings are measurement
/// metadata: they vary run to run and are **not** part of the persisted
/// snapshot (snapshot bytes stay bit-identical across thread counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildTimings {
    /// Resolved worker-thread count the build ran with (`0` when the build
    /// went through the CONGEST simulator and recorded no phase timings).
    pub threads: usize,
    /// One entry per batched phase, in execution order.
    pub phases: Vec<PhaseTiming>,
}

impl BuildTimings {
    /// Timings for a build about to run on `threads` resolved workers.
    pub fn new(threads: usize) -> Self {
        BuildTimings {
            threads,
            phases: Vec::new(),
        }
    }

    /// Record a phase that started at `started` and just finished.
    ///
    /// Besides appending to this build's own phase list, the observation
    /// feeds the process-global [`dsketch_obs::global`] registry
    /// (`dsketch_build_phase_nanos{phase=…}` and
    /// `dsketch_build_items_total{phase=…}`), so long-running processes can
    /// expose cumulative build cost over every build they ever ran.
    pub fn record(&mut self, phase: &str, items: usize, started: Instant) {
        let elapsed = started.elapsed();
        let registry = dsketch_obs::global();
        let labels: &[(&str, &str)] = &[("phase", phase)];
        registry
            .histogram_with(
                "dsketch_build_phase_nanos",
                "Wall time of one batched build phase.",
                labels,
            )
            .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        registry
            .counter_with(
                "dsketch_build_items_total",
                "Independent explorations batched across build phases.",
                labels,
            )
            .add(items as u64);
        self.phases.push(PhaseTiming {
            phase: phase.to_string(),
            items,
            seconds: elapsed.as_secs_f64(),
        });
    }

    /// Append another build's phases under a `prefix/` label (used by the
    /// layered gracefully-degrading build to keep per-layer phases apart).
    pub fn absorb_prefixed(&mut self, prefix: &str, other: BuildTimings) {
        for mut timing in other.phases {
            timing.phase = format!("{prefix}{}", timing.phase);
            self.phases.push(timing);
        }
    }

    /// Total wall-clock seconds across all recorded phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// True if this build recorded phase timings (i.e. it ran on the
    /// parallel engine).
    pub fn is_recorded(&self) -> bool {
        !self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = parallel_map(threads, &items, |index, &x| {
                assert_eq!(index, x);
                x * 3 + 1
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        assert!(available_parallelism() >= 1);
        // threads = 0 must still work end to end.
        let got = parallel_map(0, &[10u32, 20, 30], |_, &x| x + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u8], |_, &x| x * 2), vec![14]);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's scratch counts the items *it* processed; the sum over
        // workers must cover the whole list exactly once.
        let items: Vec<u32> = (0..100).collect();
        let processed = AtomicUsize::new(0);
        let results = parallel_map_with(
            4,
            &items,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                processed.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(results, items);
        assert_eq!(processed.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn timings_accumulate_and_prefix() {
        let mut t = BuildTimings::new(4);
        assert!(!t.is_recorded());
        t.record("pivots", 3, Instant::now());
        let mut layered = BuildTimings::new(4);
        layered.record("clusters", 9, Instant::now());
        t.absorb_prefixed("layer0/", layered);
        assert!(t.is_recorded());
        assert_eq!(t.phases.len(), 2);
        assert_eq!(t.phases[1].phase, "layer0/clusters");
        assert_eq!(t.phases[1].items, 9);
        assert!(t.total_seconds() >= 0.0);
    }
}
