//! Checked and intent-bearing integer conversions for byte-layout code.
//!
//! The codec, the `DSK1` container and the flat CSR arrays move values
//! between `usize` (in-memory indices), `u32` (on-disk ids and offsets)
//! and `u64` (on-disk lengths) constantly.  A bare `as` cast erases the
//! difference between the three situations that arise:
//!
//! * **widening** (`u32 → usize`, `usize → u64`) — always lossless on the
//!   platforms this workspace supports, but `as` does not *say* so;
//! * **narrowing** (`usize → u32`, `u64 → usize`) — can truncate, and a
//!   silent wrap in offset arithmetic corrupts a snapshot without any
//!   error until query time;
//! * **representation** (`bool → u8`) — a definition, not an arithmetic
//!   conversion.
//!
//! This module gives each its own named helper: fallible narrowing returns
//! a typed [`CastError`], widening helpers are infallible `const fn`s with
//! a compile-time witness, and the `checked-casts` project lint
//! (`dsketch-analyze lint`) keeps bare `as` casts out of the byte-layout
//! files so every conversion states which case it is.

/// A narrowing conversion whose value did not fit the target type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CastError {
    /// The value that failed to convert (widened for reporting).
    pub value: u64,
    /// Name of the target type.
    pub target: &'static str,
}

impl std::fmt::Display for CastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} does not fit in {}", self.value, self.target)
    }
}

impl std::error::Error for CastError {}

// The widening helpers below assume the platform word is between 32 and
// 64 bits — true of every tier-1 Rust target.  The asserts make the
// assumption a compile error, not a silent truncation, on anything else.
const _: () = assert!(std::mem::size_of::<usize>() <= 8, "usize wider than u64");
const _: () = assert!(std::mem::size_of::<usize>() >= 4, "usize narrower than u32");

/// Narrow a `usize` to `u32`, failing when the value does not fit —
/// the on-disk form of array offsets and counts.
#[inline]
pub fn to_u32(v: usize) -> Result<u32, CastError> {
    u32::try_from(v).map_err(|_| CastError {
        value: u64_from_usize(v),
        target: "u32",
    })
}

/// Narrow a `u64` to `usize`, failing when the value does not fit —
/// turning an on-disk length back into an index.
#[inline]
pub fn to_usize(v: u64) -> Result<usize, CastError> {
    usize::try_from(v).map_err(|_| CastError {
        value: v,
        target: "usize",
    })
}

/// Widen a `u32` to `usize`.  Infallible: the platform witness above
/// guarantees `usize` is at least 32 bits.
#[inline]
pub const fn usize_from_u32(v: u32) -> usize {
    // dsketch-lint: allow(checked-casts): this module is the blessed home of the raw casts
    v as usize
}

/// Widen a `usize` to `u64`.  Infallible: the platform witness above
/// guarantees `usize` is at most 64 bits.
#[inline]
pub const fn u64_from_usize(v: usize) -> u64 {
    // dsketch-lint: allow(checked-casts): this module is the blessed home of the raw casts
    v as u64
}

/// A bool as its one-byte wire form (`0` / `1`).
#[inline]
pub const fn u8_from_bool(v: bool) -> u8 {
    v as u8
}

/// The low byte of a `u32` — *deliberate* truncation (table indexing,
/// byte extraction), named so it cannot be mistaken for a lossless
/// conversion.
#[inline]
pub const fn low_byte(v: u32) -> u8 {
    // dsketch-lint: allow(checked-casts): this module is the blessed home of the raw casts
    (v & 0xFF) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowing_succeeds_in_range() {
        assert_eq!(to_u32(0), Ok(0));
        assert_eq!(to_u32(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(to_usize(0), Ok(0));
        assert_eq!(to_usize(12345), Ok(12345));
    }

    #[test]
    fn narrowing_fails_with_a_typed_error() {
        let err = to_u32(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.value, u32::MAX as u64 + 1);
        assert_eq!(err.target, "u32");
        assert!(err.to_string().contains("does not fit in u32"));
    }

    #[test]
    fn widening_round_trips() {
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
        assert_eq!(u64_from_usize(usize::MAX), usize::MAX as u64);
        assert_eq!(u8_from_bool(true), 1);
        assert_eq!(u8_from_bool(false), 0);
    }
}
