//! `dsketch` — distance sketches for distributed networks.
//!
//! This crate is the core of a from-scratch reproduction of
//! *Efficient Computation of Distance Sketches in Distributed Networks*
//! (Atish Das Sarma, Michael Dinitz, Gopal Pandurangan — SPAA 2012,
//! arXiv:1112.1210).  The paper shows how to compute, in the CONGEST model
//! of distributed computation, the following families of distance sketches:
//!
//! | scheme | stretch | size (words) | rounds | paper |
//! |---|---|---|---|---|
//! | [`ThorupZwickScheme`] | `2k − 1` | `O(k n^{1/k} log n)` | `O(k n^{1/k} S log n)` | Thm 1.1 / 3.8 |
//! | [`ThreeStretchScheme`] | `3` with ε-slack | `O((1/ε) log n)` | `O(S (1/ε) log n)` | Thm 4.3 |
//! | [`CdgScheme`] | `8k − 1` with ε-slack | `O(k (1/ε log n)^{1/k} log n)` | `O(k S (1/ε log n)^{1/k} log n)` | Thm 1.2 / 4.6 |
//! | [`DegradingScheme`] | `O(log 1/ε)` for every ε | `O(log^4 n)` | `O(S log^4 n)` | Thm 1.3 / 4.8 |
//!
//! where `S` is the shortest-path diameter and a *word* is `O(log n)` bits.
//!
//! # One API over four schemes
//!
//! All four constructions share one shape — *build labels in CONGEST
//! rounds, then answer distance queries from two labels alone* — and the
//! public API is organized around exactly that shape:
//!
//! * [`SketchScheme`] — the construction side.  Each
//!   scheme is a cheap value type (`ThorupZwickScheme { k: 3 }`) whose
//!   `build(&graph, &SchemeConfig)` runs the distributed construction and
//!   returns a [`BuildOutcome`]: the sketches plus the
//!   shared round/message/word statistics every theorem is stated in.
//! * [`DistanceOracle`] — the query side.  Every
//!   sketch-set type answers `estimate(u, v)` from the two labels alone and
//!   reports its per-node size in CONGEST words.
//! * [`SchemeSpec`] / [`SketchBuilder`]
//!   — runtime scheme selection.  A spec can be parsed from a string
//!   (`"tz:3"`, `"cdg:0.2,2"`), built fluently, and queried through
//!   `Box<dyn DistanceOracle>`, so evaluation harnesses, benches and serving
//!   layers are scheme-agnostic.
//!
//! # Quick start
//!
//! ```
//! use dsketch::prelude::*;
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//! use netgraph::NodeId;
//!
//! // A 64-node random network with weighted edges.
//! let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
//!
//! // Build Thorup–Zwick sketches (k = 3 ⇒ stretch ≤ 5) with the
//! // distributed CONGEST construction.
//! let outcome = SketchBuilder::thorup_zwick(3).seed(42).build(&graph).unwrap();
//! println!(
//!     "built in {} rounds, {} messages; ≤ {} words per node",
//!     outcome.stats.rounds,
//!     outcome.stats.messages,
//!     outcome.sketches.max_words(),
//! );
//!
//! // Estimate the distance between two nodes from their sketches alone.
//! let estimate = outcome.sketches.estimate(NodeId(0), NodeId(40)).unwrap();
//! let exact = netgraph::shortest_path::dijkstra(&graph, NodeId(0)).distance(NodeId(40));
//! assert!(estimate >= exact);
//! assert!(estimate <= 5 * exact);
//!
//! // The same code drives any scheme — pick one at runtime:
//! let spec = SchemeSpec::parse("cdg:0.3,2").unwrap();
//! let slack = SketchBuilder::new(spec).seed(42).build(&graph).unwrap();
//! assert!(slack.sketches.estimate(NodeId(0), NodeId(40)).unwrap() >= exact);
//! ```
//!
//! Code that knows the scheme at compile time uses the typed scheme structs
//! and gets the concrete sketch-set type back (with scheme-specific extras
//! like the sampled hierarchy or density net):
//!
//! ```
//! use dsketch::prelude::*;
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//!
//! let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
//! let outcome = ThreeStretchScheme::new(0.3)
//!     .build(&graph, &SchemeConfig::default().with_seed(9))
//!     .unwrap();
//! println!("{} monitors sampled", outcome.sketches.net.len());
//! ```
//!
//! # Crate layout
//!
//! * [`scheme`] — the unified construction API: `SketchScheme`, the four
//!   scheme types, `SchemeSpec`, `SchemeConfig`, `SketchBuilder`.
//! * [`oracle`] — the unified query API: `DistanceOracle`.
//! * [`hierarchy`] — the sampled level hierarchy `A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}`
//!   shared by the centralized and distributed constructions.
//! * [`sketch`] — the label data structure `L(u)` (pivots, bunch, distances)
//!   and its word-size accounting.
//! * [`centralized`] — the centralized Thorup–Zwick construction, used as the
//!   correctness baseline the distributed algorithm is compared against.
//! * [`distributed`] — the paper's contribution: the phased modified
//!   Bellman–Ford construction (Algorithm 2), the known-`S` synchronizer of
//!   Section 3.2 and the ECHO/COMPLETE termination detection of Section 3.3.
//! * [`build`] — the direct **parallel** construction engine: the same
//!   sketches as the CONGEST simulation, computed by batching the
//!   independent per-seed explorations across worker threads
//!   (`SchemeConfig::engine = BuildEngine::Parallel`, `threads` knob);
//!   bit-identical output for every thread count.
//! * [`parallel`] — the dependency-free worker pool under [`build`]
//!   (deterministic-merge `parallel_map`, per-phase wall-clock timings).
//! * [`query`] — distance estimation from two sketches (Lemma 3.2 and the
//!   slack/degrading variants).
//! * [`flat`] — the frozen CSR query representation ([`FlatSketchSet`]):
//!   labels packed into contiguous arrays at `freeze()` time, answering the
//!   same queries allocation-free at hardware speed — the serving layers'
//!   default in-memory layout.
//! * [`slack`] — Section 4: ε-density nets, 3-stretch slack sketches,
//!   (ε, k)-CDG sketches, and gracefully degrading sketches.
//! * [`eval`] — stretch evaluation over any `DistanceOracle` (worst-case /
//!   average / percentiles, slack-aware variants).
//! * [`baseline`] — exact-oracle and landmark baselines for comparison.
//! * [`codec`] — the stable binary encoding of every label type
//!   ([`SketchCodec`]), the payload layer under the `dsketch-store`
//!   snapshot format (build once, save, serve from disk forever).
//! * [`cast`] — checked and intent-bearing integer conversions; the
//!   `checked-casts` project lint keeps bare `as` casts out of the
//!   byte-layout code in favor of these helpers.
//!
//! # Migrating from the deprecated `run()` entry points
//!
//! The original per-scheme entry points (`DistributedTz`,
//! `DistributedThreeStretch`, `DistributedCdg`, `DistributedDegrading`) are
//! kept as `#[deprecated]` shims and still produce bit-identical sketches,
//! but new code should use the [`SketchScheme`] implementations, which share
//! one config ([`SchemeConfig`]) and one result shape ([`BuildOutcome`])
//! across all four families:
//!
//! | deprecated call | replacement |
//! |---|---|
//! | `DistributedTz::run(g, &TzParams::new(k).with_seed(s), cfg)` | [`ThorupZwickScheme`]`::new(k).build(g, &config)` |
//! | `DistributedTz::try_run(…)` | same — `SketchScheme::build` is already fallible |
//! | `DistributedTz::run_with_hierarchy(g, h, cfg)` / `try_run_with_hierarchy` | [`ThorupZwickScheme::build_with_hierarchy`]`(g, h, &config)` |
//! | `DistributedThreeStretch::run(g, eps, seed, congest, max)` | [`ThreeStretchScheme`]`::new(eps).build(g, &config)` |
//! | `DistributedCdg::run(g, params, cfg)` | [`CdgScheme`]`::new(eps, k).build(g, &config)` |
//! | `DistributedDegrading::run(g, params, cfg)` | [`DegradingScheme`]`::new().build(g, &config)` |
//! | `evaluate_sketches` / `evaluate_sketches_sampled` | [`evaluate_oracle`] / [`evaluate_oracle_sampled`] (a `SketchSet` **is** a `DistanceOracle`) |
//!
//! The old `run()` shims return the per-scheme result structs
//! (`TzBuildResult`, bare sketch sets); the scheme API returns the same data
//! inside a [`BuildOutcome`] — `result.sketches` / `result.stats` map
//! directly onto `outcome.sketches` / `outcome.stats`.  When the scheme is
//! only known at runtime, go through [`SchemeSpec`] / [`SketchBuilder`]
//! instead of matching on families yourself.  Per-shim equivalence tests
//! (`deprecated_shim_matches_scheme_api`) pin the old and new paths to the
//! same output for as long as the shims exist.
//!
//! [`ThorupZwickScheme::build_with_hierarchy`]: scheme::ThorupZwickScheme::build_with_hierarchy
//! [`evaluate_oracle`]: eval::evaluate_oracle
//! [`evaluate_oracle_sampled`]: eval::evaluate_oracle_sampled

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod build;
pub mod cast;
pub mod centralized;
pub mod codec;
pub mod distributed;
pub mod error;
pub mod eval;
pub mod flat;
pub mod hierarchy;
pub mod oracle;
pub mod parallel;
pub mod query;
pub mod scheme;
pub mod sketch;
pub mod slack;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use crate::centralized::CentralizedTz;
    pub use crate::codec::{CodecError, Decoder, Encoder, SketchCodec};
    pub use crate::distributed::{DistributedTz, DistributedTzConfig, SyncMode, TzBuildResult};
    pub use crate::error::SketchError;
    pub use crate::eval::{
        evaluate_oracle, evaluate_oracle_sampled, evaluate_oracle_with_slack, SlackReport,
        StretchReport,
    };
    pub use crate::flat::{FlatSketchSet, Freeze, QueryRule};
    pub use crate::hierarchy::{Hierarchy, TzParams};
    pub use crate::oracle::DistanceOracle;
    pub use crate::parallel::{BuildTimings, PhaseTiming};
    pub use crate::query::{estimate_distance, estimate_distance_slack};
    pub use crate::scheme::{
        BuildEngine, BuildOutcome, CdgScheme, DegradingScheme, DynBuildOutcome, SchemeConfig,
        SchemeSpec, SketchBuilder, SketchScheme, ThorupZwickScheme, ThreeStretchScheme,
        TzSketchSet,
    };
    pub use crate::sketch::{Sketch, SketchSet};
    pub use crate::slack::cdg::{CdgParams, CdgSketchSet, DistributedCdg};
    pub use crate::slack::degrading::{DegradingParams, DegradingSketchSet, DistributedDegrading};
    pub use crate::slack::density_net::DensityNet;
    pub use crate::slack::three_stretch::{DistributedThreeStretch, ThreeStretchSketchSet};
    // The CONGEST engine types every SchemeConfig embeds, re-exported so
    // downstream crates don't need a congest-sim dependency just to
    // configure a build.
    pub use congest_sim::{CongestConfig, RunStats};
}

pub use prelude::*;
