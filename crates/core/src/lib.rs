//! `dsketch` — distance sketches for distributed networks.
//!
//! This crate is the core of a from-scratch reproduction of
//! *Efficient Computation of Distance Sketches in Distributed Networks*
//! (Atish Das Sarma, Michael Dinitz, Gopal Pandurangan — SPAA 2012,
//! arXiv:1112.1210).  The paper shows how to compute, in the CONGEST model
//! of distributed computation, the following families of distance sketches:
//!
//! | construction | stretch | size (words) | rounds | paper |
//! |---|---|---|---|---|
//! | Thorup–Zwick sketches | `2k − 1` | `O(k n^{1/k} log n)` | `O(k n^{1/k} S log n)` | Thm 1.1 / 3.8 |
//! | 3-stretch slack sketches | `3` with ε-slack | `O((1/ε) log n)` | `O(S (1/ε) log n)` | Thm 4.3 |
//! | (ε, k)-CDG sketches | `8k − 1` with ε-slack | `O(k (1/ε log n)^{1/k} log n)` | `O(k S (1/ε log n)^{1/k} log n)` | Thm 1.2 / 4.6 |
//! | gracefully degrading | `O(log 1/ε)` for every ε | `O(log^4 n)` | `O(S log^4 n)` | Thm 1.3 / 4.8 |
//!
//! where `S` is the shortest-path diameter and a *word* is `O(log n)` bits.
//!
//! # Crate layout
//!
//! * [`hierarchy`] — the sampled level hierarchy `A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}`
//!   shared by the centralized and distributed constructions.
//! * [`sketch`] — the sketch data structure `L(u)` (pivots, bunch, distances)
//!   and its word-size accounting.
//! * [`centralized`] — the centralized Thorup–Zwick construction, used as the
//!   correctness baseline the distributed algorithm is compared against.
//! * [`distributed`] — the paper's contribution: the phased modified
//!   Bellman–Ford construction (Algorithm 2), the known-`S` synchronizer of
//!   Section 3.2 and the ECHO/COMPLETE termination detection of Section 3.3.
//! * [`query`] — distance estimation from two sketches (Lemma 3.2 and the
//!   slack/degrading variants).
//! * [`slack`] — Section 4: ε-density nets, 3-stretch slack sketches,
//!   (ε, k)-CDG sketches, and gracefully degrading sketches.
//! * [`eval`] — stretch evaluation harness (worst-case / average /
//!   percentiles, slack-aware variants) used by the experiment harness.
//! * [`baseline`] — exact-oracle and landmark baselines for comparison.
//!
//! # Quick start
//!
//! ```
//! use dsketch::prelude::*;
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//!
//! // A 64-node random network with weighted edges.
//! let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
//!
//! // Build Thorup–Zwick sketches (k = 3 ⇒ stretch ≤ 5) with the
//! // distributed CONGEST construction.
//! let params = TzParams::new(3).with_seed(42);
//! let result = DistributedTz::run(&graph, &params, DistributedTzConfig::default());
//!
//! // Estimate the distance between two nodes from their sketches alone.
//! let estimate = estimate_distance(
//!     &result.sketches.sketch(netgraph::NodeId(0)),
//!     &result.sketches.sketch(netgraph::NodeId(40)),
//! ).expect("nodes are connected");
//! let exact = netgraph::shortest_path::dijkstra(&graph, netgraph::NodeId(0))
//!     .distance(netgraph::NodeId(40));
//! assert!(estimate >= exact);
//! assert!(estimate <= 5 * exact);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod centralized;
pub mod distributed;
pub mod error;
pub mod eval;
pub mod hierarchy;
pub mod query;
pub mod sketch;
pub mod slack;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use crate::centralized::CentralizedTz;
    pub use crate::distributed::{DistributedTz, DistributedTzConfig, SyncMode, TzBuildResult};
    pub use crate::error::SketchError;
    pub use crate::eval::{evaluate_sketches, StretchReport};
    pub use crate::hierarchy::{Hierarchy, TzParams};
    pub use crate::query::{estimate_distance, estimate_distance_slack};
    pub use crate::sketch::{Sketch, SketchSet};
    pub use crate::slack::cdg::{CdgParams, CdgSketchSet, DistributedCdg};
    pub use crate::slack::degrading::{DegradingParams, DegradingSketchSet, DistributedDegrading};
    pub use crate::slack::density_net::DensityNet;
    pub use crate::slack::three_stretch::{DistributedThreeStretch, ThreeStretchSketchSet};
}

pub use prelude::*;
