//! The [`SketchScheme`] trait, the [`SchemeSpec`] runtime selector and the
//! [`SketchBuilder`] fluent constructor: the uniform *construction* surface
//! over all four sketch families.
//!
//! Every scheme builds the same way — run a distributed construction on a
//! graph under a shared [`SchemeConfig`] (seed, synchronization mode,
//! CONGEST engine settings, round limit) and return a [`BuildOutcome`]:
//! the sketches (a [`DistanceOracle`]) plus the shared round/message/word
//! statistics.  Code that knows the scheme at compile time uses the typed
//! scheme structs ([`ThorupZwickScheme`], [`ThreeStretchScheme`],
//! [`CdgScheme`], [`DegradingScheme`]) and gets the concrete sketch-set type
//! back; code that selects the scheme at runtime uses [`SchemeSpec`] /
//! [`SketchBuilder`] and gets a `Box<dyn DistanceOracle>`.
//!
//! ```
//! use dsketch::prelude::*;
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//! use netgraph::NodeId;
//!
//! let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
//!
//! // Pick any scheme at runtime; query through the shared oracle trait.
//! for spec in [SchemeSpec::thorup_zwick(3), SchemeSpec::three_stretch(0.3)] {
//!     let outcome = SketchBuilder::new(spec).seed(42).build(&graph).unwrap();
//!     let estimate = outcome.sketches.estimate(NodeId(0), NodeId(40)).unwrap();
//!     println!(
//!         "{}: estimate {estimate}, {} rounds, ≤ {} words/node",
//!         outcome.sketches.scheme_name(),
//!         outcome.stats.rounds,
//!         outcome.sketches.max_words(),
//!     );
//! }
//! ```

#![deny(missing_docs)]

use crate::distributed::{self, SyncMode};
use crate::error::SketchError;
use crate::flat::{FlatSketchSet, Freeze, QueryRule};
use crate::hierarchy::{Hierarchy, TzParams};
use crate::oracle::{check_nodes, DistanceOracle};
use crate::parallel::BuildTimings;
use crate::query::estimate_distance;
use crate::sketch::SketchSet;
use crate::slack::cdg::{self, CdgParams, CdgSketchSet};
use crate::slack::degrading::{self, DegradingParams, DegradingSketchSet};
use crate::slack::three_stretch::{self, ThreeStretchSketchSet};
use congest_sim::{CongestConfig, RunStats};
use netgraph::{Distance, Graph, NodeId};

/// Which construction engine a build runs on.
///
/// Both engines produce **identical sketches** for the same
/// [`SchemeConfig::seed`] (experiment E8 / the `parallel_build` suite pin
/// this); they differ in what they cost and what they measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildEngine {
    /// The paper-faithful CONGEST simulation ([`crate::distributed`]):
    /// every message crosses a simulated edge, and
    /// [`BuildOutcome::stats`] reports the rounds/messages/words the
    /// theorems bound.  The default — experiments and conformance tests
    /// measure this engine.
    #[default]
    Congest,
    /// The direct parallel engine ([`crate::build`]): the independent
    /// per-seed explorations are batched across
    /// [`SchemeConfig::threads`] worker threads and merged
    /// deterministically.  Orders of magnitude faster wall-clock — the
    /// production path behind `build → save → serve` — but it does not
    /// simulate the network, so [`BuildOutcome::stats`] is empty and
    /// [`BuildOutcome::timings`] carries the per-phase wall-clock cost
    /// instead.
    Parallel,
}

/// The construction parameters shared by every scheme: randomness, engine
/// choice, phase synchronization, CONGEST engine settings and the round
/// safety valve.
#[derive(Debug, Clone, Copy)]
pub struct SchemeConfig {
    /// Seed for all sampling (hierarchies, density nets).
    pub seed: u64,
    /// Which engine runs the construction (CONGEST simulation vs the
    /// direct parallel engine).  The seed-derived sampling is shared, so
    /// both engines build identical sketches.
    pub engine: BuildEngine,
    /// Worker threads for the [`BuildEngine::Parallel`] engine; `0` (the
    /// default) means "all available parallelism".  The output never
    /// depends on this value — `threads = k` is bit-identical to
    /// `threads = 1`.
    pub threads: usize,
    /// How phase boundaries are detected (Section 3.2 vs Section 3.3).
    ///
    /// Only meaningful for the phased constructions (Thorup–Zwick, CDG,
    /// degrading) on the [`BuildEngine::Congest`] engine.
    /// [`ThreeStretchScheme`] is a single k-source flood with no phase
    /// boundaries to detect, so it ignores this field (see its `build`
    /// docs), and the parallel engine has no phases to synchronize.
    pub sync: SyncMode,
    /// CONGEST engine configuration (compute-step threads, bandwidth
    /// budget).  Only used by [`BuildEngine::Congest`].
    pub congest: CongestConfig,
    /// Safety valve: abort if a single simulated run exceeds this many
    /// rounds.  Only used by [`BuildEngine::Congest`] (the parallel engine
    /// executes no rounds).
    pub max_rounds: u64,
    /// Freeze the built sketches into the flat CSR query representation
    /// ([`FlatSketchSet`]) before handing them back.  Only affects the
    /// type-erased [`SchemeSpec::build`] / [`SketchBuilder::build`] path
    /// (the typed [`SketchScheme`] builds keep their concrete sets, which
    /// callers can [`Freeze::freeze`] themselves).  Default `false`; the
    /// serving CLIs default it to `true`.
    pub frozen: bool,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            seed: 0,
            engine: BuildEngine::Congest,
            threads: 0,
            sync: SyncMode::GlobalOracle,
            congest: CongestConfig::default(),
            max_rounds: 50_000_000,
            frozen: false,
        }
    }
}

impl SchemeConfig {
    /// Replace the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the construction engine.
    pub fn with_engine(mut self, engine: BuildEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Use the direct parallel engine ([`BuildEngine::Parallel`]).
    pub fn with_parallel_build(mut self) -> Self {
        self.engine = BuildEngine::Parallel;
        self
    }

    /// Set the worker-thread count for the parallel engine (`0` = all
    /// available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the synchronization mode.
    pub fn with_sync(mut self, sync: SyncMode) -> Self {
        self.sync = sync;
        self
    }

    /// Use the Section 3.3 termination-detection protocol.
    pub fn with_termination_detection(mut self) -> Self {
        self.sync = SyncMode::TerminationDetection;
        self
    }

    /// Replace the CONGEST engine configuration.
    pub fn with_congest(mut self, congest: CongestConfig) -> Self {
        self.congest = congest;
        self
    }

    /// Replace the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Freeze type-erased builds into the flat CSR representation
    /// (see [`SchemeConfig::frozen`]).
    pub fn with_frozen(mut self, frozen: bool) -> Self {
        self.frozen = frozen;
        self
    }

    /// The per-run engine parameters (everything except the seed).
    pub(crate) fn run_config(&self) -> distributed::DistributedTzConfig {
        distributed::DistributedTzConfig {
            sync: self.sync,
            congest: self.congest,
            max_rounds: self.max_rounds,
        }
    }
}

/// Everything a scheme build produces: the queryable sketches plus the
/// shared cost statistics every theorem of the paper is stated in.
#[derive(Debug, Clone)]
pub struct BuildOutcome<O> {
    /// The built sketches (a [`DistanceOracle`]).
    pub sketches: O,
    /// Total construction cost: rounds, messages, words on the wire.
    pub stats: RunStats,
    /// Per-unit cost in execution order, when the construction has natural
    /// units: one entry per phase for Thorup–Zwick in
    /// [`SyncMode::GlobalOracle`] mode, one entry per layer for the
    /// gracefully degrading construction.  Empty otherwise.
    pub phase_stats: Vec<RunStats>,
    /// Cost of the BFS-tree preamble (termination-detection mode only).
    pub tree_stats: Option<RunStats>,
    /// Per-phase wall-clock timings when the build ran on the
    /// [`BuildEngine::Parallel`] engine ([`BuildTimings::is_recorded`] is
    /// `false` for simulated builds, whose cost currency is
    /// [`BuildOutcome::stats`] instead).
    pub timings: BuildTimings,
}

impl<O: DistanceOracle + 'static> BuildOutcome<O> {
    /// Erase the concrete sketch-set type, for code that treats schemes
    /// polymorphically.
    pub fn boxed(self) -> DynBuildOutcome {
        BuildOutcome {
            sketches: Box::new(self.sketches),
            stats: self.stats,
            phase_stats: self.phase_stats,
            tree_stats: self.tree_stats,
            timings: self.timings,
        }
    }
}

/// A [`BuildOutcome`] with the sketch-set type erased.
pub type DynBuildOutcome = BuildOutcome<Box<dyn DistanceOracle>>;

/// A distributed sketch construction: turns a graph and a [`SchemeConfig`]
/// into a [`DistanceOracle`].
///
/// Implementations are cheap value types holding the scheme's own
/// parameters (`k`, ε, layer caps); everything run-specific lives in the
/// config.  See [`SchemeSpec`] for the type-erased, runtime-selected
/// counterpart.
pub trait SketchScheme {
    /// The concrete sketch-set type the scheme produces.
    type Sketches: DistanceOracle + 'static;

    /// Short scheme identifier (matches the output's
    /// [`DistanceOracle::scheme_name`]).
    fn name(&self) -> &'static str;

    /// Run the distributed construction on `graph`.
    fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<Self::Sketches>, SketchError>;
}

// ---------------------------------------------------------------------------
// Thorup–Zwick
// ---------------------------------------------------------------------------

/// The Thorup–Zwick labels built by the distributed construction: the
/// per-node [`SketchSet`] plus the sampled level hierarchy (the
/// construction's shared randomness, kept so results can be replayed and
/// compared against the centralized oracle).
#[derive(Debug, Clone)]
pub struct TzSketchSet {
    /// The per-node labels.
    pub sketches: SketchSet,
    /// The hierarchy the labels were built from.
    pub hierarchy: Hierarchy,
}

/// Deref to the label set, so typed callers reach [`SketchSet`] accessors
/// (`sketch(u)`, `iter()`, …) without spelling out `.sketches.sketches`.
impl std::ops::Deref for TzSketchSet {
    type Target = SketchSet;

    fn deref(&self) -> &SketchSet {
        &self.sketches
    }
}

impl Freeze for TzSketchSet {
    /// Freeze to a level-walk oracle with the hierarchy's `2k − 1` bound.
    fn freeze(&self) -> FlatSketchSet {
        FlatSketchSet::single_layer(
            &self.sketches,
            QueryRule::LevelWalk,
            "thorup-zwick",
            Some((2 * self.hierarchy.k() as u64).saturating_sub(1)),
        )
    }
}

impl DistanceOracle for TzSketchSet {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        check_nodes(self.sketches.len(), u, v)?;
        estimate_distance(self.sketches.sketch(u), self.sketches.sketch(v))
    }

    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    fn words(&self, u: NodeId) -> usize {
        self.sketches.sketch(u).words()
    }

    fn scheme_name(&self) -> &'static str {
        "thorup-zwick"
    }

    fn stretch_bound(&self) -> Option<u64> {
        Some((2 * self.hierarchy.k() as u64).saturating_sub(1))
    }
}

/// Theorem 1.1 / 3.8: Thorup–Zwick sketches with `k` levels — stretch
/// `2k − 1`, `O(k n^{1/k} log n)` words, `O(k n^{1/k} S log n)` rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThorupZwickScheme {
    /// The level count `k ≥ 1`.
    pub k: usize,
}

impl ThorupZwickScheme {
    /// A scheme with `k` levels.
    pub fn new(k: usize) -> Self {
        ThorupZwickScheme { k }
    }

    /// The paper's `k = ⌈log₂ n⌉` choice for a graph of `n` nodes.
    pub fn log_n(n: usize) -> Self {
        ThorupZwickScheme {
            k: TzParams::log_n(n).k,
        }
    }

    /// Run the construction with an explicitly provided hierarchy instead of
    /// sampling one from the config seed.  Used by the equivalence
    /// experiments, which hand the same hierarchy to the centralized
    /// construction and compare labels bit-for-bit.
    pub fn build_with_hierarchy(
        &self,
        graph: &Graph,
        hierarchy: Hierarchy,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<TzSketchSet>, SketchError> {
        if config.engine == BuildEngine::Parallel {
            let built = crate::build::thorup_zwick(graph, &hierarchy, config.threads);
            return Ok(BuildOutcome {
                sketches: TzSketchSet {
                    sketches: built.sketches,
                    hierarchy,
                },
                stats: RunStats::default(),
                phase_stats: Vec::new(),
                tree_stats: None,
                timings: built.timings,
            });
        }
        let raw = distributed::build_with_hierarchy(graph, hierarchy, config.run_config())?;
        Ok(BuildOutcome {
            sketches: TzSketchSet {
                sketches: raw.sketches,
                hierarchy: raw.hierarchy,
            },
            stats: raw.stats,
            phase_stats: raw.phase_stats,
            tree_stats: raw.tree_stats,
            timings: BuildTimings::default(),
        })
    }
}

impl SketchScheme for ThorupZwickScheme {
    type Sketches = TzSketchSet;

    fn name(&self) -> &'static str {
        "thorup-zwick"
    }

    fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<TzSketchSet>, SketchError> {
        let params = TzParams::new(self.k).with_seed(config.seed);
        params.validate()?;
        let (hierarchy, _) =
            Hierarchy::sample_until_top_nonempty(graph.num_nodes(), &params, 1000)?;
        self.build_with_hierarchy(graph, hierarchy, config)
    }
}

// ---------------------------------------------------------------------------
// 3-stretch slack
// ---------------------------------------------------------------------------

/// Theorem 4.3: stretch 3 with ε-slack, `O((1/ε) log n)` words,
/// `O(S (1/ε) log n)` rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreeStretchScheme {
    /// Slack parameter ε ∈ (0, 1].
    pub eps: f64,
}

impl ThreeStretchScheme {
    /// A scheme with slack `eps`.
    pub fn new(eps: f64) -> Self {
        ThreeStretchScheme { eps }
    }
}

impl SketchScheme for ThreeStretchScheme {
    type Sketches = ThreeStretchSketchSet;

    fn name(&self) -> &'static str {
        "three-stretch"
    }

    /// Run the Theorem 4.3 construction: one k-source Bellman–Ford from the
    /// sampled density net.
    ///
    /// The construction is a single phase, so [`SchemeConfig::sync`] does
    /// not apply and is ignored: there are no phase boundaries for the
    /// Section 3.3 termination-detection protocol to detect, and the
    /// returned [`BuildOutcome::tree_stats`] is always `None`.
    fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<ThreeStretchSketchSet>, SketchError> {
        if config.engine == BuildEngine::Parallel {
            let (set, timings) =
                three_stretch::build_direct(graph, self.eps, config.seed, config.threads)?;
            return Ok(BuildOutcome {
                sketches: set,
                stats: RunStats::default(),
                phase_stats: Vec::new(),
                tree_stats: None,
                timings,
            });
        }
        let set = three_stretch::build(
            graph,
            self.eps,
            config.seed,
            config.congest,
            config.max_rounds,
        )?;
        let stats = set.stats.clone();
        Ok(BuildOutcome {
            sketches: set,
            stats,
            phase_stats: Vec::new(),
            tree_stats: None,
            timings: BuildTimings::default(),
        })
    }
}

// ---------------------------------------------------------------------------
// (ε, k)-CDG
// ---------------------------------------------------------------------------

/// Theorem 1.2 / 4.6: the (ε, k)-CDG sketch — stretch `8k − 1` with ε-slack,
/// `O(k (1/ε log n)^{1/k} log n)` words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdgScheme {
    /// Slack parameter ε ∈ (0, 1].
    pub eps: f64,
    /// Level count `k ≥ 1`; the ε-far stretch guarantee is `8k − 1`.
    pub k: usize,
}

impl CdgScheme {
    /// A scheme with slack `eps` and `k` levels.
    pub fn new(eps: f64, k: usize) -> Self {
        CdgScheme { eps, k }
    }
}

impl SketchScheme for CdgScheme {
    type Sketches = CdgSketchSet;

    fn name(&self) -> &'static str {
        "cdg"
    }

    fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<CdgSketchSet>, SketchError> {
        let params = CdgParams::new(self.eps, self.k).with_seed(config.seed);
        if config.engine == BuildEngine::Parallel {
            let (set, timings) = cdg::build_direct(graph, params, config.threads)?;
            return Ok(BuildOutcome {
                sketches: set,
                stats: RunStats::default(),
                phase_stats: Vec::new(),
                tree_stats: None,
                timings,
            });
        }
        let set = cdg::build(graph, params, config.run_config())?;
        let stats = set.stats.clone();
        Ok(BuildOutcome {
            sketches: set,
            stats,
            phase_stats: Vec::new(),
            tree_stats: None,
            timings: BuildTimings::default(),
        })
    }
}

// ---------------------------------------------------------------------------
// Gracefully degrading
// ---------------------------------------------------------------------------

/// Theorem 1.3 / 4.8: gracefully degrading sketches — a union of CDG layers,
/// `O(log 1/ε)` stretch for every ε simultaneously, `O(log^4 n)` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradingScheme {
    /// Optional cap on the number of layers (default `⌈log₂ n⌉`).
    pub max_layers: Option<usize>,
    /// Optional cap on each layer's `k` (default: the paper's `k_i = i`).
    pub max_k: Option<usize>,
}

impl DegradingScheme {
    /// The paper's construction with no caps.
    pub fn new() -> Self {
        DegradingScheme::default()
    }

    /// Cap each layer's `k` (useful to keep small-graph runs fast).
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.max_k = Some(max_k.max(1));
        self
    }

    /// Cap the number of layers.
    pub fn with_max_layers(mut self, layers: usize) -> Self {
        self.max_layers = Some(layers.max(1));
        self
    }
}

impl SketchScheme for DegradingScheme {
    type Sketches = DegradingSketchSet;

    fn name(&self) -> &'static str {
        "degrading"
    }

    fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<BuildOutcome<DegradingSketchSet>, SketchError> {
        let mut params = DegradingParams::new(config.seed);
        params.max_layers = self.max_layers;
        params.max_k = self.max_k.map(|k| k.max(1));
        if config.engine == BuildEngine::Parallel {
            let (set, timings) = degrading::build_direct(graph, params, config.threads)?;
            return Ok(BuildOutcome {
                sketches: set,
                stats: RunStats::default(),
                phase_stats: Vec::new(),
                tree_stats: None,
                timings,
            });
        }
        let set = degrading::build(graph, params, config.run_config())?;
        let stats = set.stats.clone();
        let phase_stats = set.layers.iter().map(|l| l.stats.clone()).collect();
        Ok(BuildOutcome {
            sketches: set,
            stats,
            phase_stats,
            tree_stats: None,
            timings: BuildTimings::default(),
        })
    }
}

// ---------------------------------------------------------------------------
// Runtime selection
// ---------------------------------------------------------------------------

/// A runtime-chosen scheme: the type-erased counterpart of the typed scheme
/// structs, used wherever the scheme comes from configuration (CLI flags,
/// experiment matrices, serving-layer requests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeSpec {
    /// [`ThorupZwickScheme`].
    ThorupZwick {
        /// Level count `k ≥ 1` (stretch `2k − 1`).
        k: usize,
    },
    /// [`ThreeStretchScheme`].
    ThreeStretch {
        /// Slack parameter ε ∈ (0, 1].
        eps: f64,
    },
    /// [`CdgScheme`].
    Cdg {
        /// Slack parameter ε ∈ (0, 1].
        eps: f64,
        /// Level count `k ≥ 1` (ε-far stretch `8k − 1`).
        k: usize,
    },
    /// [`DegradingScheme`].
    Degrading {
        /// Optional cap on the number of layers.
        max_layers: Option<usize>,
        /// Optional cap on each layer's `k`.
        max_k: Option<usize>,
    },
}

impl SchemeSpec {
    /// Thorup–Zwick with `k` levels.
    pub fn thorup_zwick(k: usize) -> Self {
        SchemeSpec::ThorupZwick { k }
    }

    /// 3-stretch slack sketches with slack `eps`.
    pub fn three_stretch(eps: f64) -> Self {
        SchemeSpec::ThreeStretch { eps }
    }

    /// (ε, k)-CDG sketches.
    pub fn cdg(eps: f64, k: usize) -> Self {
        SchemeSpec::Cdg { eps, k }
    }

    /// Gracefully degrading sketches with the paper's layer schedule.
    pub fn degrading() -> Self {
        SchemeSpec::Degrading {
            max_layers: None,
            max_k: None,
        }
    }

    /// The scheme identifier (matches [`DistanceOracle::scheme_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeSpec::ThorupZwick { .. } => "thorup-zwick",
            SchemeSpec::ThreeStretch { .. } => "three-stretch",
            SchemeSpec::Cdg { .. } => "cdg",
            SchemeSpec::Degrading { .. } => "degrading",
        }
    }

    /// One representative spec per family, with parameters suited to small
    /// and medium graphs — the matrix that scheme-generic tests, benches and
    /// demos iterate over.
    pub fn all_families() -> Vec<SchemeSpec> {
        vec![
            SchemeSpec::thorup_zwick(3),
            SchemeSpec::three_stretch(0.3),
            SchemeSpec::cdg(0.3, 2),
            SchemeSpec::Degrading {
                max_layers: None,
                max_k: Some(3),
            },
        ]
    }

    /// Parse a spec from a compact string, as used by CLI flags:
    ///
    /// * `tz:3` or `thorup-zwick:3` — Thorup–Zwick with `k = 3`
    /// * `3stretch:0.25` or `three-stretch:0.25` — 3-stretch with ε = 0.25
    /// * `cdg:0.2,2` — CDG with ε = 0.2 and `k = 2`
    /// * `degrading`, `degrading:4` (cap `k`), or keyed caps in any order:
    ///   `degrading:k=4`, `degrading:layers=3`, `degrading:k=4,layers=3`
    ///
    /// Unrecognized scheme names and malformed parameters are rejected with
    /// [`SketchError::InvalidParameters`] whose message names the offending
    /// token and lists the valid scheme forms; every spec's [`Display`] form
    /// parses back to the same spec.
    ///
    /// ```
    /// use dsketch::prelude::*;
    ///
    /// assert_eq!(SchemeSpec::parse("tz:3").unwrap(), SchemeSpec::thorup_zwick(3));
    /// assert_eq!(
    ///     SchemeSpec::parse("cdg:0.2,2").unwrap(),
    ///     SchemeSpec::cdg(0.2, 2)
    /// );
    ///
    /// // Errors name the culprit and list what would have been accepted.
    /// let err = SchemeSpec::parse("unknown:1").unwrap_err().to_string();
    /// assert!(err.contains("unknown scheme 'unknown'"));
    /// assert!(err.contains("valid schemes"));
    ///
    /// // Display round-trips through parse.
    /// let spec = SchemeSpec::three_stretch(0.25);
    /// assert_eq!(SchemeSpec::parse(&spec.to_string()).unwrap(), spec);
    /// ```
    ///
    /// [`Display`]: std::fmt::Display
    pub fn parse(text: &str) -> Result<Self, SketchError> {
        /// The forms `parse` accepts, quoted by every parse error.
        const VALID: &str = "tz:<k> (alias thorup-zwick:<k>), 3stretch:<eps> (alias \
                             three-stretch:<eps>), cdg:<eps>,<k>, \
                             degrading[:<k> | k=<k>,layers=<l>]";
        let invalid = |what: String| {
            SketchError::InvalidParameters(format!("{what} (valid schemes: {VALID})"))
        };
        let (name, args) = match text.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (text, None),
        };
        match name {
            "tz" | "thorup-zwick" => {
                let raw = args.ok_or_else(|| {
                    invalid(format!(
                        "scheme '{name}' is missing its level count, e.g. {name}:3"
                    ))
                })?;
                let k = raw.trim().parse().map_err(|_| {
                    invalid(format!("invalid level count '{raw}' for scheme '{name}': expected a positive integer like {name}:3"))
                })?;
                Ok(SchemeSpec::thorup_zwick(k))
            }
            "3stretch" | "three-stretch" => {
                let raw = args.ok_or_else(|| {
                    invalid(format!(
                        "scheme '{name}' is missing its slack parameter, e.g. {name}:0.25"
                    ))
                })?;
                let eps = raw.trim().parse().map_err(|_| {
                    invalid(format!("invalid slack '{raw}' for scheme '{name}': expected a number in (0, 1] like {name}:0.25"))
                })?;
                Ok(SchemeSpec::three_stretch(eps))
            }
            "cdg" => {
                let raw = args.ok_or_else(|| {
                    invalid("scheme 'cdg' is missing its parameters, e.g. cdg:0.2,2".to_string())
                })?;
                let (eps, k) = raw.split_once(',').ok_or_else(|| {
                    invalid(format!("scheme 'cdg' takes two comma-separated parameters, got '{raw}': expected cdg:<eps>,<k> like cdg:0.2,2"))
                })?;
                Ok(SchemeSpec::cdg(
                    eps.trim().parse().map_err(|_| {
                        invalid(format!("invalid slack '{}' for scheme 'cdg': expected a number in (0, 1]", eps.trim()))
                    })?,
                    k.trim().parse().map_err(|_| {
                        invalid(format!("invalid level count '{}' for scheme 'cdg': expected a positive integer", k.trim()))
                    })?,
                ))
            }
            "degrading" => {
                let (mut max_layers, mut max_k) = (None, None);
                if let Some(a) = args {
                    for part in a.split(',') {
                        match part.trim().split_once('=') {
                            Some(("k", v)) => {
                                max_k = Some(v.parse().map_err(|_| {
                                    invalid(format!("invalid k cap '{v}' for scheme 'degrading': expected a positive integer"))
                                })?)
                            }
                            Some(("layers", v)) => {
                                max_layers = Some(v.parse().map_err(|_| {
                                    invalid(format!("invalid layer cap '{v}' for scheme 'degrading': expected a positive integer"))
                                })?)
                            }
                            // Bare integer: the `degrading:4` shorthand for k.
                            None => {
                                max_k = Some(part.trim().parse().map_err(|_| {
                                    invalid(format!("invalid option '{}' for scheme 'degrading': expected k=<k>, layers=<l>, or a bare integer cap for k", part.trim()))
                                })?)
                            }
                            Some((key, _)) => {
                                return Err(invalid(format!("unknown option '{key}' for scheme 'degrading': expected k=<k> or layers=<l>")))
                            }
                        }
                    }
                }
                Ok(SchemeSpec::Degrading { max_layers, max_k })
            }
            _ => Err(invalid(if name.is_empty() {
                "empty scheme name".to_string()
            } else {
                format!("unknown scheme '{name}'")
            })),
        }
    }

    /// Run the construction, returning type-erased sketches.
    ///
    /// When [`SchemeConfig::frozen`] is set, the finished sketches are
    /// [frozen](Freeze::freeze) into a [`FlatSketchSet`] before boxing, so
    /// the returned oracle serves from the flat CSR layout.
    pub fn build(
        &self,
        graph: &Graph,
        config: &SchemeConfig,
    ) -> Result<DynBuildOutcome, SketchError> {
        /// Box the outcome, freezing the sketches first when asked to.
        fn finish<O: DistanceOracle + Freeze + 'static>(
            outcome: BuildOutcome<O>,
            frozen: bool,
        ) -> DynBuildOutcome {
            if !frozen {
                return outcome.boxed();
            }
            BuildOutcome {
                sketches: Box::new(outcome.sketches.freeze()) as Box<dyn DistanceOracle>,
                stats: outcome.stats,
                phase_stats: outcome.phase_stats,
                tree_stats: outcome.tree_stats,
                timings: outcome.timings,
            }
        }
        match *self {
            SchemeSpec::ThorupZwick { k } => ThorupZwickScheme::new(k)
                .build(graph, config)
                .map(|o| finish(o, config.frozen)),
            SchemeSpec::ThreeStretch { eps } => ThreeStretchScheme::new(eps)
                .build(graph, config)
                .map(|o| finish(o, config.frozen)),
            SchemeSpec::Cdg { eps, k } => CdgScheme::new(eps, k)
                .build(graph, config)
                .map(|o| finish(o, config.frozen)),
            SchemeSpec::Degrading { max_layers, max_k } => DegradingScheme { max_layers, max_k }
                .build(graph, config)
                .map(|o| finish(o, config.frozen)),
        }
    }
}

impl std::fmt::Display for SchemeSpec {
    /// The compact form accepted by [`SchemeSpec::parse`]; every spec
    /// round-trips exactly, including both degrading caps.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SchemeSpec::ThorupZwick { k } => write!(f, "tz:{k}"),
            SchemeSpec::ThreeStretch { eps } => write!(f, "3stretch:{eps}"),
            SchemeSpec::Cdg { eps, k } => write!(f, "cdg:{eps},{k}"),
            SchemeSpec::Degrading {
                max_layers: None,
                max_k: None,
            } => write!(f, "degrading"),
            SchemeSpec::Degrading {
                max_layers: None,
                max_k: Some(k),
            } => write!(f, "degrading:{k}"),
            SchemeSpec::Degrading {
                max_layers: Some(l),
                max_k: None,
            } => write!(f, "degrading:layers={l}"),
            SchemeSpec::Degrading {
                max_layers: Some(l),
                max_k: Some(k),
            } => write!(f, "degrading:k={k},layers={l}"),
        }
    }
}

/// Fluent constructor over [`SchemeSpec`] + [`SchemeConfig`]: pick a scheme,
/// chain configuration, build, query through `Box<dyn DistanceOracle>`.
///
/// ```
/// use dsketch::prelude::*;
/// use netgraph::generators::{erdos_renyi, GeneratorConfig};
/// use netgraph::NodeId;
///
/// let graph = erdos_renyi(48, 0.15, GeneratorConfig::uniform(5, 1, 20));
/// let outcome = SketchBuilder::thorup_zwick(2)
///     .seed(7)
///     .max_rounds(1_000_000)
///     .build(&graph)
///     .unwrap();
/// assert_eq!(outcome.sketches.scheme_name(), "thorup-zwick");
/// assert!(outcome.sketches.estimate(NodeId(0), NodeId(1)).unwrap() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SketchBuilder {
    spec: SchemeSpec,
    config: SchemeConfig,
}

impl SketchBuilder {
    /// Start from a runtime-chosen spec.
    pub fn new(spec: SchemeSpec) -> Self {
        SketchBuilder {
            spec,
            config: SchemeConfig::default(),
        }
    }

    /// Thorup–Zwick with `k` levels.
    pub fn thorup_zwick(k: usize) -> Self {
        Self::new(SchemeSpec::thorup_zwick(k))
    }

    /// 3-stretch slack sketches with slack `eps`.
    pub fn three_stretch(eps: f64) -> Self {
        Self::new(SchemeSpec::three_stretch(eps))
    }

    /// (ε, k)-CDG sketches.
    pub fn cdg(eps: f64, k: usize) -> Self {
        Self::new(SchemeSpec::cdg(eps, k))
    }

    /// Gracefully degrading sketches.
    pub fn degrading() -> Self {
        Self::new(SchemeSpec::degrading())
    }

    /// Replace the sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Select the construction engine.
    pub fn engine(mut self, engine: BuildEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Use the direct parallel engine ([`BuildEngine::Parallel`]).
    pub fn parallel(mut self) -> Self {
        self.config.engine = BuildEngine::Parallel;
        self
    }

    /// Set the worker-thread count for the parallel engine (`0` = all
    /// available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Set the synchronization mode.
    pub fn sync(mut self, sync: SyncMode) -> Self {
        self.config.sync = sync;
        self
    }

    /// Use the Section 3.3 termination-detection protocol.
    pub fn termination_detection(mut self) -> Self {
        self.config.sync = SyncMode::TerminationDetection;
        self
    }

    /// Replace the CONGEST engine configuration.
    pub fn congest(mut self, congest: CongestConfig) -> Self {
        self.config.congest = congest;
        self
    }

    /// Replace the round limit.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// Freeze the built sketches into the flat CSR representation
    /// ([`FlatSketchSet`]) — the allocation-free query layout the serving
    /// CLIs default to (see [`SchemeConfig::frozen`]).
    pub fn frozen(mut self, frozen: bool) -> Self {
        self.config.frozen = frozen;
        self
    }

    /// The spec this builder will construct.
    pub fn spec(&self) -> &SchemeSpec {
        &self.spec
    }

    /// The accumulated configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// Run the construction.
    pub fn build(&self, graph: &Graph) -> Result<DynBuildOutcome, SketchError> {
        self.spec.build(graph, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{erdos_renyi, GeneratorConfig};

    fn small_graph() -> Graph {
        erdos_renyi(48, 0.15, GeneratorConfig::uniform(5, 1, 20))
    }

    #[test]
    fn every_family_builds_through_the_builder() {
        let graph = small_graph();
        for spec in SchemeSpec::all_families() {
            let outcome = SketchBuilder::new(spec).seed(9).build(&graph).unwrap();
            assert_eq!(outcome.sketches.num_nodes(), 48, "{spec}");
            assert_eq!(outcome.sketches.scheme_name(), spec.name(), "{spec}");
            assert!(outcome.stats.rounds > 0, "{spec}");
            assert!(outcome.sketches.max_words() > 0, "{spec}");
            let est = outcome.sketches.estimate(NodeId(0), NodeId(1)).unwrap();
            assert!(est > 0, "{spec}");
        }
    }

    #[test]
    fn typed_builds_expose_concrete_types() {
        let graph = small_graph();
        let config = SchemeConfig::default().with_seed(3);

        let tz = ThorupZwickScheme::new(2).build(&graph, &config).unwrap();
        assert_eq!(tz.sketches.hierarchy.k(), 2);
        assert_eq!(tz.phase_stats.len(), 2, "one entry per phase");

        let three = ThreeStretchScheme::new(0.4).build(&graph, &config).unwrap();
        assert!(!three.sketches.net.is_empty());

        let cdg = CdgScheme::new(0.4, 2).build(&graph, &config).unwrap();
        assert_eq!(cdg.sketches.params.k, 2);

        let deg = DegradingScheme::new()
            .with_max_k(2)
            .with_max_layers(2)
            .build(&graph, &config)
            .unwrap();
        assert_eq!(deg.sketches.num_layers(), 2);
        assert_eq!(deg.phase_stats.len(), 2, "one entry per layer");
        let layer_rounds: u64 = deg.phase_stats.iter().map(|s| s.rounds).sum();
        assert_eq!(layer_rounds, deg.stats.rounds);
    }

    #[test]
    fn builder_config_flows_through() {
        let graph = small_graph();
        let builder = SketchBuilder::thorup_zwick(2)
            .seed(7)
            .termination_detection()
            .congest(CongestConfig::default())
            .max_rounds(1_000_000);
        assert_eq!(builder.config().seed, 7);
        assert_eq!(builder.config().sync, SyncMode::TerminationDetection);
        let outcome = builder.build(&graph).unwrap();
        assert!(
            outcome.tree_stats.is_some(),
            "termination detection builds a BFS tree"
        );
    }

    #[test]
    fn round_limit_propagates_to_all_schemes() {
        let graph = netgraph::generators::ring(64, GeneratorConfig::unit(1));
        for spec in SchemeSpec::all_families() {
            let result = SketchBuilder::new(spec).max_rounds(1).build(&graph);
            assert!(
                matches!(result, Err(SketchError::RoundLimitExceeded { .. })),
                "{spec} should hit the round limit"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let graph = small_graph();
        let config = SchemeConfig::default();
        assert!(SchemeSpec::thorup_zwick(0).build(&graph, &config).is_err());
        assert!(SchemeSpec::three_stretch(0.0)
            .build(&graph, &config)
            .is_err());
        assert!(SchemeSpec::cdg(1.5, 2).build(&graph, &config).is_err());
        assert!(SchemeSpec::cdg(0.3, 0).build(&graph, &config).is_err());
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(
            SchemeSpec::parse("tz:3").unwrap(),
            SchemeSpec::thorup_zwick(3)
        );
        assert_eq!(
            SchemeSpec::parse("thorup-zwick:2").unwrap(),
            SchemeSpec::thorup_zwick(2)
        );
        assert_eq!(
            SchemeSpec::parse("3stretch:0.25").unwrap(),
            SchemeSpec::three_stretch(0.25)
        );
        assert_eq!(
            SchemeSpec::parse("cdg:0.2,2").unwrap(),
            SchemeSpec::cdg(0.2, 2)
        );
        assert_eq!(
            SchemeSpec::parse("degrading").unwrap(),
            SchemeSpec::degrading()
        );
        assert_eq!(
            SchemeSpec::parse("degrading:3").unwrap(),
            SchemeSpec::Degrading {
                max_layers: None,
                max_k: Some(3)
            }
        );
        assert_eq!(
            SchemeSpec::parse("degrading:k=4,layers=3").unwrap(),
            SchemeSpec::Degrading {
                max_layers: Some(3),
                max_k: Some(4)
            }
        );
        assert_eq!(
            SchemeSpec::parse("degrading:layers=2").unwrap(),
            SchemeSpec::Degrading {
                max_layers: Some(2),
                max_k: None
            }
        );
        for bad in ["", "tz", "tz:x", "cdg:0.2", "nope:1", "degrading:q=1"] {
            assert!(SchemeSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let every_degrading_combo = [None, Some(2)].into_iter().flat_map(|l| {
            [None, Some(3)].map(|k| SchemeSpec::Degrading {
                max_layers: l,
                max_k: k,
            })
        });
        for spec in SchemeSpec::all_families()
            .into_iter()
            .chain(every_degrading_combo)
        {
            assert_eq!(
                SchemeSpec::parse(&spec.to_string()).unwrap(),
                spec,
                "round-trip failed for {spec}"
            );
        }
    }

    #[test]
    fn parse_errors_name_the_offending_token_and_list_valid_schemes() {
        // (input, fragment that must identify the culprit)
        let cases = [
            ("nope:1", "unknown scheme 'nope'"),
            ("", "empty scheme name"),
            ("tz", "scheme 'tz' is missing its level count"),
            ("tz:x", "invalid level count 'x' for scheme 'tz'"),
            ("thorup-zwick:2.5", "invalid level count '2.5'"),
            ("3stretch", "scheme '3stretch' is missing its slack"),
            (
                "3stretch:huge",
                "invalid slack 'huge' for scheme '3stretch'",
            ),
            ("cdg", "scheme 'cdg' is missing its parameters"),
            ("cdg:0.2", "got '0.2'"),
            ("cdg:zero,2", "invalid slack 'zero' for scheme 'cdg'"),
            ("cdg:0.2,two", "invalid level count 'two' for scheme 'cdg'"),
            ("degrading:q=1", "unknown option 'q' for scheme 'degrading'"),
            ("degrading:k=x", "invalid k cap 'x'"),
            ("degrading:layers=x", "invalid layer cap 'x'"),
            (
                "degrading:1.5",
                "invalid option '1.5' for scheme 'degrading'",
            ),
        ];
        for (input, fragment) in cases {
            let message = SchemeSpec::parse(input).unwrap_err().to_string();
            assert!(
                message.contains(fragment),
                "{input:?}: message {message:?} should contain {fragment:?}"
            );
            assert!(
                message.contains("valid schemes: tz:<k>"),
                "{input:?}: message {message:?} should list the valid schemes"
            );
        }
    }

    #[test]
    fn parallel_engine_builds_identical_sketches_for_every_family() {
        let graph = small_graph();
        for spec in SchemeSpec::all_families() {
            let simulated = SketchBuilder::new(spec).seed(9).build(&graph).unwrap();
            let parallel = SketchBuilder::new(spec)
                .seed(9)
                .parallel()
                .threads(2)
                .build(&graph)
                .unwrap();
            assert_eq!(parallel.sketches.scheme_name(), spec.name());
            assert_eq!(parallel.stats.rounds, 0, "parallel engine runs no rounds");
            assert!(parallel.timings.is_recorded(), "{spec}: timings missing");
            assert!(!simulated.timings.is_recorded());
            for u in graph.nodes() {
                for v in graph.nodes() {
                    assert_eq!(
                        simulated.sketches.estimate(u, v).ok(),
                        parallel.sketches.estimate(u, v).ok(),
                        "{spec}: estimate mismatch at ({u}, {v})"
                    );
                }
                assert_eq!(
                    simulated.sketches.words(u),
                    parallel.sketches.words(u),
                    "{spec}: label size mismatch at {u}"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_thread_count_flows_through_the_builder() {
        let graph = small_graph();
        let builder = SketchBuilder::thorup_zwick(2)
            .seed(5)
            .engine(BuildEngine::Parallel)
            .threads(3);
        assert_eq!(builder.config().engine, BuildEngine::Parallel);
        assert_eq!(builder.config().threads, 3);
        let outcome = builder.build(&graph).unwrap();
        assert_eq!(outcome.timings.threads, 3);
        let config = SchemeConfig::default()
            .with_parallel_build()
            .with_threads(2);
        assert_eq!(config.engine, BuildEngine::Parallel);
        assert_eq!(config.threads, 2);
    }

    #[test]
    fn frozen_builds_answer_identically_for_every_family() {
        let graph = small_graph();
        for spec in SchemeSpec::all_families() {
            let plain = SketchBuilder::new(spec).seed(4).build(&graph).unwrap();
            let frozen = SketchBuilder::new(spec)
                .seed(4)
                .frozen(true)
                .build(&graph)
                .unwrap();
            assert_eq!(frozen.sketches.scheme_name(), spec.name(), "{spec}");
            assert_eq!(
                frozen.sketches.stretch_bound(),
                plain.sketches.stretch_bound(),
                "{spec}"
            );
            for u in graph.nodes().take(12) {
                for v in graph.nodes().skip(12).take(12) {
                    assert_eq!(
                        frozen.sketches.estimate(u, v).ok(),
                        plain.sketches.estimate(u, v).ok(),
                        "{spec}: frozen estimate differs at ({u}, {v})"
                    );
                }
                assert_eq!(frozen.sketches.words(u), plain.sketches.words(u), "{spec}");
            }
        }
    }

    #[test]
    fn same_seed_same_estimates() {
        let graph = small_graph();
        let a = SketchBuilder::thorup_zwick(3)
            .seed(11)
            .build(&graph)
            .unwrap();
        let b = SketchBuilder::thorup_zwick(3)
            .seed(11)
            .build(&graph)
            .unwrap();
        for u in graph.nodes().take(10) {
            for v in graph.nodes().skip(20).take(10) {
                assert_eq!(
                    a.sketches.estimate(u, v).unwrap(),
                    b.sketches.estimate(u, v).unwrap()
                );
            }
        }
    }
}
