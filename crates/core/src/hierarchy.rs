//! The sampled level hierarchy `A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}` (Section 3.1).
//!
//! Thorup–Zwick sampling: `A_0 = V`, and for `1 ≤ i ≤ k − 1` every vertex of
//! `A_{i-1}` joins `A_i` independently with probability `n^{-1/k}`;
//! `A_k = ∅`.  The hierarchy is all the shared randomness of the
//! construction: given the same hierarchy, the centralized and distributed
//! constructions produce *identical* bunches and distances, which is exactly
//! what the equivalence experiment (E8) asserts.
//!
//! The CDG slack construction (Section 4) reuses the same machinery with a
//! different ground set (the ε-density net instead of `V`) and a different
//! sampling probability (`(10/ε · ln n)^{-1/k}`); see
//! [`Hierarchy::sample_on_ground_set`].

use crate::error::SketchError;
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Parameters of a Thorup–Zwick construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TzParams {
    /// The level count `k ≥ 1`; the resulting stretch is `2k − 1`.
    pub k: usize,
    /// Seed for the level sampling.
    pub seed: u64,
}

impl TzParams {
    /// Parameters with `k` levels and seed 0.
    pub fn new(k: usize) -> Self {
        TzParams { k, seed: 0 }
    }

    /// Replace the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The worst-case stretch guarantee `2k − 1` of these parameters.
    pub fn stretch(&self) -> u64 {
        (2 * self.k as u64).saturating_sub(1)
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), SketchError> {
        if self.k == 0 {
            return Err(SketchError::InvalidParameters(
                "k must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// The paper's choice `k = ⌈log₂ n⌉` (clamped to at least 1), which gives
    /// `O(log n)` stretch with sketches of `O(log² n)` expected size.
    pub fn log_n(n: usize) -> Self {
        let k = (n.max(2) as f64).log2().ceil() as usize;
        TzParams::new(k.max(1))
    }
}

/// The sampled hierarchy: for every node, the highest level it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    /// `level[v]` is the largest `i` with `v ∈ A_i`, or `-1` if `v` is not
    /// even in `A_0` (possible when the ground set is a strict subset of V,
    /// as in the CDG construction).
    level: Vec<i32>,
    /// Number of levels `k`.
    k: usize,
    /// The sampling probability used between consecutive levels.
    probability: f64,
}

impl Hierarchy {
    /// Sample a standard Thorup–Zwick hierarchy over all `num_nodes` nodes
    /// with probability `num_nodes^{-1/k}`.
    pub fn sample(num_nodes: usize, params: &TzParams) -> Result<Self, SketchError> {
        params.validate()?;
        let probability = if params.k == 1 {
            0.0 // A_1 = ∅ when k = 1: plain all-pairs bunches
        } else {
            (num_nodes.max(1) as f64).powf(-1.0 / params.k as f64)
        };
        let ground: Vec<NodeId> = (0..num_nodes).map(NodeId::from_index).collect();
        Ok(Self::sample_with_probability(
            num_nodes,
            &ground,
            params.k,
            probability,
            params.seed,
        ))
    }

    /// Sample a hierarchy whose ground set `A_0` is an arbitrary subset of
    /// the nodes (the CDG construction uses the ε-density net) and whose
    /// per-level sampling probability is `probability`.
    pub fn sample_on_ground_set(
        num_nodes: usize,
        ground: &[NodeId],
        k: usize,
        probability: f64,
        seed: u64,
    ) -> Result<Self, SketchError> {
        if k == 0 {
            return Err(SketchError::InvalidParameters(
                "k must be at least 1".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&probability) {
            return Err(SketchError::InvalidParameters(format!(
                "sampling probability must be in [0, 1], got {probability}"
            )));
        }
        Ok(Self::sample_with_probability(
            num_nodes,
            ground,
            k,
            probability,
            seed,
        ))
    }

    fn sample_with_probability(
        num_nodes: usize,
        ground: &[NodeId],
        k: usize,
        probability: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut level = vec![-1i32; num_nodes];
        for &v in ground {
            level[v.index()] = 0;
        }
        // Promote level by level so that A_{i} ⊆ A_{i-1} by construction.
        // Iterating nodes in index order keeps the sampling deterministic.
        for i in 1..k {
            for slot in level.iter_mut() {
                if *slot == (i as i32) - 1 && rng.gen_bool(probability) {
                    *slot = i as i32;
                }
            }
        }
        Hierarchy {
            level,
            k,
            probability,
        }
    }

    /// Build a hierarchy from explicit levels (used in tests and for
    /// replaying a hierarchy recorded elsewhere).  `level[v]` must be in
    /// `-1..k` for every `v`.
    pub fn from_levels(level: Vec<i32>, k: usize) -> Result<Self, SketchError> {
        if k == 0 {
            return Err(SketchError::InvalidParameters(
                "k must be at least 1".to_string(),
            ));
        }
        if let Some(&bad) = level.iter().find(|&&l| l < -1 || l >= k as i32) {
            return Err(SketchError::InvalidParameters(format!(
                "level {bad} out of range for k = {k}"
            )));
        }
        Ok(Hierarchy {
            level,
            k,
            probability: f64::NAN,
        })
    }

    /// Rebuild a hierarchy from its full recorded state — levels, `k`, and
    /// the sampling probability — as produced by [`Hierarchy::levels`] /
    /// [`Hierarchy::k`] / [`Hierarchy::probability`].  Unlike
    /// [`Hierarchy::from_levels`] this preserves the probability, so a
    /// persisted hierarchy round-trips exactly (the persistence layer uses
    /// this to make reloaded sketch sets bit-identical to freshly built
    /// ones).
    pub fn from_parts(level: Vec<i32>, k: usize, probability: f64) -> Result<Self, SketchError> {
        let mut h = Self::from_levels(level, k)?;
        if !probability.is_nan() && !(0.0..=1.0).contains(&probability) {
            return Err(SketchError::InvalidParameters(format!(
                "sampling probability must be in [0, 1] or NaN, got {probability}"
            )));
        }
        h.probability = probability;
        Ok(h)
    }

    /// The raw per-node levels: `levels()[v]` is the largest `i` with
    /// `v ∈ A_i`, or `-1` when `v` is outside the ground set.  Together with
    /// [`Hierarchy::k`] and [`Hierarchy::probability`] this is the
    /// hierarchy's complete state (see [`Hierarchy::from_parts`]).
    pub fn levels(&self) -> &[i32] {
        &self.level
    }

    /// Number of levels `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes the hierarchy covers.
    pub fn num_nodes(&self) -> usize {
        self.level.len()
    }

    /// The per-level sampling probability (NaN for hand-built hierarchies).
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Highest level of `v`, or `-1` if `v` is not in the ground set.
    pub fn level_of(&self, v: NodeId) -> i32 {
        self.level[v.index()]
    }

    /// True if `v ∈ A_i`.
    pub fn in_level(&self, v: NodeId, i: usize) -> bool {
        self.level[v.index()] >= i as i32
    }

    /// All nodes of `A_i`, in increasing id order.
    pub fn level_members(&self, i: usize) -> Vec<NodeId> {
        (0..self.level.len())
            .filter(|&v| self.level[v] >= i as i32)
            .map(NodeId::from_index)
            .collect()
    }

    /// All nodes of `A_i \ A_{i+1}` (the sources of phase `i`), in increasing
    /// id order.
    pub fn exact_level_members(&self, i: usize) -> Vec<NodeId> {
        (0..self.level.len())
            .filter(|&v| self.level[v] == i as i32)
            .map(NodeId::from_index)
            .collect()
    }

    /// Sizes of `A_0, …, A_{k-1}`.
    pub fn level_sizes(&self) -> Vec<usize> {
        (0..self.k).map(|i| self.level_members(i).len()).collect()
    }

    /// True if the top level `A_{k-1}` is non-empty.  When it is empty the
    /// worst-case stretch guarantee can fail for some pairs; the paper
    /// implicitly conditions on the (high-probability) event that it is
    /// non-empty, and the constructions in this crate re-sample when needed.
    pub fn top_level_nonempty(&self) -> bool {
        self.level.iter().any(|&l| l == (self.k as i32) - 1) || self.k == 1
    }

    /// Re-sample with successive seeds until the top level is non-empty.
    /// Returns the hierarchy and the seed that produced it.
    pub fn sample_until_top_nonempty(
        num_nodes: usize,
        params: &TzParams,
        max_attempts: u64,
    ) -> Result<(Self, u64), SketchError> {
        let mut seed = params.seed;
        for _ in 0..max_attempts.max(1) {
            let h = Self::sample(num_nodes, &TzParams { k: params.k, seed })?;
            if h.top_level_nonempty() {
                return Ok((h, seed));
            }
            seed = seed.wrapping_add(1);
        }
        Err(SketchError::InvalidParameters(format!(
            "could not sample a non-empty top level in {max_attempts} attempts \
             (k = {} is likely too large for n = {num_nodes})",
            params.k
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_accessors() {
        let p = TzParams::new(3).with_seed(9);
        assert_eq!(p.k, 3);
        assert_eq!(p.seed, 9);
        assert_eq!(p.stretch(), 5);
        assert!(p.validate().is_ok());
        assert!(TzParams::new(0).validate().is_err());
    }

    #[test]
    fn log_n_params() {
        assert_eq!(TzParams::log_n(1024).k, 10);
        assert!(TzParams::log_n(1).k >= 1);
    }

    #[test]
    fn k1_hierarchy_has_single_full_level() {
        let h = Hierarchy::sample(10, &TzParams::new(1)).unwrap();
        assert_eq!(h.k(), 1);
        assert_eq!(h.level_members(0).len(), 10);
        assert!(h.top_level_nonempty());
        for v in 0..10 {
            assert_eq!(h.level_of(NodeId(v)), 0);
        }
    }

    #[test]
    fn levels_are_nested() {
        let h = Hierarchy::sample(500, &TzParams::new(4).with_seed(3)).unwrap();
        let sizes = h.level_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[0], 500);
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "levels must be nested: {sizes:?}");
        }
    }

    #[test]
    fn expected_level_sizes_are_roughly_geometric() {
        // n = 4096, k = 4 => per-level survival probability 4096^(-1/4) = 1/8.
        let h = Hierarchy::sample(4096, &TzParams::new(4).with_seed(11)).unwrap();
        let sizes = h.level_sizes();
        // E|A_1| = 512; allow generous tolerance.
        assert!(sizes[1] > 300 && sizes[1] < 800, "A_1 size {}", sizes[1]);
        // E|A_2| = 64
        assert!(sizes[2] > 20 && sizes[2] < 150, "A_2 size {}", sizes[2]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Hierarchy::sample(200, &TzParams::new(3).with_seed(5)).unwrap();
        let b = Hierarchy::sample(200, &TzParams::new(3).with_seed(5)).unwrap();
        assert_eq!(a, b);
        let c = Hierarchy::sample(200, &TzParams::new(3).with_seed(6)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn exact_level_members_partition_ground_set() {
        let h = Hierarchy::sample(300, &TzParams::new(3).with_seed(2)).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0;
        for i in 0..3 {
            for v in h.exact_level_members(i) {
                assert!(seen.insert(v), "{v} in two exact levels");
                total += 1;
                assert_eq!(h.level_of(v), i as i32);
            }
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn ground_set_restriction() {
        let ground = vec![NodeId(1), NodeId(3), NodeId(5)];
        let h = Hierarchy::sample_on_ground_set(8, &ground, 2, 0.5, 7).unwrap();
        assert_eq!(h.level_of(NodeId(0)), -1);
        assert_eq!(h.level_of(NodeId(2)), -1);
        assert!(h.level_of(NodeId(1)) >= 0);
        assert!(h.level_of(NodeId(3)) >= 0);
        assert_eq!(h.level_members(0), ground);
        assert!(!h.in_level(NodeId(0), 0));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Hierarchy::sample(10, &TzParams::new(0)).is_err());
        assert!(Hierarchy::sample_on_ground_set(10, &[], 0, 0.5, 1).is_err());
        assert!(Hierarchy::sample_on_ground_set(10, &[], 2, 1.5, 1).is_err());
        assert!(Hierarchy::from_levels(vec![0, 5], 2).is_err());
        assert!(Hierarchy::from_levels(vec![0, -2], 2).is_err());
    }

    #[test]
    fn from_parts_preserves_probability() {
        let sampled = Hierarchy::sample(40, &TzParams::new(3).with_seed(4)).unwrap();
        let rebuilt = Hierarchy::from_parts(
            sampled.levels().to_vec(),
            sampled.k(),
            sampled.probability(),
        )
        .unwrap();
        assert_eq!(sampled, rebuilt);
        // NaN (hand-built hierarchies) is accepted; out-of-range is not.
        assert!(Hierarchy::from_parts(vec![0, 1], 2, f64::NAN).is_ok());
        assert!(Hierarchy::from_parts(vec![0, 1], 2, 1.5).is_err());
        assert!(Hierarchy::from_parts(vec![0, 9], 2, 0.5).is_err());
    }

    #[test]
    fn from_levels_round_trip() {
        let h = Hierarchy::from_levels(vec![0, 1, 2, -1, 0], 3).unwrap();
        assert_eq!(h.level_of(NodeId(2)), 2);
        assert_eq!(h.level_of(NodeId(3)), -1);
        assert_eq!(h.level_members(1), vec![NodeId(1), NodeId(2)]);
        assert_eq!(h.exact_level_members(0), vec![NodeId(0), NodeId(4)]);
        assert!(h.top_level_nonempty());
        assert!(h.probability().is_nan());
        assert_eq!(h.num_nodes(), 5);
    }

    #[test]
    fn sample_until_top_nonempty_succeeds() {
        // Small n with large k frequently empties the top level; the retry
        // loop must still find a seed that works.
        let (h, seed) =
            Hierarchy::sample_until_top_nonempty(30, &TzParams::new(4).with_seed(0), 200).unwrap();
        assert!(h.top_level_nonempty());
        // The returned seed must reproduce the same hierarchy.
        let replay = Hierarchy::sample(30, &TzParams::new(4).with_seed(seed)).unwrap();
        assert_eq!(h, replay);
    }
}
