//! One phase of the distributed construction (the paper's Algorithm 2),
//! used by [`super::SyncMode::GlobalOracle`].
//!
//! Phase `i` runs a modified multi-source Bellman–Ford whose sources are the
//! vertices of `A_i \ A_{i+1}`.  A vertex `u` participates in the flood for
//! source `v` only while the announced distance keeps beating the threshold
//! `key(u, A_{i+1})` — the lexicographic tie-broken version of the paper's
//! condition `a_w + d(u, w) < d(u, A_{i+1})` — and only when it improves on
//! the best distance to `v` seen so far.  Outgoing announcements are queued
//! per source and served round-robin (Algorithm 2 lines 15–20), so at most
//! one data message crosses each edge per round.

use crate::sketch::DistKey;
use congest_sim::programs::bellman_ford::SourcedAnnouncement;
use congest_sim::{NodeContext, NodeProgram};
use netgraph::{add_dist, Distance, NodeId, INFINITY};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The per-source distances a node has accumulated during one phase; exactly
/// the bunch slice `B_i(u)` once the phase has quiesced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseState {
    /// `distances[v]` is the best known `d(u, v)` for phase sources `v` that
    /// satisfy the bunch condition.
    pub distances: BTreeMap<NodeId, Distance>,
}

/// Algorithm 2 for a single node and a single phase.
#[derive(Debug, Clone)]
pub struct PhaseProgram {
    me: NodeId,
    phase: u32,
    /// This node's level in the hierarchy (`-1` if outside the ground set).
    level: i32,
    /// `key(u, A_{i+1})` — the participation threshold for this phase.
    threshold: DistKey,
    state: PhaseState,
    queue: VecDeque<NodeId>,
    queued: BTreeSet<NodeId>,
}

impl PhaseProgram {
    /// Create the phase-`phase` program for node `me`, whose hierarchy level
    /// is `level` and whose participation threshold (computed in the previous
    /// phase) is `threshold`.
    pub fn new(me: NodeId, phase: u32, level: i32, threshold: DistKey) -> Self {
        PhaseProgram {
            me,
            phase,
            level,
            threshold,
            state: PhaseState::default(),
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
        }
    }

    /// The node this program runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The phase index.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// True if this node is a source of this phase (`u ∈ A_i \ A_{i+1}`).
    pub fn is_source(&self) -> bool {
        self.level == self.phase as i32
    }

    /// The accumulated per-source distances.
    pub fn state(&self) -> &PhaseState {
        &self.state
    }

    fn current_distance(&self, source: NodeId) -> Distance {
        self.state
            .distances
            .get(&source)
            .copied()
            .unwrap_or(INFINITY)
    }

    fn accept(&mut self, source: NodeId, candidate: Distance) -> bool {
        let key = DistKey::new(candidate, source);
        if key >= self.threshold {
            return false;
        }
        if candidate >= self.current_distance(source) {
            return false;
        }
        self.state.distances.insert(source, candidate);
        if self.queued.insert(source) {
            self.queue.push_back(source);
        }
        true
    }
}

impl NodeProgram for PhaseProgram {
    type Message = SourcedAnnouncement;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        if self.is_source() {
            // The source joins its own bunch slice when its own key beats the
            // threshold (it always does unless a zero-weight tie collides).
            self.accept(self.me, 0);
            // Algorithm 2 line 8: announce unconditionally in the first round.
            ctx.broadcast(SourcedAnnouncement {
                source: self.me,
                distance: 0,
            });
            // The origin announcement is the one we just sent, not a queued one.
            self.queued.remove(&self.me);
            self.queue.retain(|&s| s != self.me);
        }
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        // Algorithm 2 lines 10–14: relax incoming announcements.
        let updates: Vec<(NodeId, Distance)> = ctx
            .incoming()
            .iter()
            .map(|inc| {
                (
                    inc.message.source,
                    add_dist(inc.message.distance, inc.edge_weight),
                )
            })
            .collect();
        for (source, candidate) in updates {
            self.accept(source, candidate);
        }
        // Algorithm 2 lines 15–20: serve one queued source.
        if let Some(source) = self.queue.pop_front() {
            self.queued.remove(&source);
            ctx.broadcast(SourcedAnnouncement {
                source,
                distance: self.current_distance(source),
            });
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::{CongestConfig, Network};
    use netgraph::generators::{erdos_renyi, GeneratorConfig};
    use netgraph::shortest_path::multi_source_dijkstra;
    use netgraph::GraphBuilder;

    /// With an infinite threshold and all nodes at level == phase, the phase
    /// degenerates to the k-source shortest-path problem from every node.
    #[test]
    fn unrestricted_phase_computes_exact_distances() {
        let mut b = GraphBuilder::new(5);
        b.add_edge_idx(0, 1, 2);
        b.add_edge_idx(1, 2, 2);
        b.add_edge_idx(2, 3, 2);
        b.add_edge_idx(3, 4, 2);
        b.add_edge_idx(0, 4, 3);
        let g = b.build();
        let sources = [NodeId(0), NodeId(4)];
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            PhaseProgram::new(
                u,
                0,
                if sources.contains(&u) { 0 } else { -1 },
                DistKey::INFINITE,
            )
        });
        let outcome = net.run_until_quiescent(10_000);
        assert!(outcome.completed);
        for &s in &sources {
            let exact = multi_source_dijkstra(&g, &[s]);
            for (i, p) in net.programs().iter().enumerate() {
                assert_eq!(
                    p.state().distances.get(&s).copied().unwrap_or(INFINITY),
                    exact.dist[i],
                    "node {i}, source {s}"
                );
            }
        }
    }

    /// A finite threshold cuts the flood off: announcements that cannot beat
    /// `key(u, A_{i+1})` are neither stored nor forwarded.
    #[test]
    fn threshold_prunes_far_sources() {
        // Path 0 -1- 1 -1- 2 -1- 3; source is node 0; node 2 and 3 have a
        // threshold of 2, so node 2 (distance 2) and node 3 (distance 3) must
        // reject it, and node 3 must never even hear a forwarded message.
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(1, 2, 1);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        let thresholds = [
            DistKey::INFINITE,
            DistKey::INFINITE,
            DistKey::new(2, NodeId(99)),
            DistKey::new(2, NodeId(99)),
        ];
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            PhaseProgram::new(
                u,
                1,
                if u == NodeId(0) { 1 } else { -1 },
                thresholds[u.index()],
            )
        });
        let outcome = net.run_until_quiescent(1_000);
        assert!(outcome.completed);
        let programs = net.programs();
        assert_eq!(programs[1].state().distances.get(&NodeId(0)), Some(&1));
        // Node 2: candidate key (2, v0) >= threshold (2, v99) is false —
        // (2, v0) < (2, v99) lexicographically, so it *is* accepted.
        assert_eq!(programs[2].state().distances.get(&NodeId(0)), Some(&2));
        // Node 3: candidate distance 3 ≥ 2, rejected.
        assert_eq!(programs[3].state().distances.get(&NodeId(0)), None);
    }

    #[test]
    fn strict_threshold_blocks_forwarding_entirely() {
        // Same path but node 1 itself cannot accept the announcement, so the
        // flood stops there and nodes 2, 3 never hear anything.
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 5);
        b.add_edge_idx(1, 2, 1);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            PhaseProgram::new(
                u,
                0,
                if u == NodeId(0) { 0 } else { -1 },
                if u == NodeId(0) {
                    DistKey::INFINITE
                } else {
                    DistKey::new(3, NodeId(50))
                },
            )
        });
        let outcome = net.run_until_quiescent(1_000);
        assert!(outcome.completed);
        assert!(net.programs()[1].state().distances.is_empty());
        assert!(net.programs()[2].state().distances.is_empty());
        // Only the origin broadcast happened: one message per incident edge.
        assert_eq!(outcome.stats.messages, g.degree(NodeId(0)) as u64);
    }

    #[test]
    fn accessors_report_phase_and_source_status() {
        let p = PhaseProgram::new(NodeId(3), 2, 2, DistKey::INFINITE);
        assert_eq!(p.node(), NodeId(3));
        assert_eq!(p.phase(), 2);
        assert!(p.is_source());
        let q = PhaseProgram::new(NodeId(3), 2, 1, DistKey::INFINITE);
        assert!(!q.is_source());
    }

    #[test]
    fn phase_respects_strict_bandwidth_on_dense_graph() {
        let g = erdos_renyi(60, 0.2, GeneratorConfig::uniform(3, 1, 10));
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            PhaseProgram::new(u, 0, 0, DistKey::INFINITE)
        });
        // Every node is a source: the heaviest possible phase.  Completing
        // under the strict config proves the round-robin queue never sends
        // two messages over one edge in one round.
        let outcome = net.run_until_quiescent(10_000_000);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.bandwidth_violations, 0);
    }
}
