//! Online sketch exchange over the network (Section 2.1).
//!
//! After preprocessing, answering a query `d(u, v)` requires `u` to obtain
//! `v`'s sketch.  The paper observes this costs at most `O(D · |sketch|)`
//! rounds — and in practice `O(D + |sketch|)` with pipelining — because only
//! the two endpoints' sketches move, in contrast with the `Ω(S)` rounds of an
//! on-demand shortest-path computation.
//!
//! [`SketchExchangeProgram`] simulates that exchange faithfully in the
//! CONGEST model:
//!
//! 1. the requester floods a one-word `Request` tagged with the target id;
//!    every node remembers the neighbor it first heard the request from
//!    (a parent pointer toward the requester), so the flood doubles as
//!    reverse-path routing state — this costs `O(D)` rounds and `O(|E|)`
//!    messages, the same as any "contact a node by id" primitive;
//! 2. the target streams its sketch back along the reverse path, one bunch
//!    entry (two words) per round — pipelined, so the whole reply takes
//!    `O(D + |sketch|)` rounds;
//! 3. the requester reassembles the sketch and computes the estimate locally
//!    with the Lemma 3.2 query.

use crate::query::estimate_distance;
use crate::sketch::Sketch;
use congest_sim::{MessageSize, NodeContext, NodeProgram};
use netgraph::{Distance, NodeId};
use std::collections::VecDeque;

/// Messages of the exchange protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMessage {
    /// "Node `requester` wants the sketch of node `target`."
    Request {
        /// Node that issued the query.
        requester: NodeId,
        /// Node whose sketch is requested.
        target: NodeId,
    },
    /// One pivot entry of the reply, relayed hop by hop toward the requester.
    ReplyPivot {
        /// Level of the pivot.
        level: u32,
        /// The pivot node.
        node: NodeId,
        /// Distance from the target to the pivot.
        distance: Distance,
    },
    /// One bunch entry of the reply.
    ReplyBunch {
        /// Level of the bunch entry.
        level: u32,
        /// The bunch member.
        node: NodeId,
        /// Distance from the target to the member.
        distance: Distance,
    },
    /// End of the reply stream.
    ReplyDone,
}

impl MessageSize for ExchangeMessage {
    fn words(&self) -> usize {
        match self {
            ExchangeMessage::Request { .. } => 2,
            ExchangeMessage::ReplyPivot { .. } | ExchangeMessage::ReplyBunch { .. } => 2,
            ExchangeMessage::ReplyDone => 1,
        }
    }
}

/// Per-node program implementing the exchange for a single `(requester,
/// target)` query.
#[derive(Debug, Clone)]
pub struct SketchExchangeProgram {
    me: NodeId,
    requester: NodeId,
    target: NodeId,
    /// This node's own sketch (the target streams it back).
    own_sketch: Sketch,
    /// The requester's local sketch (used to answer the query at the end).
    /// `None` on every other node.
    local_sketch_of_requester: Option<Sketch>,
    /// Parent pointer toward the requester, learned from the request flood.
    toward_requester: Option<NodeId>,
    seen_request: bool,
    pending_flood: bool,
    /// Reply entries waiting to be forwarded toward the requester.
    relay_queue: VecDeque<ExchangeMessage>,
    /// At the target: entries not yet injected into the reply stream.
    outgoing_reply: VecDeque<ExchangeMessage>,
    /// At the requester: the reassembled remote sketch.
    received: Option<Sketch>,
    reply_complete: bool,
    /// The final estimate, once computable at the requester.
    estimate: Option<Distance>,
}

impl SketchExchangeProgram {
    /// Create the program for node `me` whose preprocessed sketch is
    /// `own_sketch`, for the query `(requester, target)`.
    pub fn new(me: NodeId, own_sketch: Sketch, requester: NodeId, target: NodeId) -> Self {
        let local_sketch_of_requester = if me == requester {
            Some(own_sketch.clone())
        } else {
            None
        };
        SketchExchangeProgram {
            me,
            requester,
            target,
            own_sketch,
            local_sketch_of_requester,
            toward_requester: None,
            seen_request: false,
            pending_flood: false,
            relay_queue: VecDeque::new(),
            outgoing_reply: VecDeque::new(),
            received: None,
            reply_complete: false,
            estimate: None,
        }
    }

    /// The distance estimate, available at the requester once the reply has
    /// fully arrived.
    pub fn estimate(&self) -> Option<Distance> {
        self.estimate
    }

    /// True once the requester has the full remote sketch.
    pub fn reply_complete(&self) -> bool {
        self.reply_complete
    }

    fn start_reply(&mut self) {
        // Stream pivots first, then bunch entries, then the terminator.
        for (level, pivot) in self.own_sketch.pivots().iter().enumerate() {
            if let Some((node, distance)) = pivot {
                self.outgoing_reply.push_back(ExchangeMessage::ReplyPivot {
                    level: level as u32,
                    node: *node,
                    distance: *distance,
                });
            }
        }
        for (&node, entry) in self.own_sketch.bunch() {
            self.outgoing_reply.push_back(ExchangeMessage::ReplyBunch {
                level: entry.level,
                node,
                distance: entry.distance,
            });
        }
        self.outgoing_reply.push_back(ExchangeMessage::ReplyDone);
    }

    fn record_reply(&mut self, msg: ExchangeMessage) {
        let sketch = self
            .received
            .get_or_insert_with(|| Sketch::new(self.target, self.own_sketch.k.max(1)));
        match msg {
            ExchangeMessage::ReplyPivot {
                level,
                node,
                distance,
            } => {
                if (level as usize) < sketch.k {
                    sketch.set_pivot(level as usize, node, distance);
                }
            }
            ExchangeMessage::ReplyBunch {
                level,
                node,
                distance,
            } => sketch.insert_bunch(node, level, distance),
            ExchangeMessage::ReplyDone => {
                self.reply_complete = true;
            }
            ExchangeMessage::Request { .. } => {}
        }
        if self.reply_complete && self.estimate.is_none() {
            if let (Some(local), Some(remote)) = (
                self.local_sketch_of_requester.as_ref(),
                self.received.as_ref(),
            ) {
                self.estimate = estimate_distance(local, remote).ok();
            }
        }
    }
}

impl NodeProgram for SketchExchangeProgram {
    type Message = ExchangeMessage;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        if self.me == self.requester {
            self.seen_request = true;
            if self.me == self.target {
                // Degenerate self-query.
                self.reply_complete = true;
                self.estimate = Some(0);
                return;
            }
            ctx.broadcast(ExchangeMessage::Request {
                requester: self.requester,
                target: self.target,
            });
        }
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        let incoming: Vec<(NodeId, ExchangeMessage)> = ctx
            .incoming()
            .iter()
            .map(|inc| (inc.from, inc.message))
            .collect();
        for (from, msg) in incoming {
            match msg {
                ExchangeMessage::Request { requester, target } => {
                    if !self.seen_request {
                        self.seen_request = true;
                        self.toward_requester = Some(from);
                        if self.me == target {
                            self.start_reply();
                        } else {
                            self.pending_flood = true;
                        }
                        // Remember the query identity for relaying.
                        self.requester = requester;
                        self.target = target;
                    }
                }
                reply => {
                    if self.me == self.requester {
                        self.record_reply(reply);
                    } else {
                        self.relay_queue.push_back(reply);
                    }
                }
            }
        }

        // Continue the request flood (one round behind the frontier).
        if self.pending_flood {
            self.pending_flood = false;
            ctx.broadcast(ExchangeMessage::Request {
                requester: self.requester,
                target: self.target,
            });
        }

        // Forward at most one reply entry per round toward the requester:
        // entries the target itself injects, or entries being relayed.
        let next_reply = if self.me == self.target {
            self.outgoing_reply.pop_front()
        } else {
            self.relay_queue.pop_front()
        };
        if let Some(msg) = next_reply {
            match self.toward_requester {
                Some(parent) => ctx.send(parent, msg),
                None => {
                    // Only possible if this node *is* the requester-and-target
                    // corner case, handled in on_start.
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        !self.pending_flood && self.relay_queue.is_empty() && self.outgoing_reply.is_empty()
    }
}

/// Run one sketch exchange on `graph` for the query `(requester, target)`,
/// given the preprocessed sketches, and return the estimate together with
/// the CONGEST cost of the online phase.
pub fn run_sketch_exchange(
    graph: &netgraph::Graph,
    sketches: &crate::sketch::SketchSet,
    requester: NodeId,
    target: NodeId,
    config: congest_sim::CongestConfig,
) -> (Option<Distance>, congest_sim::RunStats) {
    let mut net = congest_sim::Network::new(graph, config, |u| {
        SketchExchangeProgram::new(u, sketches.sketch(u).clone(), requester, target)
    });
    let outcome = net.run_until_quiescent(u64::MAX);
    debug_assert!(outcome.completed);
    (net.program(requester).estimate(), outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{SchemeConfig, SketchScheme, ThorupZwickScheme};
    use congest_sim::CongestConfig;
    use netgraph::generators::{erdos_renyi, grid, ring_with_chords, GeneratorConfig};
    use netgraph::shortest_path::dijkstra;

    fn build_sketches(graph: &netgraph::Graph, k: usize) -> crate::sketch::SketchSet {
        ThorupZwickScheme::new(k)
            .build(graph, &SchemeConfig::default().with_seed(7))
            .unwrap()
            .sketches
            .sketches
    }

    #[test]
    fn exchange_reproduces_local_query_result() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(3, 1, 20));
        let sketches = build_sketches(&g, 3);
        let (u, v) = (NodeId(5), NodeId(47));
        let local = estimate_distance(sketches.sketch(u), sketches.sketch(v)).unwrap();
        let (remote, stats) = run_sketch_exchange(&g, &sketches, u, v, CongestConfig::default());
        assert_eq!(remote, Some(local));
        assert!(stats.rounds > 0);
    }

    #[test]
    fn exchange_rounds_scale_with_hops_plus_sketch_size() {
        let g = grid(10, 10, GeneratorConfig::uniform(2, 1, 5));
        let sketches = build_sketches(&g, 2);
        let (u, v) = (NodeId(0), NodeId(99));
        let (estimate, stats) = run_sketch_exchange(&g, &sketches, u, v, CongestConfig::default());
        assert!(estimate.is_some());
        let hops = netgraph::shortest_path::bfs_hops(&g, u)[v.index()] as u64;
        let entries = (sketches.sketch(v).bunch_size() + 2) as u64;
        // Request flood (≈ hops) + pipelined reply (≈ hops + entries), with a
        // small constant of slack for the final quiet round.
        assert!(
            stats.rounds <= 2 * hops + entries + 6,
            "exchange took {} rounds for hops {hops} and {entries} entries",
            stats.rounds
        );
    }

    #[test]
    fn exchange_estimate_respects_stretch_bound() {
        let g = ring_with_chords(60, 10, 500, GeneratorConfig::unit(4));
        let k = 3;
        let sketches = build_sketches(&g, k);
        for (u, v) in [(NodeId(0), NodeId(30)), (NodeId(7), NodeId(52))] {
            let (estimate, _) = run_sketch_exchange(&g, &sketches, u, v, CongestConfig::default());
            let exact = dijkstra(&g, u).distance(v);
            let est = estimate.unwrap();
            assert!(est >= exact);
            assert!(est <= (2 * k as u64 - 1) * exact);
        }
    }

    #[test]
    fn self_query_costs_nothing() {
        let g = grid(4, 4, GeneratorConfig::unit(1));
        let sketches = build_sketches(&g, 2);
        let (estimate, stats) = run_sketch_exchange(
            &g,
            &sketches,
            NodeId(3),
            NodeId(3),
            CongestConfig::default(),
        );
        assert_eq!(estimate, Some(0));
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn message_sizes() {
        assert_eq!(
            ExchangeMessage::Request {
                requester: NodeId(0),
                target: NodeId(1)
            }
            .words(),
            2
        );
        assert_eq!(
            ExchangeMessage::ReplyBunch {
                level: 0,
                node: NodeId(1),
                distance: 3
            }
            .words(),
            2
        );
        assert_eq!(ExchangeMessage::ReplyDone.words(), 1);
    }
}
