//! The distributed Thorup–Zwick construction (Sections 3.2 and 3.3).
//!
//! The construction runs `k` phases, from phase `k − 1` down to phase `0`.
//! In phase `i` the sources are the vertices of `A_i \ A_{i+1}`; a modified
//! distributed Bellman–Ford (the paper's Algorithm 2) floods their distance
//! announcements, but a vertex `u` only adopts and forwards an announcement
//! from source `v` when the announced distance beats `d(u, A_{i+1})` — i.e.
//! exactly when `v` would enter the bunch `B_i(u)`.  Outgoing announcements
//! are queued per source and served round-robin, so the program sends at most
//! one data message per edge per round.
//!
//! Two synchronization modes are provided, matching the two options the paper
//! describes for detecting the end of a phase:
//!
//! * [`SyncMode::GlobalOracle`] — each phase is run as its own simulator
//!   execution and the simulator's global quiescence oracle ends it.  This
//!   models the Section 3.2 assumption that phases can be synchronized
//!   externally (there: by waiting out a known upper bound in terms of `S`);
//!   the measured rounds are the rounds the phase actually needed.
//! * [`SyncMode::TerminationDetection`] — the full Section 3.3 protocol: a
//!   BFS tree is built first, every data message is ECHOed, sources detect
//!   when their announcement has stopped propagating, COMPLETE messages
//!   converge up the tree and the root STARTs the next phase.  The measured
//!   rounds and messages include all of that overhead (experiment E9
//!   quantifies it).

mod exchange;
mod phase;
mod termination;

pub use exchange::{run_sketch_exchange, ExchangeMessage, SketchExchangeProgram};
pub use phase::{PhaseProgram, PhaseState};
pub use termination::TerminationTzProgram;

use crate::error::SketchError;
use crate::hierarchy::{Hierarchy, TzParams};
use crate::sketch::{DistKey, Sketch, SketchSet};
use congest_sim::programs::bfs_tree::build_bfs_tree;
use congest_sim::{CongestConfig, Network, RunStats};
use netgraph::{Graph, NodeId};

/// How phase boundaries are detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Each phase is a separate simulator run ended by the global quiescence
    /// oracle (idealized synchronizer, Section 3.2).
    GlobalOracle,
    /// The distributed termination-detection protocol of Section 3.3
    /// (leader + BFS tree + ECHO/COMPLETE/START), measured inside the run.
    TerminationDetection,
}

/// Configuration of a distributed construction run.
#[derive(Debug, Clone, Copy)]
pub struct DistributedTzConfig {
    /// Phase-boundary detection mode.
    pub sync: SyncMode,
    /// CONGEST engine configuration (threads, bandwidth budget).
    pub congest: CongestConfig,
    /// Safety valve: abort if a single run exceeds this many rounds.
    pub max_rounds: u64,
}

impl Default for DistributedTzConfig {
    fn default() -> Self {
        DistributedTzConfig {
            sync: SyncMode::GlobalOracle,
            congest: CongestConfig::default(),
            max_rounds: 50_000_000,
        }
    }
}

impl DistributedTzConfig {
    /// Use the Section 3.3 termination-detection protocol.
    pub fn with_termination_detection(mut self) -> Self {
        self.sync = SyncMode::TerminationDetection;
        self
    }
}

/// Everything produced by one distributed construction.
///
/// Returned by the deprecated [`DistributedTz`] entry points; the
/// [`crate::scheme::ThorupZwickScheme`] API returns the same data as a
/// [`crate::scheme::BuildOutcome`] instead.
#[derive(Debug, Clone)]
pub struct TzBuildResult {
    /// The per-node labels.
    pub sketches: SketchSet,
    /// The hierarchy that was sampled (or supplied).
    pub hierarchy: Hierarchy,
    /// Total cost: all phases plus (in termination-detection mode) the BFS
    /// tree construction.
    pub stats: RunStats,
    /// Per-phase cost, in execution order (phase `k − 1` first).  Only
    /// populated in [`SyncMode::GlobalOracle`] mode, where phases are
    /// separate runs.
    pub phase_stats: Vec<RunStats>,
    /// Cost of building the BFS tree (termination-detection mode only).
    pub tree_stats: Option<RunStats>,
}

/// Run the distributed Thorup–Zwick construction with an explicit
/// hierarchy.  This is the crate-internal engine behind both
/// [`crate::scheme::ThorupZwickScheme`] and the net-restricted CDG
/// construction.
pub(crate) fn build_with_hierarchy(
    graph: &Graph,
    hierarchy: Hierarchy,
    config: DistributedTzConfig,
) -> Result<TzBuildResult, SketchError> {
    match config.sync {
        SyncMode::GlobalOracle => run_global_oracle(graph, hierarchy, config),
        SyncMode::TerminationDetection => run_termination_detection(graph, hierarchy, config),
    }
}

/// Entry point for the distributed Thorup–Zwick construction.
///
/// Deprecated: every method has a [`crate::scheme`] equivalent that shares
/// its configuration and result shape with the other three sketch families.
/// See the [crate-level migration table](crate#migrating-from-the-deprecated-run-entry-points)
/// for the full old → new mapping.
pub struct DistributedTz;

impl DistributedTz {
    /// Sample a hierarchy from `params` (re-sampling until the top level is
    /// non-empty, as the paper's high-probability analysis assumes) and run
    /// the distributed construction.
    #[deprecated(
        since = "0.1.0",
        note = "use ThorupZwickScheme::new(k).build(graph, &config) or SketchBuilder::thorup_zwick(k)"
    )]
    pub fn run(graph: &Graph, params: &TzParams, config: DistributedTzConfig) -> TzBuildResult {
        #[allow(deprecated)]
        // dsketch-lint: allow(no-unwrap-in-hot-path): deprecated panicking shim; try_run is the typed-error path
        Self::try_run(graph, params, config).expect("distributed TZ construction failed")
    }

    /// Fallible variant of [`DistributedTz::run`].
    #[deprecated(
        since = "0.1.0",
        note = "use ThorupZwickScheme::new(k).build(graph, &config)"
    )]
    pub fn try_run(
        graph: &Graph,
        params: &TzParams,
        config: DistributedTzConfig,
    ) -> Result<TzBuildResult, SketchError> {
        params.validate()?;
        let (hierarchy, _) = Hierarchy::sample_until_top_nonempty(graph.num_nodes(), params, 1000)?;
        build_with_hierarchy(graph, hierarchy, config)
    }

    /// Run the distributed construction with an explicitly provided
    /// hierarchy (used by the equivalence experiments, which hand the same
    /// hierarchy to the centralized construction).
    #[deprecated(
        since = "0.1.0",
        note = "use ThorupZwickScheme::new(k).build_with_hierarchy(graph, hierarchy, &config)"
    )]
    pub fn run_with_hierarchy(
        graph: &Graph,
        hierarchy: Hierarchy,
        config: DistributedTzConfig,
    ) -> TzBuildResult {
        // dsketch-lint: allow(no-unwrap-in-hot-path): deprecated panicking shim; try_run_with_hierarchy is the typed-error path
        build_with_hierarchy(graph, hierarchy, config).expect("distributed TZ construction failed")
    }

    /// Fallible variant of [`DistributedTz::run_with_hierarchy`].
    #[deprecated(
        since = "0.1.0",
        note = "use ThorupZwickScheme::new(k).build_with_hierarchy(graph, hierarchy, &config)"
    )]
    pub fn try_run_with_hierarchy(
        graph: &Graph,
        hierarchy: Hierarchy,
        config: DistributedTzConfig,
    ) -> Result<TzBuildResult, SketchError> {
        build_with_hierarchy(graph, hierarchy, config)
    }
}

/// Oracle-synchronized execution: one simulator run per phase.
fn run_global_oracle(
    graph: &Graph,
    hierarchy: Hierarchy,
    config: DistributedTzConfig,
) -> Result<TzBuildResult, SketchError> {
    let n = graph.num_nodes();
    let k = hierarchy.k();

    let mut sketches: Vec<Sketch> = (0..n)
        .map(|u| Sketch::new(NodeId::from_index(u), k))
        .collect();
    // key(u, A_{i+1}) for the phase currently being run; starts at the
    // all-infinite row for A_k = ∅.
    let mut thresholds = vec![DistKey::INFINITE; n];

    let mut total = RunStats::default();
    let mut phase_stats = Vec::with_capacity(k);

    for phase in (0..k).rev() {
        let mut net = Network::new(graph, config.congest, |u| {
            PhaseProgram::new(
                u,
                phase as u32,
                hierarchy.level_of(u),
                thresholds[u.index()],
            )
        });
        let outcome = net.run_until_quiescent(config.max_rounds);
        if !outcome.completed {
            return Err(SketchError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
        phase_stats.push(outcome.stats.clone());
        total.absorb(&outcome.stats);

        for program in net.programs() {
            let u = program.node();
            let state = program.state();
            // Fold the learned B_i(u) into the sketch and update the
            // threshold/pivot: key(u, A_i) = min(best new key, key(u, A_{i+1})).
            let mut best = thresholds[u.index()];
            for (&source, &dist) in &state.distances {
                sketches[u.index()].insert_bunch(source, phase as u32, dist);
                let key = DistKey::new(dist, source);
                if key < best {
                    best = key;
                }
            }
            if !best.is_infinite() {
                sketches[u.index()].set_pivot(phase, best.node, best.distance);
            }
            thresholds[u.index()] = best;
        }
    }

    Ok(TzBuildResult {
        sketches: SketchSet::new(sketches),
        hierarchy,
        stats: total,
        phase_stats,
        tree_stats: None,
    })
}

/// Fully distributed execution with Section 3.3 termination detection.
fn run_termination_detection(
    graph: &Graph,
    hierarchy: Hierarchy,
    config: DistributedTzConfig,
) -> Result<TzBuildResult, SketchError> {
    // Leader election + BFS tree (paper: O(D) rounds, O(|E| log n) messages).
    let (trees, tree_stats) = build_bfs_tree(graph, config.congest);

    let k = hierarchy.k();
    let mut net = Network::new(graph, config.congest, |u| {
        TerminationTzProgram::new(u, k, hierarchy.level_of(u), trees[u.index()].clone())
    });
    let outcome = net.run_until_quiescent(config.max_rounds);
    if !outcome.completed {
        return Err(SketchError::RoundLimitExceeded {
            limit: config.max_rounds,
        });
    }
    let all_finished = net.programs().iter().all(|p| p.finished());
    if !all_finished {
        return Err(SketchError::RoundLimitExceeded {
            limit: config.max_rounds,
        });
    }

    let sketches: Vec<Sketch> = net.programs().iter().map(|p| p.build_sketch()).collect();

    let mut total = tree_stats.clone();
    total.absorb(&outcome.stats);

    Ok(TzBuildResult {
        sketches: SketchSet::new(sketches),
        hierarchy,
        stats: total,
        phase_stats: Vec::new(),
        tree_stats: Some(tree_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedTz;
    use crate::hierarchy::TzParams;
    use crate::oracle::DistanceOracle;
    use crate::scheme::{SchemeConfig, SketchScheme, ThorupZwickScheme};
    use netgraph::apsp::DistanceTable;
    use netgraph::generators::{erdos_renyi, grid, ring, GeneratorConfig};

    fn check_against_centralized(graph: &Graph, k: usize, seed: u64, config: SchemeConfig) {
        let (h, _) = Hierarchy::sample_until_top_nonempty(
            graph.num_nodes(),
            &TzParams::new(k).with_seed(seed),
            200,
        )
        .unwrap();
        let centralized = CentralizedTz::build(graph, &h);
        let distributed = ThorupZwickScheme::new(k)
            .build_with_hierarchy(graph, h, &config)
            .unwrap();
        for u in graph.nodes() {
            let c = centralized.sketches.sketch(u);
            let d = distributed.sketches.sketch(u);
            assert_eq!(c.pivots(), d.pivots(), "pivot mismatch at {u}");
            assert_eq!(c.bunch(), d.bunch(), "bunch mismatch at {u}");
        }
    }

    #[test]
    fn oracle_mode_matches_centralized_on_random_graph() {
        let g = erdos_renyi(70, 0.08, GeneratorConfig::uniform(13, 1, 25));
        check_against_centralized(&g, 3, 5, SchemeConfig::default());
    }

    #[test]
    fn oracle_mode_matches_centralized_on_grid() {
        let g = grid(7, 7, GeneratorConfig::uniform(4, 1, 10));
        check_against_centralized(&g, 2, 9, SchemeConfig::default());
    }

    #[test]
    fn oracle_mode_matches_centralized_on_ring() {
        let g = ring(40, GeneratorConfig::uniform(6, 1, 8));
        check_against_centralized(&g, 3, 2, SchemeConfig::default());
    }

    #[test]
    fn termination_detection_matches_centralized() {
        let g = erdos_renyi(50, 0.1, GeneratorConfig::uniform(17, 1, 20));
        check_against_centralized(
            &g,
            2,
            3,
            SchemeConfig::default().with_termination_detection(),
        );
    }

    #[test]
    fn termination_detection_matches_oracle_mode_sketches() {
        let g = grid(6, 6, GeneratorConfig::uniform(8, 1, 12));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(36, &TzParams::new(3).with_seed(1), 200).unwrap();
        let scheme = ThorupZwickScheme::new(3);
        let oracle = scheme
            .build_with_hierarchy(&g, h.clone(), &SchemeConfig::default())
            .unwrap();
        let td = scheme
            .build_with_hierarchy(&g, h, &SchemeConfig::default().with_termination_detection())
            .unwrap();
        for u in g.nodes() {
            assert_eq!(
                oracle.sketches.sketch(u),
                td.sketches.sketch(u),
                "sketch mismatch at {u}"
            );
        }
        // Termination detection costs extra rounds and messages (the point of E9).
        assert!(td.stats.messages >= oracle.stats.messages);
        assert!(td.tree_stats.is_some());
        assert!(oracle.tree_stats.is_none());
        assert_eq!(oracle.phase_stats.len(), 3);
    }

    #[test]
    fn stretch_guarantee_end_to_end() {
        let g = erdos_renyi(64, 0.1, GeneratorConfig::uniform(23, 1, 30));
        let k = 3;
        let result = ThorupZwickScheme::new(k)
            .build(&g, &SchemeConfig::default().with_seed(7))
            .unwrap();
        let table = DistanceTable::exact(&g);
        let bound = (2 * k - 1) as u64;
        assert_eq!(result.sketches.stretch_bound(), Some(bound));
        for (u, v, exact) in table.pairs() {
            let est = result.sketches.estimate(u, v).unwrap();
            assert!(est >= exact);
            assert!(est <= bound * exact, "stretch violated for ({u},{v})");
        }
    }

    #[test]
    fn invalid_k_is_rejected() {
        let g = ring(10, GeneratorConfig::unit(1));
        let err = ThorupZwickScheme::new(0).build(&g, &SchemeConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = ring(60, GeneratorConfig::unit(1));
        let config = SchemeConfig::default().with_seed(1).with_max_rounds(2);
        let err = ThorupZwickScheme::new(2).build(&g, &config);
        assert!(matches!(err, Err(SketchError::RoundLimitExceeded { .. })));
    }

    #[test]
    fn rounds_scale_with_shortest_path_diameter() {
        // Same n, very different S: the ring needs far more rounds than the
        // expander, as Theorem 3.8's S-dependence predicts.
        let n = 64;
        let expander = erdos_renyi(n, 0.2, GeneratorConfig::unit(3));
        let cycle = ring(n, GeneratorConfig::unit(3));
        let scheme = ThorupZwickScheme::new(2);
        let config = SchemeConfig::default().with_seed(11);
        let a = scheme.build(&expander, &config).unwrap();
        let b = scheme.build(&cycle, &config).unwrap();
        assert!(
            b.stats.rounds > a.stats.rounds,
            "ring ({}) should need more rounds than expander ({})",
            b.stats.rounds,
            a.stats.rounds
        );
    }

    /// The deprecated entry points must keep producing the same labels as
    /// the scheme API while they exist as shims.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_scheme_api() {
        let g = grid(6, 6, GeneratorConfig::uniform(2, 1, 9));
        let params = TzParams::new(2).with_seed(4);
        let old = DistributedTz::run(&g, &params, DistributedTzConfig::default());
        let new = ThorupZwickScheme::new(2)
            .build(&g, &SchemeConfig::default().with_seed(4))
            .unwrap();
        for u in g.nodes() {
            assert_eq!(old.sketches.sketch(u), new.sketches.sketch(u));
        }
        assert_eq!(old.stats, new.stats);

        let (h, _) = Hierarchy::sample_until_top_nonempty(36, &params, 200).unwrap();
        let old_h = DistributedTz::try_run_with_hierarchy(
            &g,
            h.clone(),
            DistributedTzConfig::default().with_termination_detection(),
        )
        .unwrap();
        let new_h = ThorupZwickScheme::new(2)
            .build_with_hierarchy(&g, h, &SchemeConfig::default().with_termination_detection())
            .unwrap();
        assert_eq!(old_h.stats, new_h.stats);
    }
}
