//! The fully distributed multi-phase construction with the Section 3.3
//! termination-detection protocol.
//!
//! Unlike [`super::phase::PhaseProgram`] (where the simulator's global
//! quiescence oracle ends each phase), this program runs all `k` phases in a
//! single execution and detects phase boundaries itself:
//!
//! * every data announcement is ECHOed back to its sender — immediately if it
//!   was rejected or superseded, or once the re-broadcast it triggered has
//!   itself been fully ECHOed (the paper's per-message echo rule);
//! * a source is *complete* once its own origin announcement's echo tree has
//!   collapsed, i.e. every vertex of its cluster knows its distance;
//! * COMPLETE messages converge up a precomputed BFS tree; when the root is
//!   complete and has heard COMPLETE from every child, the phase is over and
//!   the root STARTs the next phase down the tree (or broadcasts DONE after
//!   phase 0).
//!
//! The ECHO bookkeeping at most doubles the data messages and the
//! COMPLETE/START traffic is `O(n)` per phase plus `O(D)` extra rounds,
//! matching the paper's accounting; experiment E9 measures the observed
//! overhead against the oracle-synchronized mode.

use crate::sketch::{DistKey, Sketch};
use congest_sim::programs::bfs_tree::TreeInfo;
use congest_sim::{MessageSize, NodeContext, NodeProgram};
use netgraph::{add_dist, Distance, NodeId, INFINITY};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Maximum number of queued ECHO messages sent to one neighbor per round.
/// One data message plus two echoes plus one control message stays within the
/// engine's default per-edge budget of four messages per round.
const ECHOES_PER_NEIGHBOR_PER_ROUND: usize = 2;

/// Messages of the termination-detected construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdMessage {
    /// Algorithm 2 data announcement `⟨source, distance⟩` for a phase.
    Data {
        /// Phase the announcement belongs to.
        phase: u32,
        /// The source the distance refers to.
        source: NodeId,
        /// Announced distance from the sender to `source`.
        distance: Distance,
    },
    /// Echo of a previously received `Data` message (same fields).
    Echo {
        /// Phase of the echoed message.
        phase: u32,
        /// Source of the echoed message.
        source: NodeId,
        /// The distance value carried by the echoed message.
        distance: Distance,
    },
    /// Sent up the BFS tree: the sender's subtree has completed `phase`.
    Complete {
        /// The completed phase.
        phase: u32,
    },
    /// Sent down the BFS tree by the root: begin `phase`.
    Start {
        /// The phase to begin.
        phase: u32,
    },
    /// Sent down the BFS tree after phase 0: the construction is finished.
    Done,
}

impl MessageSize for TdMessage {
    fn words(&self) -> usize {
        match self {
            TdMessage::Data { .. } | TdMessage::Echo { .. } => 2,
            TdMessage::Complete { .. } | TdMessage::Start { .. } => 1,
            TdMessage::Done => 1,
        }
    }
}

/// A broadcast whose echoes are still being collected.
#[derive(Debug, Clone)]
struct Outstanding {
    source: NodeId,
    value: Distance,
    remaining: usize,
    /// `(neighbor, original value)` to echo once all our echoes are in;
    /// `None` for our own origin broadcast.
    ack_to: Option<(NodeId, Distance)>,
}

/// The full Section 3.2 + 3.3 program for one node.
#[derive(Debug, Clone)]
pub struct TerminationTzProgram {
    me: NodeId,
    k: usize,
    level: i32,
    tree: TreeInfo,

    // ---- accumulated results ----
    pivots: Vec<Option<(NodeId, Distance)>>,
    bunch: BTreeMap<NodeId, (u32, Distance)>,

    // ---- current phase ----
    phase: u32,
    /// `key(u, A_{phase+1})`.
    threshold: DistKey,
    phase_dist: BTreeMap<NodeId, Distance>,
    queue: VecDeque<NodeId>,
    queued: BTreeSet<NodeId>,
    /// For each queued (not yet broadcast) improvement, the neighbor and
    /// original value that must be echoed when the improvement is broadcast
    /// or superseded.
    pending_ack: BTreeMap<NodeId, (NodeId, Distance)>,
    outstanding: Vec<Outstanding>,
    /// Queued echoes per neighbor, rate-limited per round.
    echo_queues: BTreeMap<NodeId, VecDeque<(u32, NodeId, Distance)>>,
    /// Whether the origin broadcast (if this node is a source this phase) has
    /// been fully echoed.
    origin_complete: bool,
    /// True when this node is a source of the current phase and still has to
    /// broadcast its origin announcement `⟨me, 0⟩`.
    origin_pending: bool,
    /// COMPLETE messages received from tree children, per phase.
    children_complete: BTreeMap<u32, BTreeSet<NodeId>>,
    sent_complete: bool,
    /// Control messages to send this round (kept separate from data/echo so
    /// budgets are respected).
    pending_control: Vec<(NodeId, TdMessage)>,
    finished: bool,
}

impl TerminationTzProgram {
    /// Create the program for node `me`, which knows the total level count
    /// `k`, its own hierarchy `level`, and its view of the BFS `tree`.
    pub fn new(me: NodeId, k: usize, level: i32, tree: TreeInfo) -> Self {
        TerminationTzProgram {
            me,
            k,
            level,
            tree,
            pivots: vec![None; k],
            bunch: BTreeMap::new(),
            phase: k as u32 - 1,
            threshold: DistKey::INFINITE,
            phase_dist: BTreeMap::new(),
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
            pending_ack: BTreeMap::new(),
            outstanding: Vec::new(),
            echo_queues: BTreeMap::new(),
            origin_complete: false,
            origin_pending: false,
            children_complete: BTreeMap::new(),
            sent_complete: false,
            pending_control: Vec::new(),
            finished: false,
        }
    }

    /// True once the DONE wave has reached this node.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The node this program runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Assemble the final label from the accumulated pivots and bunch.
    pub fn build_sketch(&self) -> Sketch {
        let mut sketch = Sketch::new(self.me, self.k);
        for (i, p) in self.pivots.iter().enumerate() {
            if let Some((node, dist)) = p {
                sketch.set_pivot(i, *node, *dist);
            }
        }
        for (&node, &(level, dist)) in &self.bunch {
            sketch.insert_bunch(node, level, dist);
        }
        sketch
    }

    fn is_source_for(&self, phase: u32) -> bool {
        self.level == phase as i32
    }

    fn current_distance(&self, source: NodeId) -> Distance {
        self.phase_dist.get(&source).copied().unwrap_or(INFINITY)
    }

    fn queue_echo(&mut self, to: NodeId, phase: u32, source: NodeId, distance: Distance) {
        self.echo_queues
            .entry(to)
            .or_default()
            .push_back((phase, source, distance));
    }

    /// Accept or reject an incoming data announcement; returns `true` if the
    /// announcement produced a (queued) improvement, in which case the echo
    /// obligation is attached to the queued entry instead of being discharged
    /// immediately.
    fn handle_data(
        &mut self,
        from: NodeId,
        phase: u32,
        source: NodeId,
        announced: Distance,
        edge_weight: Distance,
    ) {
        if phase != self.phase {
            // Either a straggler from a phase this node has already finished
            // (cannot happen once the root's completion logic is correct) or
            // an announcement of the next phase that outran the START wave:
            // advance immediately in the latter case.
            if phase < self.phase && !self.finished {
                self.advance_to_phase(phase);
            } else {
                self.queue_echo(from, phase, source, announced);
                return;
            }
        }
        let candidate = add_dist(announced, edge_weight);
        let key = DistKey::new(candidate, source);
        let improves = key < self.threshold && candidate < self.current_distance(source);
        if !improves {
            self.queue_echo(from, phase, source, announced);
            return;
        }
        // A previously queued improvement for this source is superseded:
        // discharge its echo obligation now (paper: "it might get superseded
        // ... then it sends an ECHO message back").
        if let Some((old_from, old_value)) = self.pending_ack.remove(&source) {
            self.queue_echo(old_from, phase, source, old_value);
        }
        self.phase_dist.insert(source, candidate);
        self.pending_ack.insert(source, (from, announced));
        if self.queued.insert(source) {
            self.queue.push_back(source);
        }
    }

    fn handle_echo(&mut self, phase: u32, source: NodeId, value: Distance) {
        if phase != self.phase {
            return; // echo for an already-finalized phase: nothing to track
        }
        if let Some(pos) = self
            .outstanding
            .iter()
            .position(|o| o.source == source && o.value == value)
        {
            self.outstanding[pos].remaining -= 1;
            if self.outstanding[pos].remaining == 0 {
                let finished = self.outstanding.swap_remove(pos);
                match finished.ack_to {
                    Some((to, original)) => self.queue_echo(to, phase, source, original),
                    None => self.origin_complete = true,
                }
            }
        }
    }

    /// Fold the current phase's results into the sketch state and move to
    /// `target` (which is always `self.phase - 1` in practice, but the loop
    /// tolerates skipping).
    fn advance_to_phase(&mut self, target: u32) {
        while self.phase > target {
            self.finalize_phase();
            self.phase -= 1;
            self.reset_phase_state();
            self.begin_phase();
        }
    }

    fn finalize_phase(&mut self) {
        let phase = self.phase;
        let mut best = self.threshold;
        for (&source, &dist) in &self.phase_dist {
            self.bunch.insert(source, (phase, dist));
            let key = DistKey::new(dist, source);
            if key < best {
                best = key;
            }
        }
        if !best.is_infinite() {
            self.pivots[phase as usize] = Some((best.node, best.distance));
        }
        self.threshold = best;
    }

    fn reset_phase_state(&mut self) {
        self.phase_dist.clear();
        self.queue.clear();
        self.queued.clear();
        self.pending_ack.clear();
        self.outstanding.clear();
        self.origin_complete = false;
        self.origin_pending = false;
        self.sent_complete = false;
    }

    /// Mark the beginning of a phase: sources will emit their origin
    /// announcement at the next send opportunity (Algorithm 2 line 8).
    fn begin_phase(&mut self) {
        if self.is_source_for(self.phase) {
            let key = DistKey::new(0, self.me);
            if key < self.threshold {
                self.phase_dist.insert(self.me, 0);
            }
            self.origin_pending = true;
        }
    }

    fn finish_construction(&mut self) {
        if !self.finished {
            self.finalize_phase();
            self.finished = true;
        }
    }

    /// True when this node itself has nothing left to propagate this phase.
    fn locally_complete(&self) -> bool {
        let origin_ok = !self.is_source_for(self.phase) || self.origin_complete;
        origin_ok
            && !self.origin_pending
            && self.queue.is_empty()
            && self.outstanding.is_empty()
            && self.pending_ack.is_empty()
            && self.echo_queues.values().all(|q| q.is_empty())
    }

    fn children_all_complete(&self) -> bool {
        let set = self.children_complete.get(&self.phase);
        self.tree
            .children
            .iter()
            .all(|c| set.map(|s| s.contains(c)).unwrap_or(false))
    }

    fn maybe_complete_or_advance(&mut self) {
        if self.finished || self.sent_complete {
            return;
        }
        if !(self.locally_complete() && self.children_all_complete()) {
            return;
        }
        match self.tree.parent {
            None => {
                // Root: the phase is globally complete.
                if self.phase == 0 {
                    for &c in &self.tree.children.clone() {
                        self.pending_control.push((c, TdMessage::Done));
                    }
                    self.finish_construction();
                } else {
                    let next = self.phase - 1;
                    for &c in &self.tree.children.clone() {
                        self.pending_control
                            .push((c, TdMessage::Start { phase: next }));
                    }
                    self.advance_to_phase(next);
                }
            }
            Some(parent) => {
                self.sent_complete = true;
                self.pending_control
                    .push((parent, TdMessage::Complete { phase: self.phase }));
            }
        }
    }
}

impl NodeProgram for TerminationTzProgram {
    type Message = TdMessage;

    fn on_start(&mut self, _ctx: &mut NodeContext<'_, Self::Message>) {
        // Everyone knows k, so phase k − 1 starts immediately and together;
        // sources emit their origin announcement in the first round.
        self.begin_phase();
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        // ---- receive ----
        let incoming: Vec<(NodeId, Distance, TdMessage)> = ctx
            .incoming()
            .iter()
            .map(|inc| (inc.from, inc.edge_weight, inc.message))
            .collect();
        for (from, edge_weight, msg) in incoming {
            match msg {
                TdMessage::Data {
                    phase,
                    source,
                    distance,
                } => self.handle_data(from, phase, source, distance, edge_weight),
                TdMessage::Echo {
                    phase,
                    source,
                    distance,
                } => self.handle_echo(phase, source, distance),
                TdMessage::Complete { phase } => {
                    self.children_complete
                        .entry(phase)
                        .or_default()
                        .insert(from);
                }
                TdMessage::Start { phase } => {
                    // Forward down the tree regardless, so the whole subtree
                    // hears about the new phase, and advance if a data
                    // message has not already outrun the START wave.
                    for &c in &self.tree.children.clone() {
                        self.pending_control.push((c, TdMessage::Start { phase }));
                    }
                    if !self.finished && phase < self.phase {
                        self.advance_to_phase(phase);
                    }
                }
                TdMessage::Done => {
                    for &c in &self.tree.children.clone() {
                        self.pending_control.push((c, TdMessage::Done));
                    }
                    self.finish_construction();
                }
            }
        }

        if !self.finished {
            // ---- send at most one data announcement per round ----
            // The origin announcement takes priority (Algorithm 2 line 8);
            // otherwise serve the round-robin queue (lines 15–20).
            if self.origin_pending {
                self.origin_pending = false;
                let degree = ctx.degree();
                if degree == 0 {
                    self.origin_complete = true;
                } else {
                    ctx.broadcast(TdMessage::Data {
                        phase: self.phase,
                        source: self.me,
                        distance: 0,
                    });
                    self.outstanding.push(Outstanding {
                        source: self.me,
                        value: 0,
                        remaining: degree,
                        ack_to: None,
                    });
                }
            } else if let Some(source) = self.queue.pop_front() {
                self.queued.remove(&source);
                let value = self.current_distance(source);
                let ack_to = self.pending_ack.remove(&source);
                let degree = ctx.degree();
                ctx.broadcast(TdMessage::Data {
                    phase: self.phase,
                    source,
                    distance: value,
                });
                self.outstanding.push(Outstanding {
                    source,
                    value,
                    remaining: degree,
                    ack_to,
                });
            }
        }

        // ---- send queued echoes, rate limited per neighbor ----
        let neighbors: Vec<NodeId> = self.echo_queues.keys().copied().collect();
        for to in neighbors {
            for _ in 0..ECHOES_PER_NEIGHBOR_PER_ROUND {
                let entry = self.echo_queues.get_mut(&to).and_then(|q| q.pop_front());
                match entry {
                    Some((phase, source, distance)) => ctx.send(
                        to,
                        TdMessage::Echo {
                            phase,
                            source,
                            distance,
                        },
                    ),
                    None => break,
                }
            }
        }

        // ---- completion / phase transition ----
        self.maybe_complete_or_advance();

        // ---- control messages (COMPLETE / START / DONE) ----
        let control = std::mem::take(&mut self.pending_control);
        for (to, msg) in control {
            ctx.send(to, msg);
        }
    }

    fn is_done(&self) -> bool {
        self.finished
            && self.pending_control.is_empty()
            && self.echo_queues.values().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{Hierarchy, TzParams};
    use crate::scheme::{BuildOutcome, SchemeConfig, ThorupZwickScheme, TzSketchSet};
    use congest_sim::programs::bfs_tree::build_bfs_tree;
    use congest_sim::{CongestConfig, Network};
    use netgraph::generators::{erdos_renyi, grid, preferential_attachment, ring, GeneratorConfig};

    fn run_td(graph: &netgraph::Graph, k: usize, seed: u64) -> BuildOutcome<TzSketchSet> {
        let (h, _) = Hierarchy::sample_until_top_nonempty(
            graph.num_nodes(),
            &TzParams::new(k).with_seed(seed),
            200,
        )
        .unwrap();
        ThorupZwickScheme::new(k)
            .build_with_hierarchy(
                graph,
                h,
                &SchemeConfig::default().with_termination_detection(),
            )
            .unwrap()
    }

    #[test]
    fn message_size_accounting() {
        assert_eq!(
            TdMessage::Data {
                phase: 0,
                source: NodeId(1),
                distance: 2
            }
            .words(),
            2
        );
        assert_eq!(
            TdMessage::Echo {
                phase: 0,
                source: NodeId(1),
                distance: 2
            }
            .words(),
            2
        );
        assert_eq!(TdMessage::Complete { phase: 3 }.words(), 1);
        assert_eq!(TdMessage::Start { phase: 3 }.words(), 1);
        assert_eq!(TdMessage::Done.words(), 1);
    }

    #[test]
    fn terminates_and_all_nodes_finish_on_small_ring() {
        let g = ring(12, GeneratorConfig::uniform(1, 1, 4));
        let result = run_td(&g, 2, 7);
        assert_eq!(result.sketches.len(), 12);
        for s in result.sketches.iter() {
            s.check_invariants().unwrap();
            assert!(s.pivot(0).is_some());
        }
    }

    #[test]
    fn terminates_on_k1() {
        // k = 1: a single phase with every node a source; the labels are the
        // full distance vectors.
        let g = grid(4, 4, GeneratorConfig::uniform(2, 1, 5));
        let result = run_td(&g, 1, 3);
        for s in result.sketches.iter() {
            assert_eq!(s.bunch_size(), 16);
        }
    }

    #[test]
    fn terminates_on_power_law_graph() {
        let g = preferential_attachment(60, 2, GeneratorConfig::uniform(5, 1, 9));
        let result = run_td(&g, 3, 11);
        assert_eq!(result.sketches.len(), 60);
    }

    #[test]
    fn echo_overhead_is_bounded() {
        // The ECHO layer must not more than double the data traffic, plus the
        // O(n)-per-phase control traffic and the BFS-tree construction.
        let g = erdos_renyi(60, 0.08, GeneratorConfig::uniform(19, 1, 10));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(60, &TzParams::new(2).with_seed(4), 200).unwrap();
        let scheme = ThorupZwickScheme::new(2);
        let oracle = scheme
            .build_with_hierarchy(&g, h.clone(), &SchemeConfig::default())
            .unwrap();
        let td = scheme
            .build_with_hierarchy(&g, h, &SchemeConfig::default().with_termination_detection())
            .unwrap();
        let k = 2u64;
        let n = 60u64;
        let tree_messages = td.tree_stats.as_ref().unwrap().messages;
        let control_budget = k * 3 * n + tree_messages;
        assert!(
            td.stats.messages <= 2 * oracle.stats.messages + control_budget,
            "termination-detection messages {} exceed 2x oracle {} + control {}",
            td.stats.messages,
            oracle.stats.messages,
            control_budget
        );
    }

    #[test]
    fn no_bandwidth_violations_under_default_budget() {
        let g = erdos_renyi(50, 0.12, GeneratorConfig::uniform(31, 1, 12));
        let result = run_td(&g, 3, 13);
        assert_eq!(result.stats.bandwidth_violations, 0);
    }

    #[test]
    fn single_node_network_finishes_immediately() {
        let g = netgraph::GraphBuilder::new(1).build();
        let (trees, _) = build_bfs_tree(&g, CongestConfig::default());
        let mut net = Network::new(&g, CongestConfig::default(), |u| {
            TerminationTzProgram::new(u, 1, 0, trees[u.index()].clone())
        });
        let outcome = net.run_until_quiescent(100);
        assert!(outcome.completed);
        assert!(net.programs()[0].finished());
        let sketch = net.programs()[0].build_sketch();
        assert_eq!(sketch.bunch_size(), 1);
    }

    #[test]
    fn build_sketch_reflects_accumulated_state() {
        let mut p = TerminationTzProgram::new(
            NodeId(2),
            2,
            0,
            TreeInfo {
                root: NodeId(0),
                parent: Some(NodeId(0)),
                children: vec![],
                depth: 1,
            },
        );
        assert_eq!(p.node(), NodeId(2));
        assert!(!p.finished());
        p.pivots[0] = Some((NodeId(2), 0));
        p.bunch.insert(NodeId(3), (1, 7));
        let s = p.build_sketch();
        assert_eq!(s.pivot(0), Some((NodeId(2), 0)));
        assert_eq!(s.bunch_distance(NodeId(3)), Some(7));
    }
}
