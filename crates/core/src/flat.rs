//! Frozen, cache-friendly query representation: the CSR sketch layout.
//!
//! The mutable [`Sketch`] stores its bunch as a `BTreeMap<NodeId,
//! BunchEntry>` — the right shape while the construction is still inserting
//! and improving entries, and the wrong shape for serving: every
//! `p_i(u) ∈ B(v)` probe of the Lemma 3.2 walk chases B-tree node pointers
//! across cache lines, and the serve layer pays that cost millions of times
//! per second.  [`FlatSketchSet`] is the read-only counterpart a finished
//! build is *frozen* into: all labels packed into contiguous CSR-style
//! arrays —
//!
//! ```text
//!   pivot_offsets ─┐                bunch_offsets ─┐
//!                  ▼                               ▼
//!   pivot_nodes  [p₀(0) p₁(0) … | p₀(1) … ]   bunch_nodes  [sorted ids of B(0) | B(1) | …]
//!   pivot_dists  [d    d     … | d    … ]   bunch_dists  [matching distances          …]
//! ```
//!
//! — so a membership probe is a branch-light binary search over one
//! contiguous `u32` slice (typically one or two cache lines for realistic
//! bunch sizes), and the best-common-landmark query is a linear merge over
//! two sorted runs.  Bunch *levels* are dropped at freeze time: no query
//! consults them (the level walk reads levels off the pivot slot index),
//! they only matter during construction.
//!
//! A frozen set is built two ways:
//!
//! * [`Freeze::freeze`] — from any in-memory sketch set (all four families
//!   implement it), used by [`crate::scheme::SketchBuilder`]'s `frozen`
//!   toggle.
//! * [`FlatSketchSet::from_family_bytes`] — straight from the `SKCH`
//!   section bytes of a `dsketch-store` snapshot, so a cold-started server
//!   never materializes a `BTreeMap` at all.
//!
//! Both paths produce the same value (`freeze(decode(bytes)) ==
//! from_family_bytes(bytes)`, pinned by tests), and every query function is
//! answer-identical to the `BTreeMap` path — the equivalence property tests
//! in `tests/tests/flat_query.rs` compare them result-for-result, errors
//! included, across all four families.

#![deny(missing_docs)]

use crate::cast;
use crate::codec::{CodecError, Decoder, SketchCodec};
use crate::error::SketchError;
use crate::hierarchy::Hierarchy;
use crate::oracle::{check_nodes, DistanceOracle};
use crate::scheme::SchemeSpec;
use crate::sketch::{Sketch, SketchSet};
use crate::slack::cdg::CdgParams;
use crate::slack::density_net::DensityNet;
use congest_sim::RunStats;
use netgraph::{add_dist, Distance, NodeId, INFINITY};

/// Sentinel stored in a pivot slot whose level has no pivot (`A_i`
/// unreachable or empty) — the flat encoding of `Option::None`.
const NO_PIVOT: NodeId = NodeId(u32::MAX);

/// Which query rule [`DistanceOracle::estimate`] runs on a frozen set.
///
/// Chosen at freeze time to match the family's `BTreeMap`-path oracle:
/// Thorup–Zwick labels answer with the Lemma 3.2 level walk, the slack and
/// degrading families with the best-common-landmark minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRule {
    /// The Lemma 3.2 level walk ([`FlatSketchSet::estimate_walk`]).
    LevelWalk,
    /// The best-common-landmark minimum
    /// ([`FlatSketchSet::estimate_best_common`]).
    BestCommon,
}

/// One layer of labels in CSR form: per-node pivot and bunch ranges over
/// four contiguous arrays.  Single-layer for Thorup–Zwick, 3-stretch and
/// CDG sets; one per CDG layer for the gracefully degrading family.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlatLayer {
    num_nodes: usize,
    /// `num_nodes + 1` entries of `(pivot offset, bunch offset)`: node
    /// `u`'s pivot slots are `offsets[u].0..offsets[u + 1].0` (one per
    /// level, so the range length is `u`'s `k` — per-node `k` may differ)
    /// and its bunch is `offsets[u].1..offsets[u + 1].1`.  One array for
    /// both, so resolving a node's two ranges is a single pair of adjacent
    /// loads (usually one cache line) instead of four scattered ones.
    offsets: Vec<(u32, u32)>,
    /// `(pivot node, distance)` per level slot, interleaved so a node's
    /// whole pivot row sits on one or two cache lines;
    /// `(NO_PIVOT, INFINITY)` where the level has none.
    pivots: Vec<(NodeId, Distance)>,
    /// Bunch members, sorted by node id within each node's range — the
    /// binary-searched key array, kept separate from the distances so
    /// probes (mostly misses) touch keys only.
    bunch_nodes: Vec<NodeId>,
    /// Exact distance to each bunch member, parallel to `bunch_nodes`.
    bunch_dists: Vec<Distance>,
}

/// Binary-search `w` in one node's sorted bunch slice: the search walks
/// only the contiguous `u32` key array (a handful of cache lines for
/// realistic bunch sizes); the parallel distance array is touched on a hit
/// only.
///
/// (Alternatives measured on the e15 matrix and rejected: two hand-rolled
/// "branchless" binary searches, a blocked two-level search with per-node
/// separators, and a vectorizable linear counting scan — every one lost to
/// plain `slice::binary_search` by 2-3× on realistic bunch sizes.  The
/// standard search's early exit plus well-tuned codegen wins; the flat
/// layout's job is to keep its probes on a handful of resident lines,
/// which [`Label::warm`] helps along.)
#[inline]
fn slice_distance(nodes: &[NodeId], dists: &[Distance], w: NodeId) -> Option<Distance> {
    match nodes.binary_search(&w) {
        Ok(i) => Some(dists[i]),
        Err(_) => None,
    }
}

impl FlatLayer {
    fn new() -> FlatLayer {
        FlatLayer {
            num_nodes: 0,
            offsets: vec![(0, 0)],
            pivots: Vec::new(),
            bunch_nodes: Vec::new(),
            bunch_dists: Vec::new(),
        }
    }

    fn offset(len: usize) -> u32 {
        // dsketch-lint: allow(no-unwrap-in-hot-path): capacity contract — layers over u32::MAX entries are unrepresentable by design, checked at freeze time
        u32::try_from(len).expect("flat sketch arrays exceed u32 offset range")
    }

    /// Close out one node: record the end offsets.
    fn seal_node(&mut self) {
        self.num_nodes += 1;
        self.offsets.push((
            Self::offset(self.pivots.len()),
            Self::offset(self.bunch_nodes.len()),
        ));
    }

    fn push_sketch(&mut self, sketch: &Sketch) {
        for pivot in sketch.pivots() {
            self.pivots.push(pivot.unwrap_or((NO_PIVOT, INFINITY)));
        }
        // BTreeMap iteration is ascending by node id: the range arrives
        // pre-sorted, exactly what the binary search and merge need.
        for (&node, entry) in sketch.bunch() {
            self.bunch_nodes.push(node);
            self.bunch_dists.push(entry.distance);
        }
        self.seal_node();
    }

    fn from_sketch_set(set: &SketchSet) -> FlatLayer {
        let mut layer = FlatLayer::new();
        for sketch in set.iter() {
            layer.push_sketch(sketch);
        }
        layer
    }

    /// Decode one `SketchSet` payload (the exact byte layout of
    /// [`SketchSet::decode`]) directly into CSR arrays, never touching a
    /// `BTreeMap`.  Enforces the same invariants as the map-based decoder
    /// (`k ≥ 1`, bunch levels below `k`) plus the two the flat layout
    /// relies on: owners are the node indices, and bunch entries are
    /// strictly ascending by node id (which the canonical encoder
    /// guarantees, since it serializes `BTreeMap` iteration order).
    fn decode_sketch_set(input: &mut Decoder<'_>) -> Result<FlatLayer, CodecError> {
        let count = input.len_prefix(21, "SketchSet length")?;
        let mut layer = FlatLayer::new();
        for index in 0..count {
            let owner = NodeId::decode(input)?;
            if owner.index() != index {
                return Err(CodecError::Invalid {
                    context: "FlatSketchSet owner",
                    message: format!("sketch {index} is owned by {owner}, not its node index"),
                });
            }
            let k = input.len_prefix(1, "Sketch.k")?;
            if k == 0 {
                return Err(CodecError::Invalid {
                    context: "Sketch.k",
                    message: "k must be at least 1".to_string(),
                });
            }
            for _ in 0..k {
                if input.bool("Sketch.pivot flag")? {
                    let node = NodeId::decode(input)?;
                    let distance = input.u64("Sketch.pivot distance")?;
                    layer.pivots.push((node, distance));
                } else {
                    layer.pivots.push((NO_PIVOT, INFINITY));
                }
            }
            let bunch_len = input.len_prefix(16, "Sketch.bunch length")?;
            let mut previous: Option<NodeId> = None;
            for _ in 0..bunch_len {
                let node = NodeId::decode(input)?;
                let level = input.u32("BunchEntry.level")?;
                let distance = input.u64("BunchEntry.distance")?;
                if cast::usize_from_u32(level) >= k {
                    return Err(CodecError::Invalid {
                        context: "Sketch.bunch entry",
                        message: format!("bunch level {level} out of range for k = {k}"),
                    });
                }
                if previous.is_some_and(|p| p >= node) {
                    return Err(CodecError::Invalid {
                        context: "FlatSketchSet bunch order",
                        message: format!(
                            "bunch of node {index} is not strictly ascending at {node}"
                        ),
                    });
                }
                previous = Some(node);
                layer.bunch_nodes.push(node);
                layer.bunch_dists.push(distance);
            }
            layer.seal_node();
        }
        Ok(layer)
    }

    /// Resolve node `u`'s pivot row and bunch slices in one offset lookup.
    #[inline]
    fn label(&self, u: usize) -> Label<'_> {
        let (pivot_start, bunch_start) = self.offsets[u];
        let (pivot_end, bunch_end) = self.offsets[u + 1];
        let (pivot_start, pivot_end) = (
            cast::usize_from_u32(pivot_start),
            cast::usize_from_u32(pivot_end),
        );
        let (bunch_start, bunch_end) = (
            cast::usize_from_u32(bunch_start),
            cast::usize_from_u32(bunch_end),
        );
        Label {
            pivots: &self.pivots[pivot_start..pivot_end],
            bunch_nodes: &self.bunch_nodes[bunch_start..bunch_end],
            bunch_dists: &self.bunch_dists[bunch_start..bunch_end],
        }
    }

    /// The Lemma 3.2 level walk over slices: mirrors
    /// [`crate::query::estimate_distance`] candidate-for-candidate (both
    /// directions per level, smaller estimate wins, first level with a hit
    /// answers).  `None` means no common landmark.
    fn walk(&self, u: usize, v: usize) -> Option<Distance> {
        let lu = self.label(u);
        let lv = self.label(v);
        // Both bunches will be probed on essentially every query (the vast
        // majority need at least one level on each side); starting their
        // first-probe loads here lets the two cache misses overlap instead
        // of serializing behind the pivot reads.
        lu.warm();
        lv.warm();
        let k = lu.pivots.len().max(lv.pivots.len());
        for i in 0..k {
            let mut best: Option<Distance> = None;
            if let Some(&(p, dp)) = lu.pivots.get(i) {
                if p != NO_PIVOT {
                    if let Some(dv) = lv.distance_to(p) {
                        best = Some(add_dist(dp, dv));
                    }
                }
            }
            if let Some(&(p, dp)) = lv.pivots.get(i) {
                if p != NO_PIVOT {
                    if let Some(du) = lu.distance_to(p) {
                        let cand = add_dist(dp, du);
                        best = Some(best.map_or(cand, |b| b.min(cand)));
                    }
                }
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }

    /// Best common landmark over slices: a linear merge intersection of the
    /// two sorted bunch runs plus the pivot probes, mirroring
    /// [`crate::query::estimate_distance_best_common`]'s candidate set
    /// exactly (the minimum over an identical set is identical).
    fn best_common(&self, u: usize, v: usize) -> Option<Distance> {
        let lu = self.label(u);
        let lv = self.label(v);
        let mut best: Option<Distance> = None;
        let mut fold = |candidate: Distance| {
            best = Some(best.map_or(candidate, |b| b.min(candidate)));
        };
        let (mut i, mut j) = (0usize, 0usize);
        while i < lu.bunch_nodes.len() && j < lv.bunch_nodes.len() {
            match lu.bunch_nodes[i].cmp(&lv.bunch_nodes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    fold(add_dist(lu.bunch_dists[i], lv.bunch_dists[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        for (pivot_row, bunch_side) in [(lu.pivots, &lv), (lv.pivots, &lu)] {
            for &(p, dp) in pivot_row {
                if p != NO_PIVOT {
                    if let Some(d) = bunch_side.distance_to(p) {
                        fold(add_dist(dp, d));
                    }
                }
            }
        }
        best
    }

    /// Label size of node `u` in CONGEST words (same accounting as
    /// [`Sketch::words`]: two words per present pivot, two per bunch entry).
    fn words(&self, u: usize) -> usize {
        let label = self.label(u);
        let present = label.pivots.iter().filter(|&&(p, _)| p != NO_PIVOT).count();
        2 * present + 2 * label.bunch_nodes.len()
    }

    /// Largest per-node `k` in this layer (pivot range length).
    fn max_k(&self) -> usize {
        (0..self.num_nodes)
            .map(|u| cast::usize_from_u32(self.offsets[u + 1].0 - self.offsets[u].0))
            .max()
            .unwrap_or(0)
    }
}

/// One node's resolved label: slice views into a layer's arrays.
struct Label<'a> {
    pivots: &'a [(NodeId, Distance)],
    bunch_nodes: &'a [NodeId],
    bunch_dists: &'a [Distance],
}

impl Label<'_> {
    /// Distance to `w` if `w` is in this node's bunch.
    #[inline]
    fn distance_to(&self, w: NodeId) -> Option<Distance> {
        slice_distance(self.bunch_nodes, self.bunch_dists, w)
    }

    /// Touch the start, middle and end of the bunch key run — for typical
    /// bunch sizes that is every cache line a coming binary search can
    /// probe — so the lines are all in flight, in parallel, before they
    /// are needed.  `black_box` keeps the otherwise-dead loads alive; see
    /// [`FlatLayer::walk`].
    #[inline]
    fn warm(&self) {
        let nodes = self.bunch_nodes;
        std::hint::black_box((
            nodes.first().copied(),
            nodes.get(nodes.len() / 2).copied(),
            nodes.last().copied(),
        ));
    }
}

/// A frozen sketch set: every label of a build packed into contiguous
/// CSR arrays, queried without allocation or pointer chasing.
///
/// Build one with [`Freeze::freeze`] from any family's sketch set, with
/// [`crate::scheme::SketchBuilder`]'s `frozen` toggle, or straight from
/// snapshot bytes with [`FlatSketchSet::from_family_bytes`].  A frozen set
/// is a first-class [`DistanceOracle`] whose answers (including errors) are
/// identical to the `BTreeMap` path it was frozen from.
///
/// ```
/// use dsketch::prelude::*;
/// use netgraph::generators::{erdos_renyi, GeneratorConfig};
/// use netgraph::NodeId;
///
/// let graph = erdos_renyi(32, 0.2, GeneratorConfig::uniform(1, 1, 9));
/// let outcome = SketchBuilder::thorup_zwick(2).seed(3).build(&graph).unwrap();
/// let frozen = SketchBuilder::thorup_zwick(2).seed(3).frozen(true).build(&graph).unwrap();
/// assert_eq!(
///     frozen.sketches.estimate(NodeId(0), NodeId(9)).unwrap(),
///     outcome.sketches.estimate(NodeId(0), NodeId(9)).unwrap(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSketchSet {
    /// One layer for TZ/3-stretch/CDG, one per CDG layer for degrading.
    layers: Vec<FlatLayer>,
    rule: QueryRule,
    scheme_name: &'static str,
    stretch_bound: Option<u64>,
}

/// Freeze a finished, mutable sketch set into its [`FlatSketchSet`] form.
///
/// Implemented by the raw [`SketchSet`] and all four family sketch sets;
/// freezing copies the labels once and drops construction-only state
/// (B-tree nodes, bunch levels), after which queries run over contiguous
/// slices.  Freezing never changes an answer: `frozen.estimate(u, v)`
/// equals the source oracle's `estimate(u, v)` for every pair, errors
/// included.
pub trait Freeze {
    /// Pack this set's labels into the frozen CSR representation.
    fn freeze(&self) -> FlatSketchSet;
}

impl Freeze for SketchSet {
    /// A raw label set freezes to a level-walk oracle — the same query rule
    /// and stretch accounting as its own [`DistanceOracle`] impl.
    fn freeze(&self) -> FlatSketchSet {
        let layer = FlatLayer::from_sketch_set(self);
        let stretch = (layer.num_nodes > 0)
            .then(|| (2 * cast::u64_from_usize(layer.max_k())).saturating_sub(1));
        FlatSketchSet {
            layers: vec![layer],
            rule: QueryRule::LevelWalk,
            scheme_name: "thorup-zwick",
            stretch_bound: stretch,
        }
    }
}

impl FlatSketchSet {
    /// Assemble from already-flattened parts (the family `Freeze` impls and
    /// the snapshot decoder funnel through this).
    fn from_parts(
        layers: Vec<FlatLayer>,
        rule: QueryRule,
        scheme_name: &'static str,
        stretch_bound: Option<u64>,
    ) -> FlatSketchSet {
        FlatSketchSet {
            layers,
            rule,
            scheme_name,
            stretch_bound,
        }
    }

    /// Freeze a single-layer family: one [`SketchSet`] plus its query rule
    /// and reporting metadata.
    pub(crate) fn single_layer(
        set: &SketchSet,
        rule: QueryRule,
        scheme_name: &'static str,
        stretch_bound: Option<u64>,
    ) -> FlatSketchSet {
        FlatSketchSet::from_parts(
            vec![FlatLayer::from_sketch_set(set)],
            rule,
            scheme_name,
            stretch_bound,
        )
    }

    /// Freeze the layered degrading family from its per-layer label sets.
    pub(crate) fn layered<'a>(sets: impl Iterator<Item = &'a SketchSet>) -> FlatSketchSet {
        FlatSketchSet::from_parts(
            sets.map(FlatLayer::from_sketch_set).collect(),
            QueryRule::BestCommon,
            "degrading",
            None,
        )
    }

    /// Materialize a frozen set directly from the `SKCH` section payload of
    /// a `DSK1` snapshot, dispatching on the stored [`SchemeSpec`] — the
    /// cold-start path: no `BTreeMap` (and no mutable [`Sketch`]) is ever
    /// constructed.  Accepts exactly the bytes the family's
    /// [`SketchCodec`] encoding produces and enforces the same validity
    /// checks, so corrupt payloads fail with a [`CodecError`], not a panic.
    pub fn from_family_bytes(spec: &SchemeSpec, bytes: &[u8]) -> Result<FlatSketchSet, CodecError> {
        let mut input = Decoder::new(bytes);
        let set = match spec {
            SchemeSpec::ThorupZwick { .. } => {
                // Layout of TzSketchSet: sketches, hierarchy.
                let layer = FlatLayer::decode_sketch_set(&mut input)?;
                let hierarchy = Hierarchy::decode(&mut input)?;
                let stretch = (2 * cast::u64_from_usize(hierarchy.k())).saturating_sub(1);
                FlatSketchSet::from_parts(
                    vec![layer],
                    QueryRule::LevelWalk,
                    "thorup-zwick",
                    Some(stretch),
                )
            }
            SchemeSpec::ThreeStretch { .. } => {
                // Layout of ThreeStretchSketchSet: net, sketches, stats.
                DensityNet::decode(&mut input)?;
                let layer = FlatLayer::decode_sketch_set(&mut input)?;
                RunStats::decode(&mut input)?;
                FlatSketchSet::from_parts(
                    vec![layer],
                    QueryRule::BestCommon,
                    "three-stretch",
                    Some(3),
                )
            }
            SchemeSpec::Cdg { .. } => {
                let (layer, params) = decode_cdg_layer(&mut input)?;
                FlatSketchSet::from_parts(
                    vec![layer],
                    QueryRule::BestCommon,
                    "cdg",
                    Some(params.stretch()),
                )
            }
            SchemeSpec::Degrading { .. } => {
                // Layout of DegradingSketchSet: layer count, CDG layers, stats.
                let count = input.len_prefix(128, "DegradingSketchSet layers length")?;
                let mut layers = Vec::with_capacity(count);
                for _ in 0..count {
                    layers.push(decode_cdg_layer(&mut input)?.0);
                }
                RunStats::decode(&mut input)?;
                FlatSketchSet::from_parts(layers, QueryRule::BestCommon, "degrading", None)
            }
        };
        input.finish()?;
        Ok(set)
    }

    /// The query rule [`DistanceOracle::estimate`] dispatches to.
    pub fn rule(&self) -> QueryRule {
        self.rule
    }

    /// Number of layers (one except for the degrading family).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Check the CSR structural invariants every query path relies on:
    /// per layer, the offset array has `num_nodes + 1` monotone entries
    /// starting at `(0, 0)` and terminating exactly at the pivot/bunch
    /// array lengths, the two bunch arrays are parallel, and every node's
    /// bunch keys are strictly ascending (the binary-search contract).
    ///
    /// Freezing and the validated snapshot decoders cannot produce a
    /// violating value; this exists for the deep verifier (`dsketch-analyze
    /// verify`), which re-checks serving state instead of trusting the
    /// code that built it.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (index, layer) in self.layers.iter().enumerate() {
            let check = |ok: bool, message: String| -> Result<(), String> {
                if ok {
                    Ok(())
                } else {
                    Err(format!("layer {index}: {message}"))
                }
            };
            check(
                layer.offsets.len() == layer.num_nodes + 1,
                format!(
                    "{} offset entries for {} nodes",
                    layer.offsets.len(),
                    layer.num_nodes
                ),
            )?;
            check(
                layer.offsets.first() == Some(&(0, 0)),
                "offset array does not start at (0, 0)".to_string(),
            )?;
            check(
                layer.bunch_nodes.len() == layer.bunch_dists.len(),
                format!(
                    "{} bunch keys but {} bunch distances",
                    layer.bunch_nodes.len(),
                    layer.bunch_dists.len()
                ),
            )?;
            for (node, pair) in layer.offsets.windows(2).enumerate() {
                let (pivot_lo, bunch_lo) = pair[0];
                let (pivot_hi, bunch_hi) = pair[1];
                check(
                    pivot_lo <= pivot_hi && bunch_lo <= bunch_hi,
                    format!("offsets decrease at node {node}"),
                )?;
                check(
                    pivot_lo < pivot_hi,
                    format!("node {node} has an empty pivot row (k = 0)"),
                )?;
                check(
                    cast::usize_from_u32(pivot_hi) <= layer.pivots.len()
                        && cast::usize_from_u32(bunch_hi) <= layer.bunch_nodes.len(),
                    format!("offsets of node {node} point past the end of the arrays"),
                )?;
                let bunch = &layer.bunch_nodes
                    [cast::usize_from_u32(bunch_lo)..cast::usize_from_u32(bunch_hi)];
                check(
                    bunch.windows(2).all(|w| w[0] < w[1]),
                    format!("bunch of node {node} is not strictly ascending"),
                )?;
            }
            let last = layer.offsets[layer.num_nodes];
            check(
                cast::usize_from_u32(last.0) == layer.pivots.len(),
                format!(
                    "offsets terminate at pivot {} but {} pivot slots exist",
                    last.0,
                    layer.pivots.len()
                ),
            )?;
            check(
                cast::usize_from_u32(last.1) == layer.bunch_nodes.len(),
                format!(
                    "offsets terminate at bunch {} but {} bunch entries exist",
                    last.1,
                    layer.bunch_nodes.len()
                ),
            )?;
        }
        Ok(())
    }

    /// The Lemma 3.2 level walk, answered from the flat arrays.  Identical
    /// to [`crate::query::estimate_distance`] over the source sketches (on
    /// multi-layer sets: the minimum over per-layer walks).
    pub fn estimate_walk(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        self.query(u, v, FlatLayer::walk)
    }

    /// The best-common-landmark estimate, answered by merge intersection
    /// over the flat arrays.  Identical to
    /// [`crate::query::estimate_distance_best_common`] over the source
    /// sketches (on multi-layer sets: the minimum over layers, i.e. the
    /// Theorem 4.8 degrading query).
    pub fn estimate_best_common(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        self.query(u, v, FlatLayer::best_common)
    }

    #[inline]
    fn query(
        &self,
        u: NodeId,
        v: NodeId,
        per_layer: impl Fn(&FlatLayer, usize, usize) -> Option<Distance>,
    ) -> Result<Distance, SketchError> {
        check_nodes(self.num_nodes(), u, v)?;
        if u == v {
            return Ok(0);
        }
        let (ui, vi) = (u.index(), v.index());
        if let [layer] = self.layers.as_slice() {
            // Single layer: the per-layer answer is the answer (no INFINITY
            // conflation — an explicit Ok(INFINITY) entry, while no real
            // construction produces one, round-trips like the map path).
            return per_layer(layer, ui, vi).ok_or(SketchError::NoCommonLandmark { u, v });
        }
        // Multi-layer: the degrading rule — minimum over layers.
        let mut best = INFINITY;
        for layer in &self.layers {
            if let Some(est) = per_layer(layer, ui, vi) {
                best = best.min(est);
            }
        }
        if best == INFINITY {
            Err(SketchError::NoCommonLandmark { u, v })
        } else {
            Ok(best)
        }
    }
}

/// Decode one `CdgSketchSet` payload, keeping only the flat layer and the
/// params (for the stretch bound); the net, hierarchy and stats are
/// validated and discarded.
fn decode_cdg_layer(input: &mut Decoder<'_>) -> Result<(FlatLayer, CdgParams), CodecError> {
    let params = CdgParams::decode(input)?;
    DensityNet::decode(input)?;
    Hierarchy::decode(input)?;
    let layer = FlatLayer::decode_sketch_set(input)?;
    RunStats::decode(input)?;
    Ok((layer, params))
}

impl DistanceOracle for FlatSketchSet {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        match self.rule {
            QueryRule::LevelWalk => self.estimate_walk(u, v),
            QueryRule::BestCommon => self.estimate_best_common(u, v),
        }
    }

    /// The batch path the serve layer and benches drive: one pre-sized
    /// output vector, zero further allocation per pair, and the per-pair
    /// work is the slice walk/merge itself (no `BTreeMap` probes and no
    /// per-pair virtual dispatch — `estimate` resolves statically here).
    ///
    fn estimate_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Distance, SketchError>> {
        let mut results = Vec::with_capacity(pairs.len());
        match self.rule {
            QueryRule::LevelWalk => {
                for &(u, v) in pairs {
                    results.push(self.estimate_walk(u, v));
                }
            }
            QueryRule::BestCommon => {
                for &(u, v) in pairs {
                    results.push(self.estimate_best_common(u, v));
                }
            }
        }
        results
    }

    fn num_nodes(&self) -> usize {
        self.layers.first().map_or(0, |layer| layer.num_nodes)
    }

    fn words(&self, u: NodeId) -> usize {
        self.layers.iter().map(|layer| layer.words(u.index())).sum()
    }

    fn scheme_name(&self) -> &'static str {
        self.scheme_name
    }

    fn stretch_bound(&self) -> Option<u64> {
        self.stretch_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{estimate_distance, estimate_distance_best_common};

    /// The toy pair from `query.rs`: landmark 9 with d(0,9)=2, d(1,9)=3.
    fn toy_set() -> SketchSet {
        let mut u = Sketch::new(NodeId(0), 2);
        u.set_pivot(0, NodeId(0), 0);
        u.set_pivot(1, NodeId(9), 2);
        u.insert_bunch(NodeId(0), 0, 0);
        u.insert_bunch(NodeId(9), 1, 2);
        let mut v = Sketch::new(NodeId(1), 2);
        v.set_pivot(0, NodeId(1), 0);
        v.set_pivot(1, NodeId(9), 3);
        v.insert_bunch(NodeId(1), 0, 0);
        v.insert_bunch(NodeId(9), 1, 3);
        SketchSet::new(vec![u, v])
    }

    #[test]
    fn frozen_walk_and_best_common_match_the_map_path() {
        let set = toy_set();
        let flat = set.freeze();
        assert_eq!(flat.num_nodes(), 2);
        assert_eq!(flat.num_layers(), 1);
        assert_eq!(flat.rule(), QueryRule::LevelWalk);
        let (u, v) = (NodeId(0), NodeId(1));
        assert_eq!(
            flat.estimate_walk(u, v).unwrap(),
            estimate_distance(set.sketch(u), set.sketch(v)).unwrap()
        );
        assert_eq!(
            flat.estimate_best_common(u, v).unwrap(),
            estimate_distance_best_common(set.sketch(u), set.sketch(v)).unwrap()
        );
        assert_eq!(flat.estimate(u, u).unwrap(), 0);
        assert_eq!(flat.estimate(u, v), DistanceOracle::estimate(&set, u, v));
        assert_eq!(flat.words(u), set.sketch(u).words());
        assert_eq!(flat.stretch_bound(), DistanceOracle::stretch_bound(&set));
        assert_eq!(flat.scheme_name(), "thorup-zwick");
    }

    #[test]
    fn asymmetric_k_walks_the_longer_pivot_range() {
        // u has k = 1, v has k = 3 with the shared landmark at level 2: the
        // walk must keep going past u's last level, like the map path does.
        let mut u = Sketch::new(NodeId(0), 1);
        u.set_pivot(0, NodeId(0), 0);
        u.insert_bunch(NodeId(0), 0, 0);
        u.insert_bunch(NodeId(9), 0, 2);
        let mut v = Sketch::new(NodeId(1), 3);
        v.set_pivot(0, NodeId(1), 0);
        v.set_pivot(2, NodeId(9), 3);
        v.insert_bunch(NodeId(1), 0, 0);
        v.insert_bunch(NodeId(9), 2, 3);
        let set = SketchSet::new(vec![u, v]);
        let flat = set.freeze();
        let expected = estimate_distance(set.sketch(NodeId(0)), set.sketch(NodeId(1)));
        assert_eq!(expected.as_ref().unwrap(), &5);
        assert_eq!(flat.estimate_walk(NodeId(0), NodeId(1)), expected);
        assert_eq!(flat.estimate_walk(NodeId(1), NodeId(0)), expected);
    }

    #[test]
    fn errors_match_the_map_path() {
        let set = toy_set();
        let flat = set.freeze();
        assert!(matches!(
            flat.estimate(NodeId(0), NodeId(7)),
            Err(SketchError::UnknownNode(NodeId(7)))
        ));
        // Disjoint labels: no common landmark, original argument order kept.
        let mut a = Sketch::new(NodeId(0), 1);
        a.set_pivot(0, NodeId(0), 0);
        a.insert_bunch(NodeId(0), 0, 0);
        let mut b = Sketch::new(NodeId(1), 1);
        b.set_pivot(0, NodeId(1), 0);
        b.insert_bunch(NodeId(1), 0, 0);
        let disjoint = SketchSet::new(vec![a, b]).freeze();
        assert_eq!(
            disjoint.estimate(NodeId(1), NodeId(0)),
            Err(SketchError::NoCommonLandmark {
                u: NodeId(1),
                v: NodeId(0)
            })
        );
        assert!(disjoint.estimate_best_common(NodeId(0), NodeId(1)).is_err());
    }

    #[test]
    fn batch_matches_singles_without_reordering() {
        let set = toy_set();
        let flat = set.freeze();
        let pairs = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(1)),
            (NodeId(0), NodeId(9)),
            (NodeId(1), NodeId(0)),
        ];
        let batch = flat.estimate_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (result, &(u, v)) in batch.iter().zip(&pairs) {
            assert_eq!(result, &flat.estimate(u, v));
        }
    }

    #[test]
    fn empty_set_freezes_to_an_empty_oracle() {
        let flat = SketchSet::new(vec![]).freeze();
        assert_eq!(flat.num_nodes(), 0);
        assert_eq!(flat.max_words(), 0);
        assert_eq!(flat.stretch_bound(), None);
        assert!(matches!(
            flat.estimate(NodeId(0), NodeId(0)),
            Err(SketchError::UnknownNode(_))
        ));
    }

    #[test]
    fn flat_decode_rejects_reordered_and_misowned_payloads() {
        let set = toy_set();
        let spec = SchemeSpec::thorup_zwick(2);

        // A valid TzSketchSet payload decodes flat and equals the freeze.
        let tz = crate::scheme::TzSketchSet {
            sketches: set.clone(),
            hierarchy: Hierarchy::sample(2, &crate::hierarchy::TzParams::new(2).with_seed(1))
                .unwrap(),
        };
        let bytes = tz.to_bytes();
        let flat = FlatSketchSet::from_family_bytes(&spec, &bytes).unwrap();
        assert_eq!(
            flat.estimate(NodeId(0), NodeId(1)),
            DistanceOracle::estimate(&set, NodeId(0), NodeId(1))
        );

        // Owner not equal to the node index is refused.
        let misowned = SketchSet::new(vec![Sketch::new(NodeId(5), 1)]);
        let tz_bad = crate::scheme::TzSketchSet {
            sketches: misowned,
            hierarchy: tz.hierarchy.clone(),
        };
        let err = FlatSketchSet::from_family_bytes(&spec, &tz_bad.to_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::Invalid { context, .. } if context.contains("owner")));

        // A non-ascending bunch is refused: encode one sketch manually with
        // its two bunch entries in descending node order.
        let mut out = crate::codec::Encoder::new();
        NodeId(0).encode(&mut out);
        out.put_usize(2); // k
        out.put_u8(0);
        out.put_u8(0); // no pivots
        out.put_usize(2); // bunch length
        NodeId(9).encode(&mut out);
        out.put_u32(1);
        out.put_u64(2);
        NodeId(0).encode(&mut out);
        out.put_u32(0);
        out.put_u64(0);
        let mut payload = crate::codec::Encoder::new();
        payload.put_usize(1);
        let mut bytes = payload.into_bytes();
        bytes.extend_from_slice(out.as_bytes());
        let mut input = Decoder::new(&bytes);
        let err = FlatLayer::decode_sketch_set(&mut input).unwrap_err();
        assert!(
            matches!(err, CodecError::Invalid { context, .. } if context.contains("bunch order")),
            "descending bunch must be refused"
        );
    }

    #[test]
    fn truncated_family_payloads_fail_with_codec_errors() {
        let tz = crate::scheme::TzSketchSet {
            sketches: toy_set(),
            hierarchy: Hierarchy::sample(2, &crate::hierarchy::TzParams::new(2).with_seed(1))
                .unwrap(),
        };
        let bytes = tz.to_bytes();
        let spec = SchemeSpec::thorup_zwick(2);
        for cut in 0..bytes.len() {
            assert!(
                FlatSketchSet::from_family_bytes(&spec, &bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        // Trailing bytes are rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            FlatSketchSet::from_family_bytes(&spec, &long),
            Err(CodecError::TrailingBytes { .. })
        ));
    }
}
