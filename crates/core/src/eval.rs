//! Stretch evaluation harness.
//!
//! The experiment harness compares sketch estimates against exact distances
//! and reports the statistics the paper's theorems bound: worst-case stretch,
//! average stretch, percentiles, and — for slack sketches — the same
//! statistics restricted to ε-far pairs together with the fraction of pairs
//! that meet the nominal stretch bound.
//!
//! Everything here is scheme-agnostic: the evaluators take any
//! [`DistanceOracle`], so one code path serves all four sketch families (and
//! the baselines, via [`evaluate_pairs`] with a closure).

use crate::error::SketchError;
use crate::oracle::DistanceOracle;
use crate::sketch::SketchSet;
use netgraph::apsp::{DistanceTable, SampledPairs};
use netgraph::{Distance, Graph, NodeId};

/// Aggregate stretch statistics over a set of evaluated pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchReport {
    /// Number of pairs evaluated.
    pub pairs: usize,
    /// Number of pairs for which no estimate could be produced.
    pub failures: usize,
    /// Largest observed stretch.
    pub worst: f64,
    /// Mean stretch.
    pub average: f64,
    /// Median stretch.
    pub median: f64,
    /// 90th-percentile stretch.
    pub p90: f64,
    /// 99th-percentile stretch.
    pub p99: f64,
    /// Fraction of pairs whose estimate was exact (stretch 1).
    pub exact_fraction: f64,
}

impl StretchReport {
    /// Build a report from per-pair stretch values.
    fn from_stretches(mut stretches: Vec<f64>, failures: usize) -> Self {
        let pairs = stretches.len() + failures;
        if stretches.is_empty() {
            return StretchReport {
                pairs,
                failures,
                worst: 0.0,
                average: 0.0,
                median: 0.0,
                p90: 0.0,
                p99: 0.0,
                exact_fraction: 0.0,
            };
        }
        stretches.sort_by(f64::total_cmp);
        let n = stretches.len();
        let pct = |q: f64| stretches[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        StretchReport {
            pairs,
            failures,
            worst: stretches.last().copied().unwrap_or(0.0),
            average: stretches.iter().sum::<f64>() / n as f64,
            median: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            exact_fraction: stretches.iter().filter(|&&s| s <= 1.0 + 1e-12).count() as f64
                / n as f64,
        }
    }

    /// Fraction of evaluated pairs (excluding failures) with stretch at most
    /// `bound` — only meaningful when built through [`evaluate_pairs`], which
    /// records it; recomputed here from the distribution summary is not
    /// possible, so this helper reports whether the *worst* observed stretch
    /// meets the bound.
    pub fn meets_bound(&self, bound: f64) -> bool {
        self.failures == 0 && self.worst <= bound + 1e-9
    }
}

/// Evaluate arbitrary estimator output against exact pairs.
///
/// `estimate` returns `Ok(d')` with `d' ≥ d` or an error when no estimate is
/// possible; pairs at infinite exact distance are skipped.
pub fn evaluate_pairs<F>(pairs: &[(NodeId, NodeId, Distance)], mut estimate: F) -> StretchReport
where
    F: FnMut(NodeId, NodeId) -> Result<Distance, SketchError>,
{
    let mut stretches = Vec::with_capacity(pairs.len());
    let mut failures = 0usize;
    for &(u, v, exact) in pairs {
        if exact == netgraph::INFINITY {
            continue;
        }
        match estimate(u, v) {
            Ok(est) => {
                let exact = exact.max(1) as f64;
                stretches.push(est as f64 / exact);
            }
            Err(_) => failures += 1,
        }
    }
    StretchReport::from_stretches(stretches, failures)
}

/// Evaluate any [`DistanceOracle`] over **all** pairs of a graph.
pub fn evaluate_oracle(graph: &Graph, oracle: &dyn DistanceOracle) -> StretchReport {
    let table = DistanceTable::exact(graph);
    let pairs: Vec<_> = table.pairs().collect();
    evaluate_pairs(&pairs, |u, v| oracle.estimate(u, v))
}

/// Evaluate any [`DistanceOracle`] over a uniform sample of pairs (for
/// graphs where the full quadratic table would dominate the experiment).
pub fn evaluate_oracle_sampled(
    graph: &Graph,
    oracle: &dyn DistanceOracle,
    num_pairs: usize,
    seed: u64,
) -> StretchReport {
    let sampled = SampledPairs::uniform(graph, num_pairs, seed);
    evaluate_pairs(&sampled.pairs, |u, v| oracle.estimate(u, v))
}

/// Evaluate any [`DistanceOracle`] separately on ε-far pairs and on the
/// remaining (near) pairs, as needed to check slack guarantees.
pub fn evaluate_oracle_with_slack(
    graph: &Graph,
    eps: f64,
    oracle: &dyn DistanceOracle,
) -> SlackReport {
    evaluate_with_slack(graph, eps, |u, v| oracle.estimate(u, v))
}

/// Evaluate a Thorup–Zwick [`SketchSet`] over **all** pairs of a graph using
/// the Lemma 3.2 query.
#[deprecated(
    since = "0.1.0",
    note = "use evaluate_oracle (SketchSet is a DistanceOracle)"
)]
pub fn evaluate_sketches(graph: &Graph, sketches: &SketchSet) -> StretchReport {
    evaluate_oracle(graph, sketches)
}

/// Evaluate a [`SketchSet`] over a uniform sample of pairs.
#[deprecated(
    since = "0.1.0",
    note = "use evaluate_oracle_sampled (SketchSet is a DistanceOracle)"
)]
pub fn evaluate_sketches_sampled(
    graph: &Graph,
    sketches: &SketchSet,
    num_pairs: usize,
    seed: u64,
) -> StretchReport {
    evaluate_oracle_sampled(graph, sketches, num_pairs, seed)
}

/// Evaluate an arbitrary estimator separately on ε-far pairs and on the
/// remaining (near) pairs.  The closure form serves baselines that are not
/// [`DistanceOracle`]s; sketch sets use [`evaluate_oracle_with_slack`].
pub fn evaluate_with_slack<F>(graph: &Graph, eps: f64, mut estimate: F) -> SlackReport
where
    F: FnMut(NodeId, NodeId) -> Result<Distance, SketchError>,
{
    let table = DistanceTable::exact(graph);
    let mut far_pairs = Vec::new();
    let mut near_pairs = Vec::new();
    for (u, v, d) in table.pairs() {
        if table.is_eps_far(u, v, eps) {
            far_pairs.push((u, v, d));
        } else {
            near_pairs.push((u, v, d));
        }
    }
    SlackReport {
        eps,
        far: evaluate_pairs(&far_pairs, &mut estimate),
        near: evaluate_pairs(&near_pairs, &mut estimate),
    }
}

/// Stretch statistics split by the ε-far predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackReport {
    /// The slack parameter used for the split.
    pub eps: f64,
    /// Statistics over ε-far pairs (the pairs the guarantee covers).
    pub far: StretchReport,
    /// Statistics over the remaining near pairs (no guarantee).
    pub near: StretchReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedTz;
    use crate::hierarchy::{Hierarchy, TzParams};
    use netgraph::generators::{erdos_renyi, GeneratorConfig};

    fn build_sketches(n: usize, k: usize) -> (Graph, SketchSet) {
        let g = erdos_renyi(n, 0.1, GeneratorConfig::uniform(3, 1, 15));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(1), 200).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        (g, tz.sketches)
    }

    #[test]
    fn report_from_exact_estimator_is_all_ones() {
        let g = erdos_renyi(40, 0.15, GeneratorConfig::uniform(5, 1, 10));
        let table = DistanceTable::exact(&g);
        let pairs: Vec<_> = table.pairs().collect();
        let report = evaluate_pairs(&pairs, |u, v| Ok(table.distance(u, v)));
        assert_eq!(report.failures, 0);
        assert!((report.worst - 1.0).abs() < 1e-9);
        assert!((report.average - 1.0).abs() < 1e-9);
        assert!((report.exact_fraction - 1.0).abs() < 1e-9);
        assert!(report.meets_bound(1.0));
    }

    #[test]
    fn report_statistics_are_ordered() {
        let (g, sketches) = build_sketches(60, 3);
        let report = evaluate_oracle(&g, &sketches);
        assert_eq!(report.failures, 0);
        assert!(report.worst <= 5.0 + 1e-9, "k=3 stretch bound");
        assert!(report.median <= report.p90 + 1e-12);
        assert!(report.p90 <= report.p99 + 1e-12);
        assert!(report.p99 <= report.worst + 1e-12);
        assert!(report.average >= 1.0);
        assert!(report.meets_bound(5.0));
        assert!(!report.meets_bound(report.worst - 0.5));
    }

    #[test]
    fn sampled_evaluation_agrees_roughly_with_full() {
        let (g, sketches) = build_sketches(80, 2);
        let full = evaluate_oracle(&g, &sketches);
        let sampled = evaluate_oracle_sampled(&g, &sketches, 400, 9);
        assert!(sampled.pairs > 0);
        assert!(sampled.worst <= full.worst + 1e-9);
        assert!((sampled.average - full.average).abs() < 0.5);
    }

    #[test]
    fn failures_are_counted() {
        let pairs = vec![(NodeId(0), NodeId(1), 5u64), (NodeId(0), NodeId(2), 7u64)];
        let report = evaluate_pairs(&pairs, |_, v| {
            if v == NodeId(1) {
                Ok(10)
            } else {
                Err(SketchError::UnknownNode(v))
            }
        });
        assert_eq!(report.pairs, 2);
        assert_eq!(report.failures, 1);
        assert!((report.worst - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_produces_empty_report() {
        let report = evaluate_pairs(&[], |_, _| Ok(1));
        assert_eq!(report.pairs, 0);
        assert_eq!(report.worst, 0.0);
    }

    #[test]
    fn infinite_pairs_are_skipped() {
        let pairs = vec![(NodeId(0), NodeId(1), netgraph::INFINITY)];
        let report = evaluate_pairs(&pairs, |_, _| Ok(1));
        assert_eq!(report.pairs, 0);
    }

    #[test]
    fn slack_report_splits_pairs() {
        let g = erdos_renyi(50, 0.12, GeneratorConfig::uniform(7, 1, 10));
        let table = DistanceTable::exact(&g);
        let report = evaluate_with_slack(&g, 0.3, |u, v| Ok(table.distance(u, v)));
        let total = report.far.pairs + report.near.pairs;
        assert_eq!(total, 50 * 49 / 2);
        assert!(report.far.pairs > 0);
        assert!(report.near.pairs > 0);
        assert!((report.eps - 0.3).abs() < 1e-12);
    }
}
