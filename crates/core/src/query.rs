//! Distance estimation from sketches (Lemma 3.2 and its slack variants).
//!
//! Given the labels `L(u)` and `L(v)` the estimate is computed purely
//! locally, in `O(k)` time, with no access to the graph — that is the whole
//! point of a distance sketch.  In a deployed system the two labels would be
//! exchanged over the network (at most `O(D · sketch size)` rounds, Section
//! 2.1); the `examples/p2p_overlay` binary demonstrates that exchange on the
//! simulator.

use crate::error::SketchError;
use crate::sketch::Sketch;
use netgraph::{add_dist, Distance};

/// The Thorup–Zwick query (Lemma 3.2).
///
/// Walks the levels `i = 0, 1, …, k − 1`; at each level it checks whether
/// `p_i(u) ∈ B(v)` and then whether `p_i(v) ∈ B(u)`, returning
/// `d(u, p) + d(p, v)` for the first pivot `p` found in the other node's
/// bunch.  The returned estimate `d'` satisfies
/// `d(u, v) ≤ d' ≤ (2k − 1) · d(u, v)` on a connected graph.
///
/// Returns [`SketchError::NoCommonLandmark`] if no level produces a common
/// node (impossible for Thorup–Zwick sketches of a connected graph with a
/// non-empty top level, but possible for disconnected graphs).
pub fn estimate_distance(u: &Sketch, v: &Sketch) -> Result<Distance, SketchError> {
    if u.owner == v.owner {
        return Ok(0);
    }
    let k = u.k.max(v.k);
    for i in 0..k {
        // Check both directions at this level and keep the smaller estimate,
        // so the query is symmetric in its two arguments.  (The paper checks
        // "p_i(u) ∈ B_i(v) or p_i(v) ∈ B_i(u)" at the first level where
        // either holds; taking the minimum of the two candidates can only
        // improve the estimate and preserves the 2k − 1 bound.)
        let mut best: Option<Distance> = None;
        if let Some((pu, du)) = u.pivot(i) {
            if let Some(dv) = v.bunch_distance(pu) {
                best = Some(add_dist(du, dv));
            }
        }
        if let Some((pv, dv)) = v.pivot(i) {
            if let Some(du) = u.bunch_distance(pv) {
                let cand = add_dist(dv, du);
                best = Some(best.map_or(cand, |b| b.min(cand)));
            }
        }
        if let Some(est) = best {
            return Ok(est);
        }
    }
    Err(SketchError::NoCommonLandmark {
        u: u.owner,
        v: v.owner,
    })
}

/// Query over *all* common bunch members, returning the best (smallest)
/// upper bound rather than the first one the level walk finds.
///
/// This never returns a worse estimate than [`estimate_distance`], at the
/// cost of `O(|B(u)| + |B(v)|)` time instead of `O(k)`.  The experiment
/// harness reports both so the gap between the guaranteed walk and the best
/// available evidence in the sketches is visible.
pub fn estimate_distance_best_common(u: &Sketch, v: &Sketch) -> Result<Distance, SketchError> {
    if u.owner == v.owner {
        return Ok(0);
    }
    let (small, large) = if u.bunch_size() <= v.bunch_size() {
        (u, v)
    } else {
        (v, u)
    };
    let mut best: Option<Distance> = None;
    // Common bunch members.
    for (&w, entry) in small.bunch() {
        if let Some(d_other) = large.bunch_distance(w) {
            let est = add_dist(entry.distance, d_other);
            best = Some(best.map_or(est, |b| b.min(est)));
        }
    }
    // Pivots of one side found in the other side's bunch (the Lemma 3.2
    // candidates), so this is never worse than the level walk.
    for (pivot_side, bunch_side) in [(u, v), (v, u)] {
        for p in pivot_side.pivots().iter().flatten() {
            if let Some(d_other) = bunch_side.bunch_distance(p.0) {
                let est = add_dist(p.1, d_other);
                best = Some(best.map_or(est, |b| b.min(est)));
            }
        }
    }
    best.ok_or(SketchError::NoCommonLandmark {
        u: u.owner,
        v: v.owner,
    })
}

/// Query used by the slack sketches of Theorem 4.3: both sketches store the
/// distance to every node of the density net, and the estimate is
/// `min_{w ∈ N} d(u, w) + d(w, v)`.  Implemented for any pair of sketches by
/// minimizing over the common bunch members; provided as a named alias so
/// call sites read like the paper.
pub fn estimate_distance_slack(u: &Sketch, v: &Sketch) -> Result<Distance, SketchError> {
    estimate_distance_best_common(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Sketch;
    use netgraph::NodeId;

    /// Hand-built sketches for a toy metric:
    /// nodes 0, 1 and a "landmark" node 9 with d(0,9)=2, d(1,9)=3, d(0,1)=4.
    fn toy_pair() -> (Sketch, Sketch) {
        let mut u = Sketch::new(NodeId(0), 2);
        u.set_pivot(0, NodeId(0), 0);
        u.set_pivot(1, NodeId(9), 2);
        u.insert_bunch(NodeId(0), 0, 0);
        u.insert_bunch(NodeId(9), 1, 2);

        let mut v = Sketch::new(NodeId(1), 2);
        v.set_pivot(0, NodeId(1), 0);
        v.set_pivot(1, NodeId(9), 3);
        v.insert_bunch(NodeId(1), 0, 0);
        v.insert_bunch(NodeId(9), 1, 3);
        (u, v)
    }

    #[test]
    fn identical_nodes_have_zero_distance() {
        let (u, _) = toy_pair();
        assert_eq!(estimate_distance(&u, &u).unwrap(), 0);
        assert_eq!(estimate_distance_best_common(&u, &u).unwrap(), 0);
    }

    #[test]
    fn query_uses_common_pivot() {
        let (u, v) = toy_pair();
        // Common landmark 9: estimate 2 + 3 = 5 >= d(0,1) = 4.
        assert_eq!(estimate_distance(&u, &v).unwrap(), 5);
        assert_eq!(estimate_distance(&v, &u).unwrap(), 5);
        assert_eq!(estimate_distance_best_common(&u, &v).unwrap(), 5);
        assert_eq!(estimate_distance_slack(&u, &v).unwrap(), 5);
    }

    #[test]
    fn level_zero_shortcut_when_in_each_others_bunch() {
        let (mut u, mut v) = toy_pair();
        // If 1 ∈ B(0) and 0 ∈ B(1) with the exact distance, level 0 already
        // answers exactly.
        u.insert_bunch(NodeId(1), 0, 4);
        v.insert_bunch(NodeId(0), 0, 4);
        assert_eq!(estimate_distance(&u, &v).unwrap(), 4);
        assert_eq!(estimate_distance_best_common(&u, &v).unwrap(), 4);
    }

    #[test]
    fn best_common_can_beat_level_walk() {
        // Build sketches where the level walk stops at a worse pivot than the
        // best common bunch member.
        let mut u = Sketch::new(NodeId(0), 3);
        u.set_pivot(0, NodeId(0), 0);
        u.set_pivot(1, NodeId(5), 10);
        u.insert_bunch(NodeId(5), 1, 10);
        u.insert_bunch(NodeId(6), 1, 1);

        let mut v = Sketch::new(NodeId(1), 3);
        v.set_pivot(0, NodeId(1), 0);
        v.set_pivot(1, NodeId(5), 10);
        v.insert_bunch(NodeId(5), 1, 10);
        v.insert_bunch(NodeId(6), 1, 2);

        let walk = estimate_distance(&u, &v).unwrap();
        let best = estimate_distance_best_common(&u, &v).unwrap();
        assert_eq!(walk, 20);
        assert_eq!(best, 3);
        assert!(best <= walk);
    }

    #[test]
    fn disjoint_sketches_report_no_common_landmark() {
        let mut u = Sketch::new(NodeId(0), 1);
        u.set_pivot(0, NodeId(0), 0);
        u.insert_bunch(NodeId(0), 0, 0);
        let mut v = Sketch::new(NodeId(1), 1);
        v.set_pivot(0, NodeId(1), 0);
        v.insert_bunch(NodeId(1), 0, 0);
        assert!(matches!(
            estimate_distance(&u, &v),
            Err(SketchError::NoCommonLandmark { .. })
        ));
        assert!(estimate_distance_best_common(&u, &v).is_err());
    }

    #[test]
    fn asymmetric_k_values_are_handled() {
        let (u, mut v) = toy_pair();
        // Give v an extra empty level; the query must still find level 1.
        v.k = 3;
        assert_eq!(estimate_distance(&u, &v).unwrap(), 5);
    }
}
