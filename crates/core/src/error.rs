//! Error types shared across the sketch constructions.

use netgraph::NodeId;

/// Errors surfaced by sketch construction and querying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// A query was asked about a node the sketch set does not cover.
    UnknownNode(NodeId),
    /// Two sketches share no common pivot or bunch member, so no estimate can
    /// be produced.  For Thorup–Zwick sketches on a connected graph this
    /// cannot happen (level `k − 1` pivots are always shared); it can happen
    /// for slack sketches when the graph is disconnected.
    NoCommonLandmark {
        /// First queried node.
        u: NodeId,
        /// Second queried node.
        v: NodeId,
    },
    /// Construction parameters were invalid (e.g. `k = 0` or `ε ∉ (0, 1)`).
    InvalidParameters(String),
    /// The distributed construction hit its round limit before terminating.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A serving shard panicked while this query batch was in flight.  The
    /// supervisor restarts the shard with a fresh cache, so retrying the
    /// same query is expected to succeed.
    ShardPanicked {
        /// Index of the shard that panicked.
        shard: usize,
    },
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::UnknownNode(u) => write!(f, "unknown node {u}"),
            SketchError::NoCommonLandmark { u, v } => {
                write!(f, "no common landmark between {u} and {v}")
            }
            SketchError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            SketchError::RoundLimitExceeded { limit } => {
                write!(f, "round limit of {limit} exceeded before termination")
            }
            SketchError::ShardPanicked { shard } => {
                write!(
                    f,
                    "query shard {shard} panicked mid-batch; it has been restarted — retry"
                )
            }
        }
    }
}

impl std::error::Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SketchError::UnknownNode(NodeId(3))
            .to_string()
            .contains("v3"));
        assert!(SketchError::NoCommonLandmark {
            u: NodeId(1),
            v: NodeId(2)
        }
        .to_string()
        .contains("landmark"));
        assert!(SketchError::InvalidParameters("k must be >= 1".into())
            .to_string()
            .contains("k must be"));
        assert!(SketchError::RoundLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(SketchError::ShardPanicked { shard: 2 }
            .to_string()
            .contains("shard 2"));
    }
}
