//! The [`DistanceOracle`] trait: the uniform query surface of every sketch
//! family.
//!
//! The paper presents four constructions — Thorup–Zwick (Theorem 1.1),
//! 3-stretch slack (Theorem 4.3), (ε, k)-CDG (Theorem 1.2) and gracefully
//! degrading (Theorem 1.3) — that share one shape: *build labels in CONGEST
//! rounds, then answer distance queries from two labels alone*.  The trait
//! captures the second half of that shape; [`crate::scheme::SketchScheme`]
//! captures the first.  Everything downstream of construction — stretch
//! evaluation, benchmarking, serving — operates on `&dyn DistanceOracle`
//! and is completely scheme-agnostic, so a new sketch family (or a remote /
//! sharded backend) only has to implement this trait to plug in.

#![deny(missing_docs)]

use crate::error::SketchError;
use crate::query::estimate_distance;
use crate::sketch::SketchSet;
use netgraph::{Distance, NodeId};

/// A built set of distance sketches, queryable without the graph.
///
/// Implementations answer `estimate(u, v)` purely from the two nodes' labels
/// (the whole point of a distance sketch) and report the per-node label size
/// in CONGEST words, using the paper's accounting (one word per node id, one
/// word per distance).
///
/// Estimates are always **upper bounds**: `estimate(u, v) ≥ d(u, v)`.  How
/// tight the bound is depends on the scheme; [`DistanceOracle::stretch_bound`]
/// reports the scheme's nominal guarantee.
///
/// Estimates are also **symmetric**: `estimate(u, v)` and `estimate(v, u)`
/// return the same *value* whenever both succeed (error payloads may name
/// the queried nodes in argument order).  All four families satisfy this —
/// the queries minimize over common landmarks, checking both directions —
/// and downstream layers rely on it: the serve layer canonicalises
/// `(u, v)`/`(v, u)` onto one shard and one cache entry.  A custom
/// implementation (e.g. a directed-graph backend) that cannot guarantee
/// symmetry must not be served through `dsketch-serve`'s caching path.
///
/// The trait requires `Send + Sync`: a built oracle is immutable label data,
/// and the serving layer (`dsketch-serve`) shares one oracle across query
/// shards behind an `Arc`.  All four sketch-set types are plain owned data,
/// so the bound costs implementations nothing.
///
/// ```
/// use dsketch::prelude::*;
/// use netgraph::generators::{erdos_renyi, GeneratorConfig};
/// use netgraph::NodeId;
///
/// let graph = erdos_renyi(32, 0.2, GeneratorConfig::uniform(1, 1, 9));
/// let outcome = SketchBuilder::thorup_zwick(2).seed(4).build(&graph).unwrap();
///
/// // Single queries and batches answer from labels alone.
/// let one = outcome.sketches.estimate(NodeId(0), NodeId(9)).unwrap();
/// let batch = outcome.sketches.estimate_batch(&[(NodeId(0), NodeId(9))]);
/// assert_eq!(batch[0].as_ref().unwrap(), &one);
/// ```
pub trait DistanceOracle: Send + Sync {
    /// Estimate `d(u, v)` from the two nodes' sketches alone.
    ///
    /// Returns [`SketchError::UnknownNode`] when a node is outside the
    /// sketch set, and [`SketchError::NoCommonLandmark`] when the labels
    /// share no landmark (possible on disconnected graphs, and for slack
    /// sketches on near pairs of sparse nets).
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError>;

    /// Estimate a batch of pairs, one result per pair, in input order.
    ///
    /// The default implementation maps [`DistanceOracle::estimate`] over the
    /// slice; implementations with a cheaper amortized path (shared lookups,
    /// remote round-trip pooling) can override it.  Batches are the unit the
    /// serving layer ships between client and shard threads, so keeping this
    /// on the trait lets a remote backend answer a whole batch in one hop.
    fn estimate_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Distance, SketchError>> {
        pairs.iter().map(|&(u, v)| self.estimate(u, v)).collect()
    }

    /// Number of nodes the oracle covers.
    fn num_nodes(&self) -> usize;

    /// Label size of node `u` in CONGEST words.
    fn words(&self, u: NodeId) -> usize;

    /// Short scheme identifier (e.g. `"thorup-zwick"`), used in reports.
    fn scheme_name(&self) -> &'static str;

    /// The scheme's nominal multiplicative stretch guarantee, if it has one.
    ///
    /// For Thorup–Zwick this covers **all** pairs (`2k − 1`); for the slack
    /// schemes it covers the ε-far pairs only (`3` and `8k − 1`); the
    /// gracefully degrading sketch has no single bound (its guarantee is the
    /// curve `O(log 1/ε)` for every ε) and returns `None`.
    fn stretch_bound(&self) -> Option<u64>;

    /// Largest label over all nodes, in words.
    fn max_words(&self) -> usize {
        (0..self.num_nodes())
            .map(|u| self.words(NodeId::from_index(u)))
            .max()
            .unwrap_or(0)
    }

    /// Mean label size, in words.
    fn avg_words(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            return 0.0;
        }
        self.total_words() as f64 / n as f64
    }

    /// Total size of all labels, in words.
    fn total_words(&self) -> usize {
        (0..self.num_nodes())
            .map(|u| self.words(NodeId::from_index(u)))
            .sum()
    }
}

/// Reject queries about nodes outside `0..n` instead of panicking on an
/// out-of-bounds index (shared guard for every oracle implementation).
pub(crate) fn check_nodes(n: usize, u: NodeId, v: NodeId) -> Result<(), SketchError> {
    if u.index() >= n {
        return Err(SketchError::UnknownNode(u));
    }
    if v.index() >= n {
        return Err(SketchError::UnknownNode(v));
    }
    Ok(())
}

/// A raw [`SketchSet`] answers queries with the Lemma 3.2 level walk — this
/// is the Thorup–Zwick oracle.  (The scheme-built wrapper
/// [`crate::scheme::TzSketchSet`] adds the sampled hierarchy; both share
/// this query path.)
impl DistanceOracle for SketchSet {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        check_nodes(self.len(), u, v)?;
        estimate_distance(self.sketch(u), self.sketch(v))
    }

    fn num_nodes(&self) -> usize {
        self.len()
    }

    fn words(&self, u: NodeId) -> usize {
        self.sketch(u).words()
    }

    fn scheme_name(&self) -> &'static str {
        "thorup-zwick"
    }

    fn stretch_bound(&self) -> Option<u64> {
        // 2k − 1, with k the level count of the labels.
        self.iter()
            .map(|s| s.k)
            .max()
            .map(|k| (2 * k as u64).saturating_sub(1))
    }
}

impl DistanceOracle for Box<dyn DistanceOracle> {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        (**self).estimate(u, v)
    }

    fn estimate_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Distance, SketchError>> {
        (**self).estimate_batch(pairs)
    }

    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn words(&self, u: NodeId) -> usize {
        (**self).words(u)
    }

    fn scheme_name(&self) -> &'static str {
        (**self).scheme_name()
    }

    fn stretch_bound(&self) -> Option<u64> {
        (**self).stretch_bound()
    }

    fn max_words(&self) -> usize {
        (**self).max_words()
    }

    fn avg_words(&self) -> f64 {
        (**self).avg_words()
    }

    fn total_words(&self) -> usize {
        (**self).total_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Sketch;

    fn tiny_set() -> SketchSet {
        let mut a = Sketch::new(NodeId(0), 2);
        a.set_pivot(0, NodeId(0), 0);
        a.set_pivot(1, NodeId(1), 3);
        a.insert_bunch(NodeId(0), 0, 0);
        a.insert_bunch(NodeId(1), 1, 3);
        let mut b = Sketch::new(NodeId(1), 2);
        b.set_pivot(0, NodeId(1), 0);
        b.set_pivot(1, NodeId(1), 0);
        b.insert_bunch(NodeId(1), 1, 0);
        SketchSet::new(vec![a, b])
    }

    #[test]
    fn sketch_set_is_an_oracle() {
        let set = tiny_set();
        let oracle: &dyn DistanceOracle = &set;
        assert_eq!(oracle.num_nodes(), 2);
        assert_eq!(oracle.scheme_name(), "thorup-zwick");
        assert_eq!(oracle.stretch_bound(), Some(3));
        assert_eq!(oracle.estimate(NodeId(0), NodeId(1)).unwrap(), 3);
        assert_eq!(oracle.estimate(NodeId(0), NodeId(0)).unwrap(), 0);
        assert_eq!(oracle.words(NodeId(0)), 8);
        assert_eq!(oracle.max_words(), 8);
        assert_eq!(oracle.total_words(), 8 + 6);
        assert!((oracle.avg_words() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_nodes_are_rejected_not_panicked() {
        let set = tiny_set();
        assert!(matches!(
            DistanceOracle::estimate(&set, NodeId(0), NodeId(9)),
            Err(SketchError::UnknownNode(NodeId(9)))
        ));
        assert!(matches!(
            DistanceOracle::estimate(&set, NodeId(7), NodeId(0)),
            Err(SketchError::UnknownNode(NodeId(7)))
        ));
    }

    #[test]
    fn batch_estimates_match_singles_in_order() {
        let set = tiny_set();
        let pairs = [
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(0)),
            (NodeId(0), NodeId(9)),
        ];
        let batch = set.estimate_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (result, &(u, v)) in batch.iter().zip(&pairs) {
            assert_eq!(result, &DistanceOracle::estimate(&set, u, v));
        }
        assert!(matches!(batch[2], Err(SketchError::UnknownNode(NodeId(9)))));
    }

    #[test]
    fn oracles_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn DistanceOracle>();
        assert_send_sync::<SketchSet>();
    }

    #[test]
    fn boxed_oracle_delegates() {
        let boxed: Box<dyn DistanceOracle> = Box::new(tiny_set());
        assert_eq!(boxed.estimate(NodeId(0), NodeId(1)).unwrap(), 3);
        assert_eq!(boxed.scheme_name(), "thorup-zwick");
        assert_eq!(boxed.max_words(), 8);
    }

    #[test]
    fn empty_oracle_statistics() {
        let set = SketchSet::new(vec![]);
        let oracle: &dyn DistanceOracle = &set;
        assert_eq!(oracle.max_words(), 0);
        assert_eq!(oracle.avg_words(), 0.0);
        assert_eq!(oracle.stretch_bound(), None);
    }
}
