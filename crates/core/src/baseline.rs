//! Baselines the sketches are compared against in the experiment harness.
//!
//! * [`ExactOracle`] — store the full distance vector at every node
//!   (`n` words per node, stretch 1).  This is the "straightforward brute
//!   force solution" the introduction dismisses as infeasible at scale; it
//!   anchors the size axis of the size/stretch trade-off plots.
//! * [`LandmarkSketch`] — `L` uniformly random landmarks, every node stores
//!   its distance to each of them, estimate `min_ℓ d(u, ℓ) + d(ℓ, v)`.  This
//!   is the folklore baseline that the ε-density-net construction of
//!   Theorem 4.3 refines (the net gives a provable 3-stretch ε-slack bound;
//!   uniform landmarks give no worst-case guarantee).

use crate::error::SketchError;
use netgraph::apsp::DistanceTable;
use netgraph::shortest_path::multi_source_dijkstra;
use netgraph::{Distance, Graph, NodeId, INFINITY};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Exact all-pairs oracle: every node stores its whole distance vector.
#[derive(Debug, Clone)]
pub struct ExactOracle {
    table: DistanceTable,
}

impl ExactOracle {
    /// Build the oracle (centralized, `n` Dijkstra runs).
    pub fn build(graph: &Graph) -> Self {
        ExactOracle {
            table: DistanceTable::exact(graph),
        }
    }

    /// The exact distance.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        let d = self.table.distance(u, v);
        if d == INFINITY {
            Err(SketchError::NoCommonLandmark { u, v })
        } else {
            Ok(d)
        }
    }

    /// Per-node storage in words (one distance per other node).
    pub fn words_per_node(&self) -> usize {
        self.table.num_nodes().saturating_sub(1)
    }
}

/// Uniform-landmark sketch baseline.
#[derive(Debug, Clone)]
pub struct LandmarkSketch {
    landmarks: Vec<NodeId>,
    /// `dist[l][u]` — distance from landmark `l` (by index) to node `u`.
    dist: Vec<Vec<Distance>>,
}

impl LandmarkSketch {
    /// Pick `num_landmarks` uniformly at random (seeded) and precompute the
    /// distances from each of them.
    pub fn build(graph: &Graph, num_landmarks: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut nodes: Vec<NodeId> = graph.nodes().collect();
        nodes.shuffle(&mut rng);
        let landmarks: Vec<NodeId> = nodes.into_iter().take(num_landmarks.max(1)).collect();
        let dist = landmarks
            .iter()
            .map(|&l| multi_source_dijkstra(graph, &[l]).dist)
            .collect();
        LandmarkSketch { landmarks, dist }
    }

    /// The chosen landmarks.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Estimate `d(u, v) ≈ min_ℓ d(u, ℓ) + d(ℓ, v)`.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        if u == v {
            return Ok(0);
        }
        let mut best = INFINITY;
        for row in &self.dist {
            let (du, dv) = (row[u.index()], row[v.index()]);
            if du != INFINITY && dv != INFINITY {
                best = best.min(du.saturating_add(dv));
            }
        }
        if best == INFINITY {
            Err(SketchError::NoCommonLandmark { u, v })
        } else {
            Ok(best)
        }
    }

    /// Per-node storage in words (id + distance per landmark).
    pub fn words_per_node(&self) -> usize {
        2 * self.landmarks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_pairs;
    use netgraph::generators::{erdos_renyi, ring, GeneratorConfig};

    #[test]
    fn exact_oracle_is_exact() {
        let g = erdos_renyi(40, 0.15, GeneratorConfig::uniform(3, 1, 10));
        let oracle = ExactOracle::build(&g);
        let table = DistanceTable::exact(&g);
        let pairs: Vec<_> = table.pairs().collect();
        let report = evaluate_pairs(&pairs, |u, v| oracle.estimate(u, v));
        assert!((report.worst - 1.0).abs() < 1e-9);
        assert_eq!(oracle.words_per_node(), 39);
    }

    #[test]
    fn exact_oracle_reports_disconnection() {
        let mut b = netgraph::GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 1);
        let g = b.build();
        let oracle = ExactOracle::build(&g);
        assert!(oracle.estimate(NodeId(0), NodeId(2)).is_err());
        assert_eq!(oracle.estimate(NodeId(0), NodeId(1)).unwrap(), 1);
    }

    #[test]
    fn landmark_estimates_are_upper_bounds() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(7, 1, 20));
        let sketch = LandmarkSketch::build(&g, 8, 5);
        let table = DistanceTable::exact(&g);
        for (u, v, exact) in table.pairs() {
            let est = sketch.estimate(u, v).unwrap();
            assert!(est >= exact);
        }
        assert_eq!(sketch.words_per_node(), 16);
        assert_eq!(sketch.landmarks().len(), 8);
    }

    #[test]
    fn landmark_self_distance_is_zero() {
        let g = ring(10, GeneratorConfig::unit(1));
        let sketch = LandmarkSketch::build(&g, 2, 1);
        assert_eq!(sketch.estimate(NodeId(3), NodeId(3)).unwrap(), 0);
    }

    #[test]
    fn more_landmarks_do_not_hurt_accuracy() {
        let g = erdos_renyi(70, 0.08, GeneratorConfig::uniform(11, 1, 25));
        let table = DistanceTable::exact(&g);
        let pairs: Vec<_> = table.pairs().collect();
        let few = LandmarkSketch::build(&g, 2, 9);
        let many = LandmarkSketch::build(&g, 20, 9);
        let report_few = evaluate_pairs(&pairs, |u, v| few.estimate(u, v));
        let report_many = evaluate_pairs(&pairs, |u, v| many.estimate(u, v));
        assert!(report_many.average <= report_few.average + 1e-9);
    }

    #[test]
    fn landmark_determinism() {
        let g = erdos_renyi(40, 0.1, GeneratorConfig::uniform(2, 1, 9));
        let a = LandmarkSketch::build(&g, 5, 7);
        let b = LandmarkSketch::build(&g, 5, 7);
        assert_eq!(a.landmarks(), b.landmarks());
    }
}
