//! The parallel **direct** construction engine: the same sketches the
//! CONGEST simulation produces, computed by batching the independent
//! per-seed shortest-path explorations across worker threads.
//!
//! # Two engines, one output
//!
//! Every scheme in this workspace has two ways to be built, selected by
//! [`crate::scheme::SchemeConfig::engine`]:
//!
//! * [`BuildEngine::Congest`](crate::scheme::BuildEngine::Congest) — the
//!   paper-faithful CONGEST simulation ([`crate::distributed`]), which is
//!   what the round/message theorems are measured on.  This is the default.
//! * [`BuildEngine::Parallel`](crate::scheme::BuildEngine::Parallel) — this
//!   module: the production build path.  It computes the *identical* labels
//!   directly on the graph, replacing each simulated flood with the exact
//!   exploration it converges to (Lemma 3.5 / experiment E8 is precisely
//!   the statement that the two coincide):
//!
//!   | simulated protocol | direct exploration |
//!   |---|---|
//!   | phase-`i` threshold flood (Algorithm 2) | one truncated Dijkstra per source `w ∈ A_i \ A_{i+1}` ([cluster growth](crate::centralized)) |
//!   | per-level pivot discovery | one lexicographic multi-source Dijkstra per level |
//!   | k-source Bellman–Ford from the density net (Thm 4.3) | one Dijkstra per net node |
//!   | CDG / degrading layers (Thm 4.6 / 4.8) | the Thorup–Zwick engine on the net-restricted hierarchy, per layer |
//!
//! Each exploration touches only its own output, so the batch runs on the
//! [`crate::parallel`] worker pool; the merge back into per-node sketches is
//! sequential and index-ordered, which makes `threads = k` **bit-identical**
//! to `threads = 1` — down to the serialized `DSK1` snapshot bytes (property
//! tested in `tests/tests/parallel_build.rs`, measured in experiment `e14`).
//!
//! The centralized Thorup–Zwick baseline ([`crate::centralized`]) is this
//! engine at `threads = 1`: [`CentralizedTz::build`](crate::centralized::CentralizedTz::build)
//! delegates here, so the correctness oracle and the fast path can never
//! drift apart.
//!
//! ```
//! use dsketch::build;
//! use dsketch::hierarchy::{Hierarchy, TzParams};
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//!
//! let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
//! let (hierarchy, _) =
//!     Hierarchy::sample_until_top_nonempty(64, &TzParams::new(3).with_seed(42), 100).unwrap();
//!
//! let one = build::thorup_zwick(&graph, &hierarchy, 1);
//! let four = build::thorup_zwick(&graph, &hierarchy, 4);
//! assert_eq!(one.sketches, four.sketches); // bit-identical labels
//! assert!(four.timings.is_recorded());
//! ```

#![deny(missing_docs)]

use crate::centralized::{grow_cluster, lexicographic_multi_source, ClusterScratch};
use crate::hierarchy::Hierarchy;
use crate::parallel::{parallel_map, parallel_map_with, resolve_threads, BuildTimings};
use crate::sketch::{DistKey, Sketch, SketchSet};
use netgraph::{Graph, NodeId};
use std::time::Instant;

/// Result of one direct Thorup–Zwick build: the labels plus the
/// intermediate state the centralized baseline exposes.
#[derive(Debug, Clone)]
pub struct DirectTzBuild {
    /// The per-node labels (identical to the CONGEST construction's).
    pub sketches: SketchSet,
    /// `pivot_keys[i][u]` — the lexicographic key of `d(u, A_i)`; index `k`
    /// holds the all-infinite row for `A_k = ∅`.
    pub pivot_keys: Vec<Vec<DistKey>>,
    /// Total number of cluster-membership pairs (`Σ_w |C(w)|`), the
    /// classical proxy for construction work.
    pub total_cluster_size: usize,
    /// Wall-clock timings of the batched phases.
    pub timings: BuildTimings,
}

/// Build Thorup–Zwick labels for `hierarchy` on `threads` worker threads
/// (`0` = all available parallelism).
///
/// Given the same hierarchy this produces exactly the labels of the
/// distributed Section 3.2 construction and of the centralized baseline —
/// see the [module docs](self) for why — and the output is independent of
/// `threads`.
pub fn thorup_zwick(graph: &Graph, hierarchy: &Hierarchy, threads: usize) -> DirectTzBuild {
    let n = graph.num_nodes();
    let k = hierarchy.k();
    let threads = resolve_threads(threads);
    let mut timings = BuildTimings::new(threads);

    // Phase 1: pivot keys — one lexicographic multi-source Dijkstra per
    // level, each independent of the others.
    let started = Instant::now();
    let level_sources: Vec<Vec<NodeId>> = (0..k).map(|i| hierarchy.level_members(i)).collect();
    let mut pivot_keys: Vec<Vec<DistKey>> = parallel_map(threads, &level_sources, |_, sources| {
        lexicographic_multi_source(graph, sources)
    });
    pivot_keys.push(vec![DistKey::INFINITE; n]);
    timings.record("tz/pivots", k, started);

    // Phase 2: clusters — one truncated Dijkstra per source `w`, by far the
    // dominant cost.  The work list is (level, source) in deterministic
    // order; each worker reuses one scratch buffer across its items.
    let started = Instant::now();
    let work: Vec<(usize, NodeId)> = (0..k)
        .flat_map(|i| {
            hierarchy
                .exact_level_members(i)
                .into_iter()
                .map(move |w| (i, w))
        })
        .collect();
    let pivot_keys_ref = &pivot_keys;
    let clusters = parallel_map_with(
        threads,
        &work,
        || ClusterScratch::new(n),
        |scratch, _, &(level, w)| grow_cluster(graph, w, &pivot_keys_ref[level + 1], scratch),
    );
    timings.record("tz/clusters", work.len(), started);

    // Phase 3: deterministic merge, in work-list order.  Each source lands
    // in exactly one cluster, so the merge is a disjoint scatter.
    let started = Instant::now();
    let mut sketches: Vec<Sketch> = (0..n)
        .map(|u| Sketch::new(NodeId::from_index(u), k))
        .collect();
    for (u, sketch) in sketches.iter_mut().enumerate() {
        for (level, keys) in pivot_keys.iter().take(k).enumerate() {
            let key = keys[u];
            if !key.is_infinite() {
                sketch.set_pivot(level, key.node, key.distance);
            }
        }
    }
    let mut total_cluster_size = 0usize;
    for (&(level, w), cluster) in work.iter().zip(&clusters) {
        total_cluster_size += cluster.len();
        for &(u, dist) in cluster {
            sketches[u.index()].insert_bunch(w, level as u32, dist);
        }
    }
    timings.record("tz/merge", n, started);

    DirectTzBuild {
        sketches: SketchSet::new(sketches),
        pivot_keys,
        total_cluster_size,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::TzParams;
    use crate::scheme::{SchemeConfig, ThorupZwickScheme};
    use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};

    fn hierarchy_for(n: usize, k: usize, seed: u64) -> Hierarchy {
        Hierarchy::sample_until_top_nonempty(n, &TzParams::new(k).with_seed(seed), 200)
            .unwrap()
            .0
    }

    #[test]
    fn direct_build_matches_the_congest_simulation() {
        let g = erdos_renyi(72, 0.09, GeneratorConfig::uniform(3, 1, 25));
        let h = hierarchy_for(72, 3, 5);
        let simulated = ThorupZwickScheme::new(3)
            .build_with_hierarchy(&g, h.clone(), &SchemeConfig::default())
            .unwrap();
        let direct = thorup_zwick(&g, &h, 2);
        for u in g.nodes() {
            assert_eq!(
                simulated.sketches.sketches.sketch(u),
                direct.sketches.sketch(u),
                "label mismatch at {u}"
            );
        }
    }

    #[test]
    fn thread_count_never_changes_the_output() {
        let g = grid(8, 8, GeneratorConfig::uniform(11, 1, 9));
        let h = hierarchy_for(64, 3, 2);
        let reference = thorup_zwick(&g, &h, 1);
        for threads in [2usize, 4, 8] {
            let build = thorup_zwick(&g, &h, threads);
            assert_eq!(reference.sketches, build.sketches, "threads = {threads}");
            assert_eq!(reference.pivot_keys, build.pivot_keys);
            assert_eq!(reference.total_cluster_size, build.total_cluster_size);
        }
    }

    #[test]
    fn timings_cover_the_three_phases() {
        let g = grid(6, 6, GeneratorConfig::uniform(2, 1, 5));
        let h = hierarchy_for(36, 2, 1);
        let build = thorup_zwick(&g, &h, 2);
        let phases: Vec<&str> = build
            .timings
            .phases
            .iter()
            .map(|p| p.phase.as_str())
            .collect();
        assert_eq!(phases, vec!["tz/pivots", "tz/clusters", "tz/merge"]);
        assert_eq!(build.timings.threads, 2);
        assert_eq!(
            build.timings.phases[0].items, 2,
            "one exploration per level"
        );
        assert!(build.timings.is_recorded());
    }
}
