//! The (ε, k)-CDG sketch (Theorem 4.6, after Chan–Dinitz–Gupta).
//!
//! Construction (Lemma 4.5): sample an ε-density net `N`, then run the
//! distributed Thorup–Zwick construction with the level hierarchy restricted
//! to `N` (ground set `A_0 = N`, per-level sampling probability
//! `((10/ε) ln n)^{-1/k}`).  Every node `u ∈ V` — not just the net nodes —
//! ends up with a well-defined label: its pivots `p_i(u) ∈ A_i ⊆ N`, its
//! bunches `B_i(u) ⊆ N`, and the exact distances to them.  In particular
//! `p_0(u)` is exactly the closest net node `u'` with its distance
//! `d(u, u')`, so the paper's separate "super-source Bellman–Ford" step is
//! subsumed by phase 0 of the restricted construction.
//!
//! **Deviation from the paper (documented in DESIGN.md):** the paper defines
//! the sketch of `u` as `(u', d(u, u'), L(u'))` — the label of the *net
//! node* — which would require shipping `L(u')` from `u'` to `u`, a routing
//! step the paper does not account for.  We instead keep `u`'s *own*
//! net-restricted label, which the construction already delivers to `u`, has
//! the same asymptotic size, and satisfies the same `(8k − 1)`-stretch
//! ε-slack guarantee (the triangle-inequality argument of Section 4 goes
//! through verbatim with `u`'s own pivots in place of `u'`'s).

use crate::distributed::{self, DistributedTzConfig};
use crate::error::SketchError;
use crate::flat::{FlatSketchSet, Freeze, QueryRule};
use crate::hierarchy::Hierarchy;
use crate::oracle::{check_nodes, DistanceOracle};
use crate::query::{estimate_distance, estimate_distance_best_common};
use crate::sketch::SketchSet;
use crate::slack::density_net::DensityNet;
use congest_sim::RunStats;
use netgraph::{Distance, Graph, NodeId};

/// Parameters of a CDG sketch construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdgParams {
    /// Slack parameter ε ∈ (0, 1].
    pub eps: f64,
    /// Level count `k ≥ 1`; the guaranteed stretch for ε-far pairs is `8k − 1`.
    pub k: usize,
    /// Sampling seed (density net and hierarchy).
    pub seed: u64,
}

impl CdgParams {
    /// Construct parameters.
    pub fn new(eps: f64, k: usize) -> Self {
        CdgParams { eps, k, seed: 0 }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The paper's stretch guarantee `8k − 1` for ε-far pairs.
    pub fn stretch(&self) -> u64 {
        8 * self.k as u64 - 1
    }

    /// The paper's per-level sampling probability `((10/ε) ln n)^{-1/k}`.
    pub fn level_probability(&self, num_nodes: usize) -> f64 {
        if self.k <= 1 {
            return 0.0;
        }
        let bound = 10.0 / self.eps * (num_nodes.max(2) as f64).ln();
        bound.max(2.0).powf(-1.0 / self.k as f64).clamp(0.0, 1.0)
    }

    /// Validate.
    pub fn validate(&self) -> Result<(), SketchError> {
        if self.k == 0 {
            return Err(SketchError::InvalidParameters("k must be >= 1".into()));
        }
        if !(self.eps > 0.0 && self.eps <= 1.0) {
            return Err(SketchError::InvalidParameters(format!(
                "epsilon must be in (0, 1], got {}",
                self.eps
            )));
        }
        Ok(())
    }
}

/// The result of a CDG construction.
#[derive(Debug, Clone)]
pub struct CdgSketchSet {
    /// Parameters the sketches were built with.
    pub params: CdgParams,
    /// The sampled density net.
    pub net: DensityNet,
    /// The net-restricted hierarchy.
    pub hierarchy: Hierarchy,
    /// Per-node labels (pivots and bunches live inside the net).
    pub sketches: SketchSet,
    /// Simulation cost.
    pub stats: RunStats,
}

impl CdgSketchSet {
    /// Estimate `d(u, v)` with the Lemma 3.2 level walk over the
    /// net-restricted labels.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        estimate_distance(self.sketches.sketch(u), self.sketches.sketch(v))
    }

    /// Estimate using the best common landmark (never worse than
    /// [`CdgSketchSet::estimate`]).
    pub fn estimate_best(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        estimate_distance_best_common(self.sketches.sketch(u), self.sketches.sketch(v))
    }

    /// The closest net node to `u` and its distance (`p_0(u)`).
    pub fn closest_net_node(&self, u: NodeId) -> Option<(NodeId, Distance)> {
        self.sketches.sketch(u).pivot(0)
    }

    /// Maximum label size in words.
    pub fn max_words(&self) -> usize {
        self.sketches.max_words()
    }

    /// Average label size in words.
    pub fn avg_words(&self) -> f64 {
        self.sketches.avg_words()
    }
}

impl Freeze for CdgSketchSet {
    /// Freeze to a best-common-landmark oracle, matching the map-path
    /// [`DistanceOracle`] impl ([`CdgSketchSet::estimate_best`]).
    fn freeze(&self) -> FlatSketchSet {
        FlatSketchSet::single_layer(
            &self.sketches,
            QueryRule::BestCommon,
            "cdg",
            Some(self.params.stretch()),
        )
    }
}

impl DistanceOracle for CdgSketchSet {
    /// Queries use the best-common-landmark rule
    /// ([`CdgSketchSet::estimate_best`]), which is never worse than the
    /// Lemma 3.2 level walk and satisfies the same `(8k − 1)` ε-slack bound.
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        check_nodes(self.sketches.len(), u, v)?;
        self.estimate_best(u, v)
    }

    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    fn words(&self, u: NodeId) -> usize {
        self.sketches.sketch(u).words()
    }

    fn scheme_name(&self) -> &'static str {
        "cdg"
    }

    /// Theorem 4.6's `8k − 1` bound, covering the ε-far pairs.
    fn stretch_bound(&self) -> Option<u64> {
        Some(self.params.stretch())
    }
}

/// The Theorem 4.6 construction: sample the net, restrict the hierarchy to
/// it, run the distributed Thorup–Zwick engine.  Crate-internal engine
/// behind [`crate::scheme::CdgScheme`] and the deprecated [`DistributedCdg`]
/// shim.
pub(crate) fn build(
    graph: &Graph,
    params: CdgParams,
    config: DistributedTzConfig,
) -> Result<CdgSketchSet, SketchError> {
    params.validate()?;
    let n = graph.num_nodes();
    let net = DensityNet::sample_nonempty(n, params.eps, params.seed)?;
    let hierarchy = sample_net_hierarchy(n, &net, params, graph)?;
    let result = distributed::build_with_hierarchy(graph, hierarchy, config)?;
    Ok(CdgSketchSet {
        params,
        net,
        hierarchy: result.hierarchy,
        sketches: result.sketches,
        stats: result.stats,
    })
}

/// The direct parallel counterpart of [`build`]: identical sampling (net +
/// net-restricted hierarchy from the same seed), then the shared parallel
/// Thorup–Zwick engine [`crate::build::thorup_zwick`] instead of the
/// CONGEST simulation.  Construction engine behind
/// [`crate::scheme::BuildEngine::Parallel`] for [`crate::scheme::CdgScheme`].
pub(crate) fn build_direct(
    graph: &Graph,
    params: CdgParams,
    threads: usize,
) -> Result<(CdgSketchSet, crate::parallel::BuildTimings), SketchError> {
    params.validate()?;
    let n = graph.num_nodes();
    let net = DensityNet::sample_nonempty(n, params.eps, params.seed)?;
    let hierarchy = sample_net_hierarchy(n, &net, params, graph)?;
    let built = crate::build::thorup_zwick(graph, &hierarchy, threads);
    Ok((
        CdgSketchSet {
            params,
            net,
            hierarchy,
            sketches: built.sketches,
            stats: RunStats::default(),
        },
        built.timings,
    ))
}

/// Builder for (ε, k)-CDG sketches (deprecated shim over
/// [`crate::scheme::CdgScheme`]; see the
/// [crate-level migration table](crate#migrating-from-the-deprecated-run-entry-points)).
pub struct DistributedCdg;

impl DistributedCdg {
    /// Run the distributed construction.
    #[deprecated(
        since = "0.1.0",
        note = "use CdgScheme::new(eps, k).build(graph, &config) or SketchBuilder::cdg(eps, k)"
    )]
    pub fn run(
        graph: &Graph,
        params: CdgParams,
        config: DistributedTzConfig,
    ) -> Result<CdgSketchSet, SketchError> {
        build(graph, params, config)
    }
}

/// Sample the net-restricted hierarchy, retrying seeds (and, as a last
/// resort, lowering `k`) until the top level is non-empty, as the paper's
/// high-probability analysis assumes.
fn sample_net_hierarchy(
    num_nodes: usize,
    net: &DensityNet,
    params: CdgParams,
    _graph: &Graph,
) -> Result<Hierarchy, SketchError> {
    let mut k = params.k;
    loop {
        let probability = CdgParams { k, ..params }.level_probability(num_nodes);
        for attempt in 0..200u64 {
            let h = Hierarchy::sample_on_ground_set(
                num_nodes,
                net.members(),
                k,
                probability,
                params.seed.wrapping_add(attempt).wrapping_mul(0x9E37_79B9),
            )?;
            if h.top_level_nonempty() {
                return Ok(h);
            }
        }
        if k == 1 {
            return Err(SketchError::InvalidParameters(
                "could not sample a usable net hierarchy".into(),
            ));
        }
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{CdgScheme, SchemeConfig, SketchScheme};
    use crate::slack::is_eps_far;
    use netgraph::apsp::DistanceTable;
    use netgraph::generators::{erdos_renyi, grid, ring, GeneratorConfig};

    fn build_scheme(graph: &Graph, params: CdgParams) -> CdgSketchSet {
        CdgScheme::new(params.eps, params.k)
            .build(graph, &SchemeConfig::default().with_seed(params.seed))
            .unwrap()
            .sketches
    }

    fn check_cdg(graph: &Graph, params: CdgParams) -> CdgSketchSet {
        let table = DistanceTable::exact(graph);
        let result = build_scheme(graph, params);
        let bound = params.stretch();
        for (u, v, exact) in table.pairs() {
            if let Ok(est) = result.estimate(u, v) {
                assert!(est >= exact, "underestimate for ({u},{v})");
                if is_eps_far(&table, u, v, params.eps) {
                    assert!(
                        est <= bound * exact,
                        "CDG stretch violated for ({u},{v}): est {est}, exact {exact}, bound {bound}"
                    );
                }
            } else {
                // A missing estimate is only acceptable for pairs that are
                // not eps-far (the slack).
                assert!(!is_eps_far(&table, u, v, params.eps));
            }
        }
        result
    }

    #[test]
    fn stretch_with_slack_on_random_graph() {
        let g = erdos_renyi(90, 0.08, GeneratorConfig::uniform(3, 1, 20));
        check_cdg(&g, CdgParams::new(0.2, 2).with_seed(4));
    }

    #[test]
    fn stretch_with_slack_on_grid() {
        let g = grid(8, 8, GeneratorConfig::uniform(5, 1, 10));
        check_cdg(&g, CdgParams::new(0.25, 2).with_seed(9));
    }

    #[test]
    fn stretch_with_slack_on_ring_k1() {
        let g = ring(40, GeneratorConfig::uniform(2, 1, 6));
        check_cdg(&g, CdgParams::new(0.3, 1).with_seed(1));
    }

    #[test]
    fn closest_net_node_matches_exact_distances() {
        let g = erdos_renyi(70, 0.1, GeneratorConfig::uniform(7, 1, 15));
        let table = DistanceTable::exact(&g);
        let params = CdgParams::new(0.3, 2).with_seed(3);
        let result = build_scheme(&g, params);
        for u in g.nodes() {
            let (closest, dist) = result.closest_net_node(u).expect("net is nonempty");
            let exact_min = result
                .net
                .members()
                .iter()
                .map(|&w| table.distance(u, w))
                .min()
                .unwrap();
            assert_eq!(dist, exact_min, "closest-net distance wrong at {u}");
            assert!(result.net.contains(closest));
        }
    }

    #[test]
    fn sketch_size_shrinks_with_smaller_k_of_net() {
        // With a fixed eps, the CDG sketch must be far smaller than the full
        // n-node TZ bunch structure: entries only reference net nodes.
        let n = 200;
        let g = erdos_renyi(n, 0.05, GeneratorConfig::uniform(11, 1, 10));
        let params = CdgParams::new(0.2, 2).with_seed(5);
        let result = build_scheme(&g, params);
        assert!(result.max_words() <= 2 * (result.net.len() + params.k));
        for s in result.sketches.iter() {
            for &member in s.bunch().keys() {
                assert!(result.net.contains(member), "bunch member outside the net");
            }
        }
    }

    #[test]
    fn params_validation_and_accessors() {
        assert!(CdgParams::new(0.5, 0).validate().is_err());
        assert!(CdgParams::new(0.0, 2).validate().is_err());
        assert!(CdgParams::new(2.0, 2).validate().is_err());
        let p = CdgParams::new(0.25, 3).with_seed(7);
        assert!(p.validate().is_ok());
        assert_eq!(p.stretch(), 23);
        assert_eq!(p.seed, 7);
        let prob = p.level_probability(1000);
        assert!(prob > 0.0 && prob < 1.0);
        assert_eq!(CdgParams::new(0.25, 1).level_probability(1000), 0.0);
    }

    /// The deprecated shim must keep matching the scheme API while it exists.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_scheme_api() {
        let g = grid(6, 6, GeneratorConfig::uniform(5, 1, 8));
        let params = CdgParams::new(0.3, 2).with_seed(2);
        let old = DistributedCdg::run(&g, params, DistributedTzConfig::default()).unwrap();
        let new = build_scheme(&g, params);
        assert_eq!(old.net, new.net);
        assert_eq!(old.sketches, new.sketches);
    }
}
