//! ε-density nets (Definition 4.1 and Lemma 4.2).
//!
//! A set `N ⊆ V` is an ε-density net if (1) every node `u` has a net node
//! within distance `R(u, ε)` — the radius of the smallest ball around `u`
//! containing at least `εn` nodes — and (2) `|N| ≤ (10/ε) ln n`.
//!
//! Lemma 4.2 observes that independent sampling with probability
//! `5 ln n / (ε n)` satisfies both properties with high probability, and that
//! this is a *zero-round* distributed construction: every node flips its coin
//! locally.  [`DensityNet::sample`] mirrors that exactly (with the same
//! clamping to probability 1 when `ε ≤ 5 ln n / n`).

use crate::error::SketchError;
use netgraph::apsp::DistanceTable;
use netgraph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// An ε-density net: the sampled set of net nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityNet {
    /// The slack parameter ε the net was sampled for.
    eps_times_1000: u64,
    members: Vec<NodeId>,
    num_nodes: usize,
}

impl DensityNet {
    /// Sample an ε-density net over `n` nodes (Lemma 4.2): every node joins
    /// independently with probability `min(1, 5 ln n / (ε n))`.
    ///
    /// In the distributed setting this takes zero communication; here the
    /// sampling is performed centrally from a seed so experiments are
    /// reproducible, which is observationally identical.
    pub fn sample(num_nodes: usize, eps: f64, seed: u64) -> Result<Self, SketchError> {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(SketchError::InvalidParameters(format!(
                "epsilon must be in (0, 1], got {eps}"
            )));
        }
        let n = num_nodes.max(1) as f64;
        let p = (5.0 * n.ln() / (eps * n)).min(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let members: Vec<NodeId> = (0..num_nodes)
            .filter(|_| rng.gen_bool(p))
            .map(NodeId::from_index)
            .collect();
        Ok(DensityNet {
            eps_times_1000: (eps * 1000.0).round() as u64,
            members,
            num_nodes,
        })
    }

    /// Sample, retrying with successive seeds until the net is non-empty
    /// (an empty net is useless and has probability `≤ 1/n^5`).
    pub fn sample_nonempty(num_nodes: usize, eps: f64, seed: u64) -> Result<Self, SketchError> {
        let mut s = seed;
        for _ in 0..1000 {
            let net = Self::sample(num_nodes, eps, s)?;
            if !net.is_empty() {
                return Ok(net);
            }
            s = s.wrapping_add(1);
        }
        Err(SketchError::InvalidParameters(format!(
            "could not sample a non-empty {eps}-density net over {num_nodes} nodes"
        )))
    }

    /// Build a net from an explicit member list (tests, replay).
    pub fn from_members(num_nodes: usize, eps: f64, members: Vec<NodeId>) -> Self {
        DensityNet {
            eps_times_1000: (eps * 1000.0).round() as u64,
            members,
            num_nodes,
        }
    }

    /// The slack parameter ε.
    pub fn eps(&self) -> f64 {
        self.eps_times_1000 as f64 / 1000.0
    }

    /// The net nodes.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of net nodes `|N|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the net is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of nodes in the underlying network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// True if `v` is a net node.
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// The Lemma 4.2 size bound `(10/ε) ln n`.
    pub fn size_bound(&self) -> f64 {
        10.0 / self.eps() * (self.num_nodes.max(2) as f64).ln()
    }

    /// Check Definition 4.1 against exact distances: returns the number of
    /// nodes whose closest net node is farther than `R(u, ε)` (property 1
    /// violations) and whether the size bound (property 2) holds.
    ///
    /// Used by experiment E6; the paper proves both hold w.h.p.
    pub fn verify(&self, graph: &Graph, table: &DistanceTable) -> DensityNetReport {
        let n = graph.num_nodes();
        let eps = self.eps();
        let threshold = ((eps * n as f64).ceil() as usize).max(1);
        let mut coverage_violations = 0usize;
        for u in graph.nodes() {
            // R(u, ε): distance to the threshold-th closest node (the ball
            // must contain at least εn nodes, counting u itself).
            let mut row: Vec<_> = table.row(u).to_vec();
            row.sort_unstable();
            let radius = row[threshold.saturating_sub(1).min(n - 1)];
            let closest_net = self
                .members
                .iter()
                .map(|&w| table.distance(u, w))
                .min()
                .unwrap_or(netgraph::INFINITY);
            if closest_net > radius {
                coverage_violations += 1;
            }
        }
        DensityNetReport {
            size: self.len(),
            size_bound: self.size_bound(),
            coverage_violations,
        }
    }
}

/// Result of checking a sampled net against Definition 4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityNetReport {
    /// `|N|`.
    pub size: usize,
    /// The Lemma 4.2 bound `(10/ε) ln n`.
    pub size_bound: f64,
    /// Number of nodes not covered within their `R(u, ε)` radius.
    pub coverage_violations: usize,
}

impl DensityNetReport {
    /// True if both properties of Definition 4.1 hold.
    pub fn is_valid(&self) -> bool {
        self.coverage_violations == 0 && (self.size as f64) <= self.size_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};

    #[test]
    fn rejects_bad_epsilon() {
        assert!(DensityNet::sample(100, 0.0, 1).is_err());
        assert!(DensityNet::sample(100, -0.5, 1).is_err());
        assert!(DensityNet::sample(100, 1.5, 1).is_err());
    }

    #[test]
    fn tiny_epsilon_includes_everyone() {
        // ε ≤ 5 ln n / n ⇒ sampling probability 1.
        let net = DensityNet::sample(100, 0.01, 3).unwrap();
        assert_eq!(net.len(), 100);
        assert!(net.contains(NodeId(57)));
    }

    #[test]
    fn size_concentrates_around_expectation() {
        // n = 2000, ε = 0.2: E|N| = 5 ln(2000) / 0.2 ≈ 190.
        let net = DensityNet::sample(2000, 0.2, 7).unwrap();
        let expected = 5.0 * (2000f64).ln() / 0.2;
        assert!(
            (net.len() as f64) > 0.5 * expected,
            "net too small: {}",
            net.len()
        );
        assert!(
            (net.len() as f64) < 2.0 * expected,
            "net too large: {}",
            net.len()
        );
        assert!((net.len() as f64) <= net.size_bound());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = DensityNet::sample(500, 0.1, 11).unwrap();
        let b = DensityNet::sample(500, 0.1, 11).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.eps(), 0.1);
        assert_eq!(a.num_nodes(), 500);
    }

    #[test]
    fn verify_on_random_graph() {
        let n = 200;
        let g = erdos_renyi(n, 0.08, GeneratorConfig::uniform(3, 1, 20));
        let table = DistanceTable::exact(&g);
        let net = DensityNet::sample_nonempty(n, 0.25, 5).unwrap();
        let report = net.verify(&g, &table);
        assert!(report.is_valid(), "{report:?}");
    }

    #[test]
    fn verify_on_grid() {
        let g = grid(12, 12, GeneratorConfig::unit(2));
        let table = DistanceTable::exact(&g);
        let net = DensityNet::sample_nonempty(144, 0.3, 9).unwrap();
        let report = net.verify(&g, &table);
        assert_eq!(report.coverage_violations, 0, "{report:?}");
    }

    #[test]
    fn from_members_and_contains() {
        let net = DensityNet::from_members(10, 0.5, vec![NodeId(2), NodeId(7)]);
        assert!(net.contains(NodeId(2)));
        assert!(!net.contains(NodeId(3)));
        assert_eq!(net.members(), &[NodeId(2), NodeId(7)]);
        assert!(!net.is_empty());
    }

    #[test]
    fn sample_nonempty_never_returns_empty() {
        for seed in 0..5 {
            let net = DensityNet::sample_nonempty(50, 1.0, seed).unwrap();
            assert!(!net.is_empty());
        }
    }
}
