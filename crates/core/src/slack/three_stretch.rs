//! 3-stretch sketches with ε-slack (Theorem 4.3).
//!
//! The construction is: sample an ε-density net `N` (Lemma 4.2), then run the
//! k-source distributed Bellman–Ford with the net nodes as sources so every
//! node learns its distance to *every* net node.  The sketch of `u` is the
//! list `{(w, d(u, w)) : w ∈ N}` — `O((1/ε) log n)` words — and the estimate
//! for a pair `(u, v)` is `min_{w ∈ N} d(u, w) + d(w, v)`, which is at most
//! `3 · d(u, v)` whenever `v` is ε-far from `u`.

use crate::error::SketchError;
use crate::flat::{FlatSketchSet, Freeze, QueryRule};
use crate::oracle::{check_nodes, DistanceOracle};
use crate::parallel::{parallel_map, resolve_threads, BuildTimings};
use crate::query::estimate_distance_slack;
use crate::sketch::{Sketch, SketchSet};
use crate::slack::density_net::DensityNet;
use congest_sim::programs::bellman_ford::KSourceBellmanFord;
use congest_sim::{CongestConfig, Network, RunStats};
use netgraph::shortest_path::multi_source_dijkstra;
use netgraph::{Distance, Graph, NodeId, INFINITY};
use std::time::Instant;

/// Result of the Theorem 4.3 construction.
#[derive(Debug, Clone)]
pub struct ThreeStretchSketchSet {
    /// The sampled density net.
    pub net: DensityNet,
    /// Per-node sketches: every node stores its distance to every net node.
    /// (Represented with the shared [`Sketch`] type using a single level.)
    pub sketches: SketchSet,
    /// Simulation cost of the construction.
    pub stats: RunStats,
}

impl ThreeStretchSketchSet {
    /// Estimate `d(u, v)` from the two nodes' sketches.
    pub fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        estimate_distance_slack(self.sketches.sketch(u), self.sketches.sketch(v))
    }

    /// Maximum sketch size in words.
    pub fn max_words(&self) -> usize {
        self.sketches.max_words()
    }
}

impl Freeze for ThreeStretchSketchSet {
    /// Freeze to a best-common-landmark oracle (the Theorem 4.3 query is
    /// `min_{w ∈ N} d(u, w) + d(w, v)` — an intersection over the net, which
    /// the flat layout answers with a linear merge of two sorted runs).
    fn freeze(&self) -> FlatSketchSet {
        FlatSketchSet::single_layer(
            &self.sketches,
            QueryRule::BestCommon,
            "three-stretch",
            Some(3),
        )
    }
}

impl DistanceOracle for ThreeStretchSketchSet {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        check_nodes(self.sketches.len(), u, v)?;
        ThreeStretchSketchSet::estimate(self, u, v)
    }

    fn num_nodes(&self) -> usize {
        self.sketches.len()
    }

    fn words(&self, u: NodeId) -> usize {
        self.sketches.sketch(u).words()
    }

    fn scheme_name(&self) -> &'static str {
        "three-stretch"
    }

    /// Theorem 4.3's bound, covering the ε-far pairs.
    fn stretch_bound(&self) -> Option<u64> {
        Some(3)
    }
}

/// The Theorem 4.3 construction: sample the net, run the k-source
/// Bellman–Ford from it, assemble per-node sketches.  Crate-internal engine
/// behind [`crate::scheme::ThreeStretchScheme`] and the deprecated
/// [`DistributedThreeStretch`] shim.
pub(crate) fn build(
    graph: &Graph,
    eps: f64,
    seed: u64,
    congest: CongestConfig,
    max_rounds: u64,
) -> Result<ThreeStretchSketchSet, SketchError> {
    let n = graph.num_nodes();
    let net = DensityNet::sample_nonempty(n, eps, seed)?;
    let mut network = Network::new(graph, congest, |u| {
        KSourceBellmanFord::new(u, net.contains(u))
    });
    let outcome = network.run_until_quiescent(max_rounds);
    if !outcome.completed {
        return Err(SketchError::RoundLimitExceeded { limit: max_rounds });
    }

    let sketches: Vec<Sketch> = network
        .programs()
        .iter()
        .map(|p| {
            let mut sketch = Sketch::new(p.node(), 1);
            let mut best: Option<(NodeId, Distance)> = None;
            for (&net_node, &dist) in p.distances() {
                sketch.insert_bunch(net_node, 0, dist);
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((net_node, dist));
                }
            }
            if let Some((node, dist)) = best {
                sketch.set_pivot(0, node, dist);
            }
            sketch
        })
        .collect();

    Ok(ThreeStretchSketchSet {
        net,
        sketches: SketchSet::new(sketches),
        stats: outcome.stats,
    })
}

/// The direct parallel counterpart of [`build`]: one exact exploration per
/// net node (the seeds are independent, so the batch runs on the
/// [`crate::parallel`] pool), merged into per-node sketches in net order.
/// Produces exactly the sketches of the simulated k-source Bellman–Ford —
/// both record, at every node, the exact distance to every reachable net
/// node, with ties between closest net nodes broken toward the smaller id.
/// Construction engine behind [`crate::scheme::BuildEngine::Parallel`] for
/// [`crate::scheme::ThreeStretchScheme`].
pub(crate) fn build_direct(
    graph: &Graph,
    eps: f64,
    seed: u64,
    threads: usize,
) -> Result<(ThreeStretchSketchSet, BuildTimings), SketchError> {
    let n = graph.num_nodes();
    let net = DensityNet::sample_nonempty(n, eps, seed)?;
    let mut timings = BuildTimings::new(resolve_threads(threads));

    let started = Instant::now();
    let distances: Vec<Vec<Distance>> = parallel_map(threads, net.members(), |_, &w| {
        multi_source_dijkstra(graph, &[w]).dist
    });
    timings.record("3stretch/net-explorations", net.len(), started);

    let started = Instant::now();
    let sketches: Vec<Sketch> = (0..n)
        .map(|ui| {
            let mut sketch = Sketch::new(NodeId::from_index(ui), 1);
            let mut best: Option<(NodeId, Distance)> = None;
            for (wi, &w) in net.members().iter().enumerate() {
                let dist = distances[wi][ui];
                if dist == INFINITY {
                    continue;
                }
                sketch.insert_bunch(w, 0, dist);
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((w, dist));
                }
            }
            if let Some((node, dist)) = best {
                sketch.set_pivot(0, node, dist);
            }
            sketch
        })
        .collect();
    timings.record("3stretch/merge", n, started);

    Ok((
        ThreeStretchSketchSet {
            net,
            sketches: SketchSet::new(sketches),
            stats: RunStats::default(),
        },
        timings,
    ))
}

/// Builder for Theorem 4.3 sketches (deprecated shim over
/// [`crate::scheme::ThreeStretchScheme`]; see the
/// [crate-level migration table](crate#migrating-from-the-deprecated-run-entry-points)).
pub struct DistributedThreeStretch;

impl DistributedThreeStretch {
    /// Run the distributed construction on `graph` with slack `eps`.
    #[deprecated(
        since = "0.1.0",
        note = "use ThreeStretchScheme::new(eps).build(graph, &config) or SketchBuilder::three_stretch(eps)"
    )]
    pub fn run(
        graph: &Graph,
        eps: f64,
        seed: u64,
        congest: CongestConfig,
        max_rounds: u64,
    ) -> Result<ThreeStretchSketchSet, SketchError> {
        build(graph, eps, seed, congest, max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{SchemeConfig, SketchScheme, ThreeStretchScheme};
    use crate::slack::is_eps_far;
    use netgraph::apsp::DistanceTable;
    use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};

    fn build_scheme(
        graph: &Graph,
        eps: f64,
        seed: u64,
        congest: CongestConfig,
    ) -> ThreeStretchSketchSet {
        ThreeStretchScheme::new(eps)
            .build(
                graph,
                &SchemeConfig::default()
                    .with_seed(seed)
                    .with_congest(congest),
            )
            .unwrap()
            .sketches
    }

    fn check_slack_stretch(graph: &Graph, eps: f64, seed: u64) {
        let table = DistanceTable::exact(graph);
        let sketches = build_scheme(graph, eps, seed, CongestConfig::strict());
        for (u, v, exact) in table.pairs() {
            let est = sketches.estimate(u, v).unwrap();
            assert!(est >= exact, "underestimate for ({u},{v})");
            if is_eps_far(&table, u, v, eps) {
                assert!(
                    est <= 3 * exact,
                    "slack stretch violated for eps-far pair ({u},{v}): est {est}, exact {exact}"
                );
            }
        }
    }

    #[test]
    fn stretch_three_with_slack_on_random_graph() {
        let g = erdos_renyi(80, 0.08, GeneratorConfig::uniform(3, 1, 20));
        check_slack_stretch(&g, 0.3, 4);
    }

    #[test]
    fn stretch_three_with_slack_on_grid() {
        let g = grid(9, 9, GeneratorConfig::uniform(5, 1, 10));
        check_slack_stretch(&g, 0.25, 8);
    }

    #[test]
    fn sketch_size_tracks_net_size() {
        let g = erdos_renyi(150, 0.06, GeneratorConfig::uniform(9, 1, 15));
        let result = build_scheme(&g, 0.3, 2, CongestConfig::strict());
        // Every sketch stores one entry per reachable net node: 2 words each,
        // plus 2 pivot words.
        let expected = 2 * result.net.len() + 2;
        assert!(result.max_words() <= expected);
        assert!(result.max_words() >= result.net.len());
    }

    #[test]
    fn distances_to_net_nodes_are_exact() {
        let g = grid(6, 6, GeneratorConfig::uniform(7, 1, 6));
        let table = DistanceTable::exact(&g);
        let result = build_scheme(&g, 0.4, 3, CongestConfig::strict());
        for u in g.nodes() {
            let sketch = result.sketches.sketch(u);
            for &w in result.net.members() {
                assert_eq!(sketch.bunch_distance(w), Some(table.distance(u, w)));
            }
        }
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let g = grid(3, 3, GeneratorConfig::unit(1));
        assert!(ThreeStretchScheme::new(0.0)
            .build(&g, &SchemeConfig::default())
            .is_err());
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = grid(8, 8, GeneratorConfig::unit(1));
        let err = ThreeStretchScheme::new(0.2)
            .build(&g, &SchemeConfig::default().with_seed(1).with_max_rounds(1));
        assert!(matches!(err, Err(SketchError::RoundLimitExceeded { .. })));
    }

    /// The deprecated shim must keep matching the scheme API while it exists.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_scheme_api() {
        let g = grid(5, 5, GeneratorConfig::uniform(3, 1, 7));
        let old =
            DistributedThreeStretch::run(&g, 0.4, 6, CongestConfig::default(), u64::MAX).unwrap();
        let new = build_scheme(&g, 0.4, 6, CongestConfig::default());
        assert_eq!(old.net, new.net);
        assert_eq!(old.sketches, new.sketches);
    }
}
