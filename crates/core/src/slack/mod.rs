//! Sketches with slack (Section 4 of the paper).
//!
//! A labeling has stretch `t` with *ε-slack* if the estimate is within a
//! factor `t` for every pair `(u, v)` where `v` is ε-far from `u`, i.e. `v`
//! is not among the `εn` closest nodes to `u`.  Giving up on the nearest
//! pairs buys dramatically smaller sketches and faster construction:
//!
//! * [`density_net`] — Lemma 4.2: an ε-density net sampled in constant time.
//! * [`three_stretch`] — Theorem 4.3: stretch 3 with ε-slack, size
//!   `O((1/ε) log n)` words.
//! * [`cdg`] — Theorem 4.6: the (ε, k)-CDG sketch, stretch `8k − 1` with
//!   ε-slack, size `O(k (1/ε log n)^{1/k} log n)` words.
//! * [`degrading`] — Theorem 4.8 / Corollary 4.9: gracefully degrading
//!   sketches (a union of CDG sketches for every power-of-two ε) with
//!   `O(log n)` worst-case stretch and `O(1)` average stretch.

pub mod cdg;
pub mod degrading;
pub mod density_net;
pub mod three_stretch;

use netgraph::apsp::DistanceTable;
use netgraph::NodeId;

/// The ε-far predicate of Section 4: `v` is ε-far from `u` if at least `εn`
/// nodes are strictly closer to `u` than `v` is.
///
/// Computed from exact distances; used only for *evaluating* slack
/// guarantees, never by the constructions themselves.
pub fn is_eps_far(table: &DistanceTable, u: NodeId, v: NodeId, eps: f64) -> bool {
    table.is_eps_far(u, v, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{ring, GeneratorConfig};

    #[test]
    fn eps_far_matches_rank_definition() {
        let g = ring(10, GeneratorConfig::unit(1));
        let table = DistanceTable::exact(&g);
        // On a unit ring of 10 nodes, the two neighbors of u are the closest;
        // the antipode is the farthest.
        let u = NodeId(0);
        let antipode = NodeId(5);
        let neighbor = NodeId(1);
        assert!(is_eps_far(&table, u, antipode, 0.5));
        assert!(!is_eps_far(&table, u, neighbor, 0.5));
    }
}
