//! Gracefully degrading sketches (Theorem 4.8) and the constant-average-
//! stretch corollary (Corollary 4.9 / Theorem 1.3).
//!
//! A sketching scheme is *gracefully degrading* with stretch `f(ε)` if a
//! single sketch simultaneously has stretch `f(ε)` with ε-slack for **every**
//! `ε ∈ (0, 1)`.  The paper's construction is a union of `⌈log n⌉` CDG
//! sketches, one per `ε_i = 2^{-i}` with `k_i = O(log(1/ε_i)) = O(i)`; the
//! query takes the minimum of the per-layer estimates.  Lemma 4.7 then shows
//! that `O(log 1/ε)`-stretch graceful degradation implies `O(log n)`
//! worst-case stretch and `O(1)` average stretch.

use crate::distributed::DistributedTzConfig;
use crate::error::SketchError;
use crate::flat::{FlatSketchSet, Freeze};
use crate::oracle::{check_nodes, DistanceOracle};
use crate::slack::cdg::{self, CdgParams, CdgSketchSet};
use congest_sim::RunStats;
use netgraph::{Distance, Graph, NodeId, INFINITY};

/// Parameters of the gracefully degrading construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradingParams {
    /// Sampling seed (each layer derives its own sub-seed).
    pub seed: u64,
    /// Optional cap on the number of layers (default `⌈log₂ n⌉`).
    pub max_layers: Option<usize>,
    /// Optional cap on each layer's `k` (useful to keep tiny test graphs
    /// fast); `None` uses the paper's `k_i = i`.
    pub max_k: Option<usize>,
}

impl DegradingParams {
    /// Default parameters with the given seed.
    pub fn new(seed: u64) -> Self {
        DegradingParams {
            seed,
            max_layers: None,
            max_k: None,
        }
    }

    /// Cap the per-layer `k`.
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        self.max_k = Some(max_k.max(1));
        self
    }

    /// Cap the number of layers.
    pub fn with_max_layers(mut self, layers: usize) -> Self {
        self.max_layers = Some(layers.max(1));
        self
    }

    /// The layer specifications `(ε_i, k_i)` for a graph of `n` nodes.
    pub fn layers(&self, n: usize) -> Vec<CdgParams> {
        let log_n = ((n.max(2) as f64).log2().ceil() as usize).max(1);
        let count = self.max_layers.unwrap_or(log_n).min(log_n).max(1);
        (1..=count)
            .map(|i| {
                let eps = 0.5f64.powi(i as i32);
                let k = match self.max_k {
                    Some(cap) => i.min(cap),
                    None => i,
                }
                .max(1);
                CdgParams::new(eps, k)
                    .with_seed(self.seed.wrapping_add(i as u64).wrapping_mul(0xD1B5_4A33))
            })
            .collect()
    }
}

/// The union-of-layers sketch set.
#[derive(Debug, Clone)]
pub struct DegradingSketchSet {
    /// One CDG sketch set per slack scale `ε_i = 2^{-i}`.
    pub layers: Vec<CdgSketchSet>,
    /// Total simulation cost (sum over layers).
    pub stats: RunStats,
}

impl DegradingSketchSet {
    /// Estimate `d(u, v)`: the minimum over the per-layer estimates
    /// (Theorem 4.8's query rule).
    pub fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        let mut best = INFINITY;
        for layer in &self.layers {
            if let Ok(est) = layer.estimate_best(u, v) {
                best = best.min(est);
            }
        }
        if best == INFINITY {
            Err(SketchError::NoCommonLandmark { u, v })
        } else {
            Ok(best)
        }
    }

    /// Total sketch size of node `u` in words (summed over layers).
    pub fn words(&self, u: NodeId) -> usize {
        self.layers
            .iter()
            .map(|l| l.sketches.sketch(u).words())
            .sum()
    }

    /// Maximum per-node total sketch size in words.
    pub fn max_words(&self) -> usize {
        if self.layers.is_empty() {
            return 0;
        }
        let n = self.layers[0].sketches.len();
        (0..n)
            .map(|u| self.words(NodeId::from_index(u)))
            .max()
            .unwrap_or(0)
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

impl Freeze for DegradingSketchSet {
    /// Freeze every CDG layer into one multi-layer flat set; the query is
    /// the Theorem 4.8 rule (minimum over per-layer best-common estimates).
    fn freeze(&self) -> FlatSketchSet {
        FlatSketchSet::layered(self.layers.iter().map(|layer| &layer.sketches))
    }
}

impl DistanceOracle for DegradingSketchSet {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        let n = self.layers.first().map_or(0, |l| l.sketches.len());
        check_nodes(n, u, v)?;
        DegradingSketchSet::estimate(self, u, v)
    }

    fn num_nodes(&self) -> usize {
        self.layers.first().map_or(0, |l| l.sketches.len())
    }

    fn words(&self, u: NodeId) -> usize {
        DegradingSketchSet::words(self, u)
    }

    fn scheme_name(&self) -> &'static str {
        "degrading"
    }

    /// No single multiplicative bound: the guarantee is the curve
    /// `O(log 1/ε)` for every ε simultaneously (Theorem 4.8).
    fn stretch_bound(&self) -> Option<u64> {
        None
    }
}

/// The Theorem 4.8 layered construction.  Crate-internal engine behind
/// [`crate::scheme::DegradingScheme`] and the deprecated
/// [`DistributedDegrading`] shim.
pub(crate) fn build(
    graph: &Graph,
    params: DegradingParams,
    config: DistributedTzConfig,
) -> Result<DegradingSketchSet, SketchError> {
    let n = graph.num_nodes();
    let mut layers = Vec::new();
    let mut stats = RunStats::default();
    for layer_params in params.layers(n) {
        let layer = cdg::build(graph, layer_params, config)?;
        stats.absorb(&layer.stats);
        layers.push(layer);
    }
    Ok(DegradingSketchSet { layers, stats })
}

/// The direct parallel counterpart of [`build`]: the same layer schedule,
/// each layer built by [`cdg::build_direct`] (layers share the seed
/// derivation, so sampling is identical to the simulated path).
/// Construction engine behind [`crate::scheme::BuildEngine::Parallel`] for
/// [`crate::scheme::DegradingScheme`].
pub(crate) fn build_direct(
    graph: &Graph,
    params: DegradingParams,
    threads: usize,
) -> Result<(DegradingSketchSet, crate::parallel::BuildTimings), SketchError> {
    let n = graph.num_nodes();
    let mut layers = Vec::new();
    let mut timings = crate::parallel::BuildTimings::new(crate::parallel::resolve_threads(threads));
    for (index, layer_params) in params.layers(n).into_iter().enumerate() {
        let (layer, layer_timings) = cdg::build_direct(graph, layer_params, threads)?;
        timings.absorb_prefixed(&format!("layer{index}/"), layer_timings);
        layers.push(layer);
    }
    Ok((
        DegradingSketchSet {
            layers,
            stats: RunStats::default(),
        },
        timings,
    ))
}

/// Builder for gracefully degrading sketches (deprecated shim over
/// [`crate::scheme::DegradingScheme`]; see the
/// [crate-level migration table](crate#migrating-from-the-deprecated-run-entry-points)).
pub struct DistributedDegrading;

impl DistributedDegrading {
    /// Run the layered construction on `graph`.
    #[deprecated(
        since = "0.1.0",
        note = "use DegradingScheme::new().build(graph, &config) or SketchBuilder::degrading()"
    )]
    pub fn run(
        graph: &Graph,
        params: DegradingParams,
        config: DistributedTzConfig,
    ) -> Result<DegradingSketchSet, SketchError> {
        build(graph, params, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{DegradingScheme, SchemeConfig, SketchScheme};
    use netgraph::apsp::DistanceTable;
    use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};

    fn build_scheme(graph: &Graph, scheme: DegradingScheme, seed: u64) -> DegradingSketchSet {
        scheme
            .build(graph, &SchemeConfig::default().with_seed(seed))
            .unwrap()
            .sketches
    }

    fn average_and_worst_stretch(graph: &Graph, sketches: &DegradingSketchSet) -> (f64, f64) {
        let table = DistanceTable::exact(graph);
        let mut total = 0.0;
        let mut count = 0usize;
        let mut worst: f64 = 0.0;
        for (u, v, exact) in table.pairs() {
            let est = sketches.estimate(u, v).unwrap();
            assert!(est >= exact);
            let stretch = est as f64 / exact as f64;
            total += stretch;
            count += 1;
            worst = worst.max(stretch);
        }
        (total / count as f64, worst)
    }

    #[test]
    fn layer_schedule_follows_powers_of_two() {
        let p = DegradingParams::new(3);
        let layers = p.layers(256);
        assert_eq!(layers.len(), 8);
        assert!((layers[0].eps - 0.5).abs() < 1e-12);
        assert!((layers[3].eps - 0.0625).abs() < 1e-12);
        assert_eq!(layers[0].k, 1);
        assert_eq!(layers[5].k, 6);
        // max_k caps each layer's k.
        let capped = DegradingParams::new(3).with_max_k(3).layers(256);
        assert!(capped.iter().all(|l| l.k <= 3));
        // max_layers caps the layer count.
        let fewer = DegradingParams::new(3).with_max_layers(4).layers(256);
        assert_eq!(fewer.len(), 4);
    }

    #[test]
    fn average_stretch_is_small_on_random_graph() {
        let g = erdos_renyi(80, 0.08, GeneratorConfig::uniform(13, 1, 20));
        let sketches = build_scheme(&g, DegradingScheme::new().with_max_k(3), 5);
        let (avg, worst) = average_and_worst_stretch(&g, &sketches);
        // Corollary 4.9: O(1) average stretch, O(log n) worst case.  For an
        // 80-node graph "O(1)" should comfortably be below 4 and the worst
        // case below 8 log2(80) ≈ 50.
        assert!(avg < 4.0, "average stretch too large: {avg}");
        assert!(worst < 50.0, "worst-case stretch too large: {worst}");
    }

    #[test]
    fn average_stretch_is_small_on_grid() {
        let g = grid(8, 8, GeneratorConfig::uniform(7, 1, 10));
        let sketches = build_scheme(&g, DegradingScheme::new().with_max_k(3), 2);
        let (avg, worst) = average_and_worst_stretch(&g, &sketches);
        assert!(avg < 4.0, "average stretch too large: {avg}");
        assert!(worst < 48.0, "worst-case stretch too large: {worst}");
    }

    #[test]
    fn degrading_estimate_never_worse_than_coarsest_layer() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(3, 1, 12));
        let sketches = build_scheme(&g, DegradingScheme::new().with_max_k(2), 9);
        for u in g.nodes().take(10) {
            for v in g.nodes().skip(30).take(10) {
                if u == v {
                    continue;
                }
                let combined = sketches.estimate(u, v).unwrap();
                for layer in &sketches.layers {
                    if let Ok(layer_est) = layer.estimate_best(u, v) {
                        assert!(combined <= layer_est);
                    }
                }
            }
        }
    }

    #[test]
    fn size_accounting_sums_layers() {
        let g = erdos_renyi(64, 0.1, GeneratorConfig::uniform(21, 1, 8));
        let sketches = build_scheme(
            &g,
            DegradingScheme::new().with_max_k(2).with_max_layers(3),
            4,
        );
        assert_eq!(sketches.num_layers(), 3);
        let u = NodeId(5);
        let manual: usize = sketches
            .layers
            .iter()
            .map(|l| l.sketches.sketch(u).words())
            .sum();
        assert_eq!(sketches.words(u), manual);
        assert!(sketches.max_words() >= manual);
        assert!(sketches.stats.rounds > 0);
    }

    /// The deprecated shim must keep matching the scheme API while it exists.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_scheme_api() {
        let g = erdos_renyi(48, 0.12, GeneratorConfig::uniform(9, 1, 10));
        let old = DistributedDegrading::run(
            &g,
            DegradingParams::new(7).with_max_k(2).with_max_layers(2),
            DistributedTzConfig::default(),
        )
        .unwrap();
        let new = build_scheme(
            &g,
            DegradingScheme::new().with_max_k(2).with_max_layers(2),
            7,
        );
        assert_eq!(old.num_layers(), new.num_layers());
        for (a, b) in old.layers.iter().zip(new.layers.iter()) {
            assert_eq!(a.sketches, b.sketches);
        }
    }
}
