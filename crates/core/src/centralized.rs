//! The centralized Thorup–Zwick construction (Section 3.1, \[TZ05\]).
//!
//! The centralized algorithm is the baseline the paper distributes.  It is
//! implemented here for two reasons: (1) it is the correctness oracle — given
//! the *same* sampled [`Hierarchy`], the distributed construction of
//! Section 3.2 must produce exactly the same pivots and bunches (experiment
//! E8 asserts this bit-for-bit); and (2) the experiment harness compares the
//! centralized construction cost against the distributed round/message cost.
//!
//! The construction follows \[TZ05\]:
//!
//! 1. for every level `i`, compute `d(u, A_i)` and the pivot `p_i(u)` with a
//!    multi-source Dijkstra whose keys are [`DistKey`]s (lexicographic
//!    `(distance, id)` pairs), so tie-breaking is globally consistent;
//! 2. for every `w ∈ A_i \ A_{i+1}`, grow the cluster `C(w)` with a truncated
//!    Dijkstra that only expands through vertices `u` satisfying
//!    `(d(w, u), w) < key(u, A_{i+1})`; every vertex reached records `w` in
//!    its bunch.  (Clusters and bunches are inverse relations: `u ∈ C(w)` iff
//!    `w ∈ B(u)`, Section 3.2.)

use crate::hierarchy::Hierarchy;
use crate::sketch::{DistKey, SketchSet};
use netgraph::{add_dist, Distance, Graph, NodeId, INFINITY};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of the centralized construction.
#[derive(Debug, Clone)]
pub struct CentralizedTz {
    /// The per-node labels.
    pub sketches: SketchSet,
    /// `pivot_keys[i][u]` — the lexicographic key of `d(u, A_i)` (index `k`
    /// holds the all-infinite row for `A_k = ∅`).
    pub pivot_keys: Vec<Vec<DistKey>>,
    /// Total number of cluster-membership pairs (`Σ_w |C(w)|`), a proxy for
    /// the centralized work performed.
    pub total_cluster_size: usize,
}

impl CentralizedTz {
    /// Build Thorup–Zwick labels for every node of `graph` using the sampled
    /// `hierarchy`.
    ///
    /// This is the single-threaded instance of the shared direct engine
    /// ([`crate::build::thorup_zwick`]): the baseline the distributed
    /// construction is compared against and the parallel production build
    /// path are the same code, so they can never drift apart.
    pub fn build(graph: &Graph, hierarchy: &Hierarchy) -> Self {
        let built = crate::build::thorup_zwick(graph, hierarchy, 1);
        CentralizedTz {
            sketches: built.sketches,
            pivot_keys: built.pivot_keys,
            total_cluster_size: built.total_cluster_size,
        }
    }

    /// The per-node labels (convenience accessor).
    pub fn sketches(&self) -> &SketchSet {
        &self.sketches
    }

    /// The lexicographic key of `d(u, A_i)`.
    pub fn pivot_key(&self, level: usize, u: NodeId) -> DistKey {
        self.pivot_keys[level][u.index()]
    }
}

/// Multi-source Dijkstra minimizing the lexicographic `(distance, source)`
/// key: for every node the result is `min_{s ∈ sources} (d(u, s), s)`.
pub fn lexicographic_multi_source(graph: &Graph, sources: &[NodeId]) -> Vec<DistKey> {
    let n = graph.num_nodes();
    let mut best = vec![DistKey::INFINITE; n];
    // Heap entries `(distance, source id, node)`; `Reverse` makes it a
    // min-heap ordered exactly by the lexicographic key.
    let mut heap: BinaryHeap<Reverse<(Distance, u32, u32)>> = BinaryHeap::new();
    for &s in sources {
        let key = DistKey::new(0, s);
        if key < best[s.index()] {
            best[s.index()] = key;
            heap.push(Reverse((0, s.0, s.0)));
        }
    }
    while let Some(Reverse((d, src, u))) = heap.pop() {
        let u_node = NodeId(u);
        let key = DistKey::new(d, NodeId(src));
        if key > best[u as usize] {
            continue; // stale
        }
        let (targets, weights) = graph.neighbor_slices(u_node);
        for (&v, &w) in targets.iter().zip(weights.iter()) {
            let nd = add_dist(d, w);
            let cand = DistKey::new(nd, NodeId(src));
            if cand < best[v.index()] {
                best[v.index()] = cand;
                heap.push(Reverse((nd, src, v.0)));
            }
        }
    }
    best
}

/// Reusable buffers for cluster growth, so building all clusters does not
/// allocate `O(n)` memory per source.  The parallel engine gives each worker
/// thread one of these ([`crate::parallel::parallel_map_with`]).
pub(crate) struct ClusterScratch {
    dist: Vec<Distance>,
    touched: Vec<usize>,
}

impl ClusterScratch {
    pub(crate) fn new(n: usize) -> Self {
        ClusterScratch {
            dist: vec![INFINITY; n],
            touched: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for &t in &self.touched {
            self.dist[t] = INFINITY;
        }
        self.touched.clear();
    }
}

/// Grow the cluster `C(w)`: a truncated Dijkstra from `w` that only expands
/// through vertices `u` with `(d(w, u), w) < next_keys[u]`.  Returns the
/// members with their exact distances from `w`.
pub(crate) fn grow_cluster(
    graph: &Graph,
    w: NodeId,
    next_keys: &[DistKey],
    scratch: &mut ClusterScratch,
) -> Vec<(NodeId, Distance)> {
    scratch.reset();
    let mut members = Vec::new();
    let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();

    let start_key = DistKey::new(0, w);
    if start_key < next_keys[w.index()] {
        scratch.dist[w.index()] = 0;
        scratch.touched.push(w.index());
        heap.push(Reverse((0, w.0)));
    }

    while let Some(Reverse((d, u))) = heap.pop() {
        if d > scratch.dist[u as usize] {
            continue; // stale
        }
        members.push((NodeId(u), d));
        let (targets, weights) = graph.neighbor_slices(NodeId(u));
        for (&v, &wt) in targets.iter().zip(weights.iter()) {
            let nd = add_dist(d, wt);
            let cand_key = DistKey::new(nd, w);
            if cand_key < next_keys[v.index()] && nd < scratch.dist[v.index()] {
                if scratch.dist[v.index()] == INFINITY {
                    scratch.touched.push(v.index());
                }
                scratch.dist[v.index()] = nd;
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::TzParams;
    use crate::query::estimate_distance;
    use netgraph::apsp::DistanceTable;
    use netgraph::generators::{erdos_renyi, grid, ring, GeneratorConfig};
    use netgraph::GraphBuilder;

    fn check_stretch(graph: &Graph, tz: &CentralizedTz, k: usize) {
        let table = DistanceTable::exact(graph);
        let stretch = (2 * k - 1) as u64;
        for (u, v, exact) in table.pairs() {
            let est = estimate_distance(tz.sketches.sketch(u), tz.sketches.sketch(v))
                .expect("connected graph must produce an estimate");
            assert!(
                est >= exact,
                "estimate {est} below exact {exact} for ({u},{v})"
            );
            assert!(
                est <= stretch * exact,
                "stretch violated for ({u},{v}): est {est}, exact {exact}, bound {}",
                stretch * exact
            );
        }
    }

    #[test]
    fn k1_is_exact_all_pairs() {
        let g = erdos_renyi(40, 0.15, GeneratorConfig::uniform(3, 1, 10));
        let h = Hierarchy::sample(40, &TzParams::new(1)).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let table = DistanceTable::exact(&g);
        for (u, v, exact) in table.pairs() {
            let est = estimate_distance(tz.sketches.sketch(u), tz.sketches.sketch(v)).unwrap();
            assert_eq!(est, exact);
        }
        // With k = 1 every bunch is all of V.
        for s in tz.sketches.iter() {
            assert_eq!(s.bunch_size(), 40);
        }
    }

    #[test]
    fn stretch_bound_holds_on_random_graph_k2() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(5, 1, 20));
        let h = Hierarchy::sample(60, &TzParams::new(2).with_seed(1)).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        check_stretch(&g, &tz, 2);
    }

    #[test]
    fn stretch_bound_holds_on_grid_k3() {
        let g = grid(7, 7, GeneratorConfig::uniform(2, 1, 10));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(49, &TzParams::new(3).with_seed(4), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        check_stretch(&g, &tz, 3);
    }

    #[test]
    fn stretch_bound_holds_on_ring_k3() {
        let g = ring(50, GeneratorConfig::uniform(8, 1, 5));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(50, &TzParams::new(3).with_seed(0), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        check_stretch(&g, &tz, 3);
    }

    #[test]
    fn pivots_are_exact_closest_level_members() {
        let g = erdos_renyi(50, 0.12, GeneratorConfig::uniform(11, 1, 9));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(50, &TzParams::new(3).with_seed(7), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let table = DistanceTable::exact(&g);
        for u in g.nodes() {
            for i in 0..3 {
                let members = h.level_members(i);
                let expected = members
                    .iter()
                    .map(|&w| DistKey::new(table.distance(u, w), w))
                    .min()
                    .unwrap();
                assert_eq!(tz.pivot_key(i, u), expected, "node {u} level {i}");
                let (p, d) = tz.sketches.sketch(u).pivot(i).unwrap();
                assert_eq!(DistKey::new(d, p), expected);
            }
        }
    }

    #[test]
    fn bunches_match_definition() {
        // B_i(u) = { w ∈ A_i \ A_{i+1} : (d(u,w), w) < key(u, A_{i+1}) }.
        let g = erdos_renyi(40, 0.15, GeneratorConfig::uniform(21, 1, 12));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(40, &TzParams::new(2).with_seed(3), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let table = DistanceTable::exact(&g);
        for u in g.nodes() {
            let sketch = tz.sketches.sketch(u);
            for i in 0..2u32 {
                let next_key = tz.pivot_key(i as usize + 1, u);
                for &w in &h.exact_level_members(i as usize) {
                    let key = DistKey::new(table.distance(u, w), w);
                    let should_be_member = key < next_key;
                    let is_member = sketch
                        .bunch()
                        .get(&w)
                        .map(|e| e.level == i)
                        .unwrap_or(false);
                    assert_eq!(
                        should_be_member, is_member,
                        "membership mismatch u={u} w={w} level={i}"
                    );
                    if is_member {
                        assert_eq!(sketch.bunch_distance(w), Some(table.distance(u, w)));
                    }
                }
            }
        }
    }

    #[test]
    fn bunch_sizes_track_expected_n_to_the_one_over_k() {
        // n = 512, k = 3: E|B_i(u)| ≤ n^{1/3} = 8, so E|B(u)| ≤ 24.
        let n = 512;
        let g = erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(31, 1, 50));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(n, &TzParams::new(3).with_seed(5), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        let avg_bunch: f64 = tz
            .sketches
            .iter()
            .map(|s| s.bunch_size() as f64)
            .sum::<f64>()
            / n as f64;
        // Generous bound: 4x the expectation.
        assert!(
            avg_bunch < 4.0 * 3.0 * 8.0,
            "average bunch size {avg_bunch} is far above the expected O(k n^(1/k))"
        );
    }

    #[test]
    fn sketch_invariants_hold() {
        let g = grid(6, 6, GeneratorConfig::uniform(9, 1, 7));
        let (h, _) =
            Hierarchy::sample_until_top_nonempty(36, &TzParams::new(2).with_seed(2), 100).unwrap();
        let tz = CentralizedTz::build(&g, &h);
        for s in tz.sketches.iter() {
            s.check_invariants().unwrap();
        }
        assert!(tz.total_cluster_size > 0);
    }

    #[test]
    fn lexicographic_multi_source_prefers_smaller_id_on_ties() {
        // Two sources at equal distance from node 2: the smaller id wins.
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 2, 5);
        b.add_edge_idx(1, 2, 5);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        let keys = lexicographic_multi_source(&g, &[NodeId(0), NodeId(1)]);
        assert_eq!(keys[2], DistKey::new(5, NodeId(0)));
        assert_eq!(keys[3], DistKey::new(6, NodeId(0)));
        assert_eq!(keys[0], DistKey::new(0, NodeId(0)));
        assert_eq!(keys[1], DistKey::new(0, NodeId(1)));
    }

    #[test]
    fn empty_source_set_gives_infinite_keys() {
        let g = ring(5, GeneratorConfig::unit(1));
        let keys = lexicographic_multi_source(&g, &[]);
        assert!(keys.iter().all(|k| k.is_infinite()));
    }

    #[test]
    fn disconnected_graph_keeps_unreachable_pivots_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        let keys = lexicographic_multi_source(&g, &[NodeId(0)]);
        assert!(!keys[1].is_infinite());
        assert!(keys[2].is_infinite());
        assert!(keys[3].is_infinite());
    }
}
