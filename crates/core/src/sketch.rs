//! The sketch (label) data structure `L(u)`.
//!
//! Section 3.1: the label of `u` consists of the pivots `p_i(u)` for
//! `0 ≤ i ≤ k − 1`, the bunch `B(u) = ∪_i B_i(u)`, and the distances from `u`
//! to all of these nodes.  [`Sketch`] stores exactly that, plus the level of
//! each bunch member (a single extra word that both the centralized and
//! distributed constructions know anyway), and reports its size in CONGEST
//! words using the same accounting as the paper (one word per node id, one
//! word per distance).
//!
//! # Tie-breaking
//!
//! The paper assumes all distances are distinct "by breaking ties
//! consistently through processor IDs".  We make that concrete with
//! [`DistKey`], the lexicographic pair `(distance, node id)`: every
//! comparison between candidate pivots/bunch thresholds uses `DistKey`, so
//! the centralized and distributed constructions make identical choices and
//! can be compared bit-for-bit.

use netgraph::{Distance, NodeId, INFINITY};
use std::collections::BTreeMap;

/// Lexicographic `(distance, node)` key used for consistent tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DistKey {
    /// The distance component.
    pub distance: Distance,
    /// The node id used to break ties.
    pub node: NodeId,
}

impl DistKey {
    /// A key that compares greater than every real key ("no node at all").
    pub const INFINITE: DistKey = DistKey {
        distance: INFINITY,
        node: NodeId(u32::MAX),
    };

    /// Construct a key.
    pub fn new(distance: Distance, node: NodeId) -> Self {
        DistKey { distance, node }
    }

    /// True if this key represents "no node" (infinite distance).
    pub fn is_infinite(&self) -> bool {
        self.distance == INFINITY
    }
}

/// One entry of a bunch: a node `w ∈ B(u)` together with its hierarchy level
/// and the exact distance `d(u, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BunchEntry {
    /// The level `i` such that `w ∈ B_i(u)`.
    pub level: u32,
    /// The exact distance `d(u, w)`.
    pub distance: Distance,
}

/// The Thorup–Zwick label `L(u)` of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sketch {
    /// The node this sketch belongs to.
    pub owner: NodeId,
    /// Number of levels `k`.
    pub k: usize,
    /// `pivots[i]` is `(p_i(u), d(u, p_i(u)))`, or `None` when `A_i` is
    /// unreachable/empty (can only happen on disconnected graphs or when the
    /// sampled `A_i` is empty).
    pivots: Vec<Option<(NodeId, Distance)>>,
    /// The bunch `B(u)` with levels and distances.
    bunch: BTreeMap<NodeId, BunchEntry>,
}

impl Sketch {
    /// Create an empty sketch for `owner` with `k` levels.
    pub fn new(owner: NodeId, k: usize) -> Self {
        Sketch {
            owner,
            k,
            pivots: vec![None; k],
            bunch: BTreeMap::new(),
        }
    }

    /// Set pivot `p_i(u)` and its distance.
    pub fn set_pivot(&mut self, level: usize, pivot: NodeId, distance: Distance) {
        assert!(
            level < self.k,
            "pivot level {level} out of range (k = {})",
            self.k
        );
        self.pivots[level] = Some((pivot, distance));
    }

    /// The pivot at `level`, if known.
    pub fn pivot(&self, level: usize) -> Option<(NodeId, Distance)> {
        self.pivots.get(level).copied().flatten()
    }

    /// All pivots, one slot per level.
    pub fn pivots(&self) -> &[Option<(NodeId, Distance)>] {
        &self.pivots
    }

    /// Insert (or improve) a bunch entry.
    ///
    /// A strictly smaller distance replaces the entry outright.  On a
    /// distance **tie** the lowest level wins, so the stored level is
    /// deterministic regardless of insertion order — the centralized,
    /// simulated and parallel constructions may discover the same member
    /// through different levels in different orders, and the sketch must
    /// not depend on which insertion happened last.
    pub fn insert_bunch(&mut self, node: NodeId, level: u32, distance: Distance) {
        let entry = self
            .bunch
            .entry(node)
            .or_insert(BunchEntry { level, distance });
        if distance < entry.distance {
            entry.distance = distance;
            entry.level = level;
        } else if distance == entry.distance {
            entry.level = entry.level.min(level);
        }
    }

    /// Distance to `node` if it is in the bunch.
    pub fn bunch_distance(&self, node: NodeId) -> Option<Distance> {
        self.bunch.get(&node).map(|e| e.distance)
    }

    /// True if `node ∈ B(u)`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.bunch.contains_key(&node)
    }

    /// The whole bunch.
    pub fn bunch(&self) -> &BTreeMap<NodeId, BunchEntry> {
        &self.bunch
    }

    /// Members of `B_i(u)` for a particular level `i`.
    pub fn bunch_at_level(&self, level: u32) -> impl Iterator<Item = (NodeId, Distance)> + '_ {
        self.bunch
            .iter()
            .filter(move |(_, e)| e.level == level)
            .map(|(&n, e)| (n, e.distance))
    }

    /// Number of bunch entries `|B(u)|`.
    pub fn bunch_size(&self) -> usize {
        self.bunch.len()
    }

    /// Size of the label in CONGEST words, using the paper's accounting: one
    /// id word plus one distance word per pivot, and the same per bunch
    /// entry.
    pub fn words(&self) -> usize {
        let pivot_words = 2 * self.pivots.iter().filter(|p| p.is_some()).count();
        let bunch_words = 2 * self.bunch.len();
        pivot_words + bunch_words
    }

    /// Sanity-check the internal invariants (used by tests and debug builds):
    /// pivot distances are consistent with bunch entries when the pivot is in
    /// the bunch, and bunch levels are below `k`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (level, p) in self.pivots.iter().enumerate() {
            if let Some((node, dist)) = p {
                if let Some(e) = self.bunch.get(node) {
                    if e.distance > *dist {
                        return Err(format!(
                            "pivot {node} at level {level} has distance {dist} but bunch says {}",
                            e.distance
                        ));
                    }
                }
            }
        }
        for (node, e) in &self.bunch {
            if e.level as usize >= self.k {
                return Err(format!(
                    "bunch member {node} has level {} >= k {}",
                    e.level, self.k
                ));
            }
        }
        Ok(())
    }
}

/// The collection of sketches for every node of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSet {
    sketches: Vec<Sketch>,
}

impl SketchSet {
    /// Build from per-node sketches (indexed by node id).
    pub fn new(sketches: Vec<Sketch>) -> Self {
        SketchSet { sketches }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// The sketch of `node`.
    pub fn sketch(&self, node: NodeId) -> &Sketch {
        &self.sketches[node.index()]
    }

    /// Iterator over all sketches in node order.
    pub fn iter(&self) -> impl Iterator<Item = &Sketch> {
        self.sketches.iter()
    }

    /// Maximum label size over all nodes, in words.
    pub fn max_words(&self) -> usize {
        self.sketches.iter().map(Sketch::words).max().unwrap_or(0)
    }

    /// Mean label size, in words.
    pub fn avg_words(&self) -> f64 {
        if self.sketches.is_empty() {
            return 0.0;
        }
        self.sketches.iter().map(Sketch::words).sum::<usize>() as f64 / self.sketches.len() as f64
    }

    /// Total size of all labels, in words.
    pub fn total_words(&self) -> usize {
        self.sketches.iter().map(Sketch::words).sum()
    }

    /// Maximum bunch size over all nodes.
    pub fn max_bunch_size(&self) -> usize {
        self.sketches
            .iter()
            .map(Sketch::bunch_size)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_key_ordering() {
        let a = DistKey::new(5, NodeId(10));
        let b = DistKey::new(5, NodeId(2));
        let c = DistKey::new(4, NodeId(99));
        assert!(b < a, "ties broken by node id");
        assert!(c < b, "distance dominates");
        assert!(a < DistKey::INFINITE);
        assert!(DistKey::INFINITE.is_infinite());
        assert!(!a.is_infinite());
    }

    #[test]
    fn sketch_pivot_and_bunch_basics() {
        let mut s = Sketch::new(NodeId(7), 3);
        assert_eq!(s.owner, NodeId(7));
        assert_eq!(s.pivot(0), None);
        s.set_pivot(0, NodeId(7), 0);
        s.set_pivot(2, NodeId(3), 12);
        assert_eq!(s.pivot(0), Some((NodeId(7), 0)));
        assert_eq!(s.pivot(2), Some((NodeId(3), 12)));
        assert_eq!(s.pivot(1), None);
        assert_eq!(s.pivots().len(), 3);

        s.insert_bunch(NodeId(7), 0, 0);
        s.insert_bunch(NodeId(4), 1, 9);
        s.insert_bunch(NodeId(4), 1, 7); // improvement kept
        s.insert_bunch(NodeId(4), 1, 11); // regression ignored
        assert_eq!(s.bunch_distance(NodeId(4)), Some(7));
        assert!(s.contains(NodeId(4)));
        assert!(!s.contains(NodeId(5)));
        assert_eq!(s.bunch_size(), 2);
        let level1: Vec<_> = s.bunch_at_level(1).collect();
        assert_eq!(level1, vec![(NodeId(4), 7)]);
    }

    #[test]
    fn bunch_distance_ties_keep_the_lowest_level() {
        // The same member at the same distance, inserted through different
        // levels in both orders: the stored level must be the minimum
        // either way (insertion order must not leak into the sketch).
        let mut ascending = Sketch::new(NodeId(0), 3);
        ascending.insert_bunch(NodeId(4), 0, 7);
        ascending.insert_bunch(NodeId(4), 2, 7);
        let mut descending = Sketch::new(NodeId(0), 3);
        descending.insert_bunch(NodeId(4), 2, 7);
        descending.insert_bunch(NodeId(4), 0, 7);
        for sketch in [&ascending, &descending] {
            assert_eq!(sketch.bunch()[&NodeId(4)].level, 0);
            assert_eq!(sketch.bunch_distance(NodeId(4)), Some(7));
        }
        assert_eq!(ascending, descending);
        // A strictly smaller distance still replaces the level outright.
        let mut improved = descending.clone();
        improved.insert_bunch(NodeId(4), 1, 6);
        assert_eq!(improved.bunch()[&NodeId(4)].level, 1);
        assert_eq!(improved.bunch_distance(NodeId(4)), Some(6));
    }

    #[test]
    fn word_accounting() {
        let mut s = Sketch::new(NodeId(0), 2);
        assert_eq!(s.words(), 0);
        s.set_pivot(0, NodeId(0), 0);
        assert_eq!(s.words(), 2);
        s.insert_bunch(NodeId(1), 0, 3);
        s.insert_bunch(NodeId(2), 1, 5);
        assert_eq!(s.words(), 2 + 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pivot_level_out_of_range_panics() {
        let mut s = Sketch::new(NodeId(0), 2);
        s.set_pivot(2, NodeId(1), 1);
    }

    #[test]
    fn invariant_checker_catches_bad_levels() {
        let mut s = Sketch::new(NodeId(0), 2);
        s.insert_bunch(NodeId(1), 5, 3);
        assert!(s.check_invariants().is_err());

        let mut ok = Sketch::new(NodeId(0), 2);
        ok.set_pivot(1, NodeId(3), 4);
        ok.insert_bunch(NodeId(3), 1, 4);
        assert!(ok.check_invariants().is_ok());
    }

    #[test]
    fn invariant_checker_catches_inconsistent_pivot_distance() {
        // A pivot that claims to be closer than the bunch's record of the
        // same node is inconsistent.
        let mut s = Sketch::new(NodeId(0), 2);
        s.insert_bunch(NodeId(3), 1, 9);
        s.set_pivot(1, NodeId(3), 2);
        assert!(s.check_invariants().is_err());

        // The consistent direction (pivot at least as far as the bunch entry)
        // is accepted.
        let mut t = Sketch::new(NodeId(0), 2);
        t.insert_bunch(NodeId(3), 1, 1);
        t.set_pivot(1, NodeId(3), 1);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn sketch_set_statistics() {
        let mut a = Sketch::new(NodeId(0), 2);
        a.set_pivot(0, NodeId(0), 0);
        a.insert_bunch(NodeId(1), 0, 1);
        let mut b = Sketch::new(NodeId(1), 2);
        b.set_pivot(0, NodeId(1), 0);
        b.insert_bunch(NodeId(0), 0, 1);
        b.insert_bunch(NodeId(2), 1, 2);
        let set = SketchSet::new(vec![a, b]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.sketch(NodeId(0)).owner, NodeId(0));
        assert_eq!(set.max_words(), 6);
        assert_eq!(set.total_words(), 10);
        assert!((set.avg_words() - 5.0).abs() < 1e-9);
        assert_eq!(set.max_bunch_size(), 2);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn empty_sketch_set() {
        let set = SketchSet::new(vec![]);
        assert!(set.is_empty());
        assert_eq!(set.max_words(), 0);
        assert_eq!(set.avg_words(), 0.0);
    }
}
