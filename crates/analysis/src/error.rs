//! Typed failures for the analysis engines.
//!
//! Every verifier failure names *where* (section, node, byte offset) and
//! *what contract* was violated, so a corrupt snapshot can be diagnosed
//! from the error alone, without a hex dump.

use std::path::PathBuf;

/// A failure from the lint pass or the snapshot verifier.
#[derive(Debug)]
pub enum AnalysisError {
    /// Reading a file failed.
    Io {
        /// The path that could not be read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The snapshot ends before a structure it promises.
    Truncated {
        /// What we were decoding when the bytes ran out.
        what: &'static str,
        /// Byte offset into the file where decoding stopped.
        offset: u64,
    },
    /// The file does not begin with the `DSK1` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is newer than this verifier understands.
    UnsupportedVersion {
        /// Version found in the prelude.
        found: u32,
        /// Highest version this verifier accepts.
        supported: u32,
    },
    /// The header CRC does not match the header bytes.
    HeaderChecksum {
        /// CRC stored in the file.
        stored: u32,
        /// CRC recomputed over the header bytes.
        computed: u32,
    },
    /// The header body itself would not decode.
    HeaderDecode {
        /// What went wrong.
        message: String,
    },
    /// The section table violates a structural contract (ordering,
    /// overlap, bounds, contiguity).
    SectionTable {
        /// The section id as text, e.g. `SKCH`.
        section: String,
        /// File offset the entry claims.
        offset: u64,
        /// Which contract the entry violates.
        message: String,
    },
    /// A section's payload CRC does not match its bytes.
    SectionChecksum {
        /// The section id as text.
        section: String,
        /// CRC stored in the table.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The section id as text.
        section: String,
    },
    /// A section payload failed to decode.
    SectionDecode {
        /// The section id as text.
        section: String,
        /// File offset where decoding failed.
        offset: u64,
        /// What went wrong.
        message: String,
    },
    /// A bunch's node ids are not strictly ascending (Lemma 3.2 order).
    BunchOrder {
        /// Owning node of the bunch.
        node: u32,
        /// File offset of the offending entry.
        offset: u64,
        /// The previous node id in the bunch.
        previous: u32,
        /// The out-of-order node id found.
        found: u32,
    },
    /// A bunch entry's level is outside `0..k`.
    BunchLevel {
        /// Owning node of the bunch.
        node: u32,
        /// The offending level.
        level: u32,
        /// The scheme's `k` (levels must be `< k`).
        k: u32,
        /// File offset of the offending entry.
        offset: u64,
    },
    /// A node's pivot row violates its contract (distance monotonicity or
    /// absence persistence across levels).
    PivotRow {
        /// Owning node of the row.
        node: u32,
        /// The level at which the contract breaks.
        level: u32,
        /// Which contract broke.
        message: String,
    },
    /// A sketch disagrees with the sampling hierarchy stored beside it.
    HierarchyContract {
        /// The node whose sketch disagrees.
        node: u32,
        /// What disagrees.
        message: String,
    },
    /// A layered (degrading) snapshot violates a cross-layer contract.
    LayerContract {
        /// Index of the offending layer.
        layer: usize,
        /// Which contract broke.
        message: String,
    },
    /// The frozen CSR arrays violate a structural invariant.
    FrozenInvariant {
        /// Which invariant broke.
        message: String,
    },
    /// A section decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// The section id as text.
        section: String,
        /// Number of undecoded bytes left over.
        remaining: u64,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            AnalysisError::Truncated { what, offset } => {
                write!(f, "truncated while decoding {what} at byte {offset}")
            }
            AnalysisError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?}, expected `DSK1`")
            }
            AnalysisError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (verifier knows <= {supported})"
                )
            }
            AnalysisError::HeaderChecksum { stored, computed } => {
                write!(
                    f,
                    "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            AnalysisError::HeaderDecode { message } => write!(f, "header decode failed: {message}"),
            AnalysisError::SectionTable {
                section,
                offset,
                message,
            } => {
                write!(
                    f,
                    "section table entry `{section}` at offset {offset}: {message}"
                )
            }
            AnalysisError::SectionChecksum {
                section,
                stored,
                computed,
            } => {
                write!(
                    f,
                    "section `{section}` checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            AnalysisError::MissingSection { section } => {
                write!(f, "required section `{section}` missing")
            }
            AnalysisError::SectionDecode {
                section,
                offset,
                message,
            } => {
                write!(
                    f,
                    "section `{section}` undecodable at byte {offset}: {message}"
                )
            }
            AnalysisError::BunchOrder {
                node,
                offset,
                previous,
                found,
            } => {
                write!(
                    f,
                    "node {node}: bunch not strictly ascending at byte {offset}: {found} after {previous}"
                )
            }
            AnalysisError::BunchLevel {
                node,
                level,
                k,
                offset,
            } => {
                write!(
                    f,
                    "node {node}: bunch entry level {level} out of range (k = {k}) at byte {offset}"
                )
            }
            AnalysisError::PivotRow {
                node,
                level,
                message,
            } => {
                write!(
                    f,
                    "node {node}: pivot row broken at level {level}: {message}"
                )
            }
            AnalysisError::HierarchyContract { node, message } => {
                write!(f, "node {node}: sketch disagrees with hierarchy: {message}")
            }
            AnalysisError::LayerContract { layer, message } => {
                write!(f, "layer {layer}: {message}")
            }
            AnalysisError::FrozenInvariant { message } => {
                write!(f, "frozen CSR invariant broken: {message}")
            }
            AnalysisError::TrailingBytes { section, remaining } => {
                write!(
                    f,
                    "section `{section}` decoded with {remaining} trailing bytes"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl AnalysisError {
    /// A short machine-checkable name for the error variant — what the
    /// mutation-sweep tests assert on.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisError::Io { .. } => "io",
            AnalysisError::Truncated { .. } => "truncated",
            AnalysisError::BadMagic { .. } => "bad-magic",
            AnalysisError::UnsupportedVersion { .. } => "unsupported-version",
            AnalysisError::HeaderChecksum { .. } => "header-checksum",
            AnalysisError::HeaderDecode { .. } => "header-decode",
            AnalysisError::SectionTable { .. } => "section-table",
            AnalysisError::SectionChecksum { .. } => "section-checksum",
            AnalysisError::MissingSection { .. } => "missing-section",
            AnalysisError::SectionDecode { .. } => "section-decode",
            AnalysisError::BunchOrder { .. } => "bunch-order",
            AnalysisError::BunchLevel { .. } => "bunch-level",
            AnalysisError::PivotRow { .. } => "pivot-row",
            AnalysisError::HierarchyContract { .. } => "hierarchy-contract",
            AnalysisError::LayerContract { .. } => "layer-contract",
            AnalysisError::FrozenInvariant { .. } => "frozen-invariant",
            AnalysisError::TrailingBytes { .. } => "trailing-bytes",
        }
    }
}
