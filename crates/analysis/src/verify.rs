//! The `DSK1` deep verifier — fsck for snapshots.
//!
//! The container's CRCs prove the bytes are the bytes that were written;
//! they prove nothing about whether those bytes describe a *valid sketch
//! set*.  A writer bug (or a bit flip followed by a CRC re-sign) can
//! produce a snapshot every checksum accepts whose labels violate the
//! paper's contracts and whose queries silently return garbage.  This
//! module re-derives the whole file from first principles — its own
//! prelude/header/section-table parse, then a byte-by-byte walk of the
//! `SKCH` payload — and checks the semantic invariants:
//!
//! * section table: offsets sorted, non-overlapping, contiguous, in
//!   bounds, ids unique; payload area exactly as long as declared;
//! * every bunch strictly ascending by node id with levels `< k`
//!   (Lemma 3.2's sorted-bunch representation — the `BTreeMap` decode
//!   path would silently *canonicalize* an out-of-order bunch, so only
//!   an independent walk can catch it);
//! * pivot rows consistent: distances non-decreasing in level and
//!   absence persisting upward (both forced by `A_0 ⊇ A_1 ⊇ …`), and a
//!   pivot that appears in its own bunch agrees on the distance;
//! * sketches consistent with the sampling hierarchy stored beside them
//!   (a bunch entry at level `i` names a node of `A_i`, so its stored
//!   hierarchy level is at least `i`; same for the level-`i` pivot);
//! * cross-family contracts: CDG params match the header's scheme spec,
//!   degrading layers have strictly decreasing ε and non-decreasing `k`;
//! * the frozen CSR decode path accepts the same payload and its offset
//!   arrays are monotone, terminating at the array lengths.
//!
//! Every failure is a typed [`AnalysisError`] naming the section, node
//! and byte offset, so a corrupt file is diagnosable without a hex dump.

use crate::error::AnalysisError;
use dsketch::codec::{CodecError, Decoder, SketchCodec};
use dsketch::flat::FlatSketchSet;
use dsketch::hierarchy::Hierarchy;
use dsketch::slack::cdg::CdgParams;
use dsketch::slack::density_net::DensityNet;
use dsketch::SchemeSpec;
use netgraph::{Distance, GraphFingerprint, NodeId, INFINITY};
use std::path::Path;

/// Magic, version and section ids re-declared here on purpose: the
/// verifier parses the container independently of `dsketch-store`'s
/// reader, so a bug in that reader cannot hide a malformed file from it.
const MAGIC: [u8; 4] = *b"DSK1";
const SUPPORTED_VERSION: u32 = 1;
const SECTION_SKETCHES: [u8; 4] = *b"SKCH";
const SECTION_BUILD_STATS: [u8; 4] = *b"STAT";

/// One section as seen by the verifier.
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// The section id rendered as text (e.g. `SKCH`).
    pub id: String,
    /// Absolute file offset of the payload.
    pub file_offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// The (verified) payload CRC.
    pub crc: u32,
}

/// What a successful verification established.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The scheme recorded in the header.
    pub spec: SchemeSpec,
    /// The graph fingerprint recorded in the header.
    pub fingerprint: GraphFingerprint,
    /// The sections present, in payload order.
    pub sections: Vec<SectionReport>,
    /// Sketch layers walked (1 for every family but degrading).
    pub layers: usize,
    /// Nodes covered per layer.
    pub nodes: usize,
    /// Total bunch entries across all layers.
    pub bunch_entries: u64,
    /// Total pivot slots with a pivot present, across all layers.
    pub pivots_present: u64,
}

/// Read and deep-verify a snapshot file.
pub fn verify_snapshot_file(path: &Path) -> Result<VerifyReport, AnalysisError> {
    let bytes = std::fs::read(path).map_err(|source| AnalysisError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    verify_snapshot_bytes(&bytes)
}

/// Deep-verify a snapshot already in memory.
pub fn verify_snapshot_bytes(bytes: &[u8]) -> Result<VerifyReport, AnalysisError> {
    let container = parse_container(bytes)?;
    let spec = container.spec;

    let skch = container
        .section(SECTION_SKETCHES)
        .ok_or(AnalysisError::MissingSection {
            section: section_name(SECTION_SKETCHES),
        })?;
    let mut walker = SketchWalker::new(skch.payload, skch.file_offset);
    let counts = walk_family(&mut walker, &spec, container.fingerprint)?;
    walker.finish()?;

    // The frozen (CSR) decode path must accept the same payload: the two
    // readers are independent implementations of one contract, and serving
    // traffic runs on this one.
    let flat = FlatSketchSet::from_family_bytes(&spec, skch.payload).map_err(|e| {
        AnalysisError::FrozenInvariant {
            message: format!("frozen decoder rejected a payload the walker accepted: {e}"),
        }
    })?;
    flat.check_invariants()
        .map_err(|message| AnalysisError::FrozenInvariant { message })?;

    if let Some(stat) = container.section(SECTION_BUILD_STATS) {
        decode_build_stats(stat)?;
    }

    Ok(VerifyReport {
        spec,
        fingerprint: container.fingerprint,
        sections: container
            .sections
            .iter()
            .map(|s| SectionReport {
                id: section_name(s.id),
                file_offset: s.file_offset,
                len: s.len,
                crc: s.crc,
            })
            .collect(),
        layers: counts.layers,
        nodes: counts.nodes,
        bunch_entries: counts.bunch_entries,
        pivots_present: counts.pivots_present,
    })
}

fn section_name(id: [u8; 4]) -> String {
    id.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                (b as char).to_string()
            } else {
                format!("\\x{b:02x}")
            }
        })
        .collect()
}

struct ParsedSection<'a> {
    id: [u8; 4],
    file_offset: u64,
    len: u64,
    crc: u32,
    payload: &'a [u8],
}

struct ParsedContainer<'a> {
    spec: SchemeSpec,
    fingerprint: GraphFingerprint,
    sections: Vec<ParsedSection<'a>>,
}

impl<'a> ParsedContainer<'a> {
    fn section(&self, id: [u8; 4]) -> Option<&ParsedSection<'a>> {
        self.sections.iter().find(|s| s.id == id)
    }
}

/// Independent parse of prelude, header and section table, with the
/// structural section-table checks and per-section CRCs.
fn parse_container(bytes: &[u8]) -> Result<ParsedContainer<'_>, AnalysisError> {
    if bytes.len() < 12 {
        return Err(AnalysisError::Truncated {
            what: "prelude",
            offset: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(AnalysisError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version > SUPPORTED_VERSION {
        return Err(AnalysisError::UnsupportedVersion {
            found: version,
            supported: SUPPORTED_VERSION,
        });
    }
    let header_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let Some(block) = bytes.get(12..12 + header_len) else {
        return Err(AnalysisError::Truncated {
            what: "header block",
            offset: bytes.len() as u64,
        });
    };
    if block.len() < 4 {
        return Err(AnalysisError::Truncated {
            what: "header checksum",
            offset: (12 + block.len()) as u64,
        });
    }
    let (body, crc_bytes) = block.split_at(block.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..12 + body.len()]);
    if stored != computed {
        return Err(AnalysisError::HeaderChecksum { stored, computed });
    }

    let mut input = Decoder::new(body);
    let decoded = (|| -> Result<_, CodecError> {
        let spec = SchemeSpec::decode(&mut input)?;
        let nodes = input.u64("fingerprint.nodes")?;
        let edges = input.u64("fingerprint.edges")?;
        let weight_checksum = input.u64("fingerprint.checksum")?;
        let count = input.u32("section count")? as usize;
        let mut table = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let mut id = [0u8; 4];
            for slot in &mut id {
                *slot = input.u8("section id")?;
            }
            let offset = input.u64("section offset")?;
            let len = input.u64("section length")?;
            let crc = input.u32("section crc")?;
            table.push((id, offset, len, crc));
        }
        Ok((
            spec,
            GraphFingerprint {
                nodes,
                edges,
                weight_checksum,
            },
            table,
        ))
    })()
    .map_err(|e| AnalysisError::HeaderDecode {
        message: e.to_string(),
    })?;
    input.finish().map_err(|e| AnalysisError::HeaderDecode {
        message: e.to_string(),
    })?;
    let (spec, fingerprint, table) = decoded;

    // Section-table structural contracts.  The writer emits contiguous
    // in-order sections, so "sorted and non-overlapping" tightens to
    // "each starts exactly where the previous one ends".
    let payload_area = &bytes[12 + header_len..];
    let payload_base = (12 + header_len) as u64;
    let mut cursor = 0u64;
    let mut sections = Vec::with_capacity(table.len());
    for (id, offset, len, crc) in table {
        let section = section_name(id);
        if sections.iter().any(|s: &ParsedSection<'_>| s.id == id) {
            return Err(AnalysisError::SectionTable {
                section,
                offset,
                message: "duplicate section id".to_string(),
            });
        }
        if offset < cursor {
            return Err(AnalysisError::SectionTable {
                section,
                offset,
                message: format!("overlaps the previous section, which ends at {cursor}"),
            });
        }
        if offset > cursor {
            return Err(AnalysisError::SectionTable {
                section,
                offset,
                message: format!("leaves a gap after the previous section, which ends at {cursor}"),
            });
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| AnalysisError::SectionTable {
                section: section_name(id),
                offset,
                message: "offset + length overflows u64".to_string(),
            })?;
        if end > payload_area.len() as u64 {
            return Err(AnalysisError::SectionTable {
                section,
                offset,
                message: format!(
                    "extends to payload offset {end} but only {} payload bytes exist",
                    payload_area.len()
                ),
            });
        }
        let payload = &payload_area[offset as usize..end as usize];
        let computed = crc32(payload);
        if computed != crc {
            return Err(AnalysisError::SectionChecksum {
                section,
                stored: crc,
                computed,
            });
        }
        sections.push(ParsedSection {
            id,
            file_offset: payload_base + offset,
            len,
            crc,
            payload,
        });
        cursor = end;
    }
    if cursor < payload_area.len() as u64 {
        return Err(AnalysisError::TrailingBytes {
            section: "(payload area)".to_string(),
            remaining: payload_area.len() as u64 - cursor,
        });
    }

    Ok(ParsedContainer {
        spec,
        fingerprint,
        sections,
    })
}

/// Totals accumulated while walking the sketch payload.
#[derive(Debug, Default)]
struct WalkCounts {
    layers: usize,
    nodes: usize,
    bunch_entries: u64,
    pivots_present: u64,
}

/// A byte-offset-aware decoder over the `SKCH` payload.
struct SketchWalker<'a> {
    input: Decoder<'a>,
    payload_len: usize,
    base: u64,
}

impl<'a> SketchWalker<'a> {
    fn new(payload: &'a [u8], file_offset: u64) -> SketchWalker<'a> {
        SketchWalker {
            input: Decoder::new(payload),
            payload_len: payload.len(),
            base: file_offset,
        }
    }

    /// Absolute file offset of the next unread byte.
    fn offset(&self) -> u64 {
        self.base + (self.payload_len - self.input.remaining()) as u64
    }

    fn codec_err(&self, e: CodecError) -> AnalysisError {
        AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: self.offset(),
            message: e.to_string(),
        }
    }

    fn finish(self) -> Result<(), AnalysisError> {
        let remaining = self.input.remaining() as u64;
        if remaining > 0 {
            return Err(AnalysisError::TrailingBytes {
                section: section_name(SECTION_SKETCHES),
                remaining,
            });
        }
        Ok(())
    }
}

/// One decoded sketch, kept only as long as its cross-checks need it.
struct WalkedSketch {
    owner: u32,
    k: usize,
    /// `(node, distance)` per level, `None` where the level has no pivot.
    pivots: Vec<Option<(u32, Distance)>>,
    /// `(node, level, distance)`, strictly ascending by node.
    bunch: Vec<(u32, u32, Distance)>,
}

/// Walk the family payload: dispatch on the header's spec, decode every
/// sub-structure in wire order, and run the semantic checks.
fn walk_family(
    walker: &mut SketchWalker<'_>,
    spec: &SchemeSpec,
    fingerprint: GraphFingerprint,
) -> Result<WalkCounts, AnalysisError> {
    let mut counts = WalkCounts::default();
    match *spec {
        SchemeSpec::ThorupZwick { k } => {
            // Layout of TzSketchSet: sketches, hierarchy.
            let sketches = walk_sketch_set(walker, Some(k), fingerprint, &mut counts)?;
            let hierarchy = decode_hierarchy(walker, &sketches)?;
            for sketch in &sketches {
                check_hierarchy_contract(sketch, &hierarchy)?;
            }
            counts.layers = 1;
        }
        SchemeSpec::ThreeStretch { .. } => {
            // Layout of ThreeStretchSketchSet: net, sketches, stats.
            decode_net(walker, fingerprint)?;
            walk_sketch_set(walker, None, fingerprint, &mut counts)?;
            congest_sim::RunStats::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
            counts.layers = 1;
        }
        SchemeSpec::Cdg { eps, k } => {
            let params = walk_cdg_layer(walker, fingerprint, &mut counts)?;
            if params.eps != eps || params.k != k {
                return Err(AnalysisError::LayerContract {
                    layer: 0,
                    message: format!(
                        "stored CdgParams (eps = {}, k = {}) disagree with the header spec \
                         (eps = {eps}, k = {k})",
                        params.eps, params.k
                    ),
                });
            }
            counts.layers = 1;
        }
        SchemeSpec::Degrading { max_layers, .. } => {
            // Layout of DegradingSketchSet: layer count, CDG layers, stats.
            let count = walker
                .input
                .len_prefix(128, "DegradingSketchSet layers length")
                .map_err(|e| walker.codec_err(e))?;
            if count == 0 {
                return Err(AnalysisError::LayerContract {
                    layer: 0,
                    message: "degrading set has no layers".to_string(),
                });
            }
            if let Some(cap) = max_layers {
                if count > cap {
                    return Err(AnalysisError::LayerContract {
                        layer: count - 1,
                        message: format!("{count} layers exceed the spec's max_layers = {cap}"),
                    });
                }
            }
            let mut previous: Option<CdgParams> = None;
            for layer in 0..count {
                let params = walk_cdg_layer(walker, fingerprint, &mut counts)?;
                if let Some(prev) = previous {
                    // ε halves layer over layer (strictly decreasing) while
                    // k grows with the layer index (non-decreasing): the
                    // gracefully-degrading trade-off of Section 5.
                    if params.eps >= prev.eps {
                        return Err(AnalysisError::LayerContract {
                            layer,
                            message: format!(
                                "eps {} does not decrease from the previous layer's {}",
                                params.eps, prev.eps
                            ),
                        });
                    }
                    if params.k < prev.k {
                        return Err(AnalysisError::LayerContract {
                            layer,
                            message: format!(
                                "k {} decreases from the previous layer's {}",
                                params.k, prev.k
                            ),
                        });
                    }
                }
                previous = Some(params);
            }
            congest_sim::RunStats::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
            counts.layers = count;
        }
    }
    Ok(counts)
}

/// Layout of CdgSketchSet: params, net, hierarchy, sketches, stats.
fn walk_cdg_layer(
    walker: &mut SketchWalker<'_>,
    fingerprint: GraphFingerprint,
    counts: &mut WalkCounts,
) -> Result<CdgParams, AnalysisError> {
    let params = CdgParams::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
    decode_net(walker, fingerprint)?;
    let sketches_at = walker.offset();
    let hierarchy = Hierarchy::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
    let sketches = walk_sketch_set(walker, Some(params.k), fingerprint, counts)?;
    if hierarchy.levels().len() as u64 != fingerprint.nodes {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: sketches_at,
            message: format!(
                "hierarchy covers {} nodes but the fingerprint says {}",
                hierarchy.levels().len(),
                fingerprint.nodes
            ),
        });
    }
    for sketch in &sketches {
        check_hierarchy_contract(sketch, &hierarchy)?;
    }
    congest_sim::RunStats::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
    Ok(params)
}

fn decode_net(
    walker: &mut SketchWalker<'_>,
    fingerprint: GraphFingerprint,
) -> Result<(), AnalysisError> {
    let at = walker.offset();
    let net = DensityNet::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
    if net.num_nodes() as u64 != fingerprint.nodes {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!(
                "density net covers {} nodes but the fingerprint says {}",
                net.num_nodes(),
                fingerprint.nodes
            ),
        });
    }
    for member in net.members() {
        if member.index() >= net.num_nodes() {
            return Err(AnalysisError::SectionDecode {
                section: section_name(SECTION_SKETCHES),
                offset: at,
                message: format!(
                    "net member {member} out of range for {} nodes",
                    net.num_nodes()
                ),
            });
        }
    }
    Ok(())
}

fn decode_hierarchy(
    walker: &mut SketchWalker<'_>,
    sketches: &[WalkedSketch],
) -> Result<Hierarchy, AnalysisError> {
    let at = walker.offset();
    let hierarchy = Hierarchy::decode(&mut walker.input).map_err(|e| walker.codec_err(e))?;
    if hierarchy.levels().len() != sketches.len() {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!(
                "hierarchy covers {} nodes but the sketch set covers {}",
                hierarchy.levels().len(),
                sketches.len()
            ),
        });
    }
    Ok(hierarchy)
}

fn decode_build_stats(section: &ParsedSection<'_>) -> Result<(), AnalysisError> {
    let mut input = Decoder::new(section.payload);
    congest_sim::RunStats::decode(&mut input).map_err(|e| AnalysisError::SectionDecode {
        section: section_name(SECTION_BUILD_STATS),
        offset: section.file_offset + (section.payload.len() - input.remaining()) as u64,
        message: e.to_string(),
    })?;
    let remaining = input.remaining() as u64;
    if remaining > 0 {
        return Err(AnalysisError::TrailingBytes {
            section: section_name(SECTION_BUILD_STATS),
            remaining,
        });
    }
    Ok(())
}

/// Walk one `SketchSet` encoding, checking the per-sketch contracts and
/// accumulating counts.  `expect_k` pins every sketch's level count when
/// the spec fixes it.
fn walk_sketch_set(
    walker: &mut SketchWalker<'_>,
    expect_k: Option<usize>,
    fingerprint: GraphFingerprint,
    counts: &mut WalkCounts,
) -> Result<Vec<WalkedSketch>, AnalysisError> {
    let at = walker.offset();
    let count = walker
        .input
        .len_prefix(21, "SketchSet length")
        .map_err(|e| walker.codec_err(e))?;
    if count as u64 != fingerprint.nodes {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!(
                "sketch set covers {count} nodes but the fingerprint says {}",
                fingerprint.nodes
            ),
        });
    }
    let mut sketches = Vec::with_capacity(count);
    for index in 0..count {
        sketches.push(walk_sketch(walker, index, expect_k)?);
        let sketch = sketches.last().expect("just pushed");
        counts.bunch_entries += sketch.bunch.len() as u64;
        counts.pivots_present += sketch.pivots.iter().flatten().count() as u64;
    }
    counts.nodes = count;
    Ok(sketches)
}

fn walk_sketch(
    walker: &mut SketchWalker<'_>,
    index: usize,
    expect_k: Option<usize>,
) -> Result<WalkedSketch, AnalysisError> {
    let at = walker.offset();
    let owner = walker
        .input
        .u32("Sketch.owner")
        .map_err(|e| walker.codec_err(e))?;
    if owner as usize != index {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!("sketch {index} is owned by node {owner}, not its node index"),
        });
    }
    let k = walker
        .input
        .len_prefix(1, "Sketch.k")
        .map_err(|e| walker.codec_err(e))?;
    if k == 0 {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!("sketch of node {owner} has k = 0"),
        });
    }
    if expect_k.is_some_and(|expected| k != expected) {
        return Err(AnalysisError::SectionDecode {
            section: section_name(SECTION_SKETCHES),
            offset: at,
            message: format!(
                "sketch of node {owner} has k = {k} but the scheme fixes k = {}",
                expect_k.expect("checked Some")
            ),
        });
    }

    // Pivot row: distances non-decreasing in level, absence persisting
    // upward — both forced by the nesting A_0 ⊇ A_1 ⊇ …: the nearest
    // member of a *smaller* set cannot be nearer, and a level with no
    // reachable member cannot regrow one above it.
    let mut pivots = Vec::with_capacity(k);
    let mut last_distance: Distance = 0;
    let mut absent_since: Option<usize> = None;
    for level in 0..k {
        let present = walker
            .input
            .bool("Sketch.pivot flag")
            .map_err(|e| walker.codec_err(e))?;
        if present {
            let node = walker
                .input
                .u32("Sketch.pivot node")
                .map_err(|e| walker.codec_err(e))?;
            let distance = walker
                .input
                .u64("Sketch.pivot distance")
                .map_err(|e| walker.codec_err(e))?;
            if let Some(since) = absent_since {
                return Err(AnalysisError::PivotRow {
                    node: owner,
                    level: level as u32,
                    message: format!(
                        "pivot present although level {since} had none (A_{since} ⊇ A_{level})"
                    ),
                });
            }
            if distance == INFINITY {
                return Err(AnalysisError::PivotRow {
                    node: owner,
                    level: level as u32,
                    message: "present pivot with infinite distance".to_string(),
                });
            }
            if distance < last_distance {
                return Err(AnalysisError::PivotRow {
                    node: owner,
                    level: level as u32,
                    message: format!(
                        "pivot distance {distance} decreases from level {}'s {last_distance}",
                        level - 1
                    ),
                });
            }
            last_distance = distance;
            pivots.push(Some((node, distance)));
        } else {
            absent_since.get_or_insert(level);
            pivots.push(None);
        }
    }

    let bunch_len = walker
        .input
        .len_prefix(16, "Sketch.bunch length")
        .map_err(|e| walker.codec_err(e))?;
    let mut bunch = Vec::with_capacity(bunch_len);
    let mut previous: Option<u32> = None;
    for _ in 0..bunch_len {
        let entry_at = walker.offset();
        let node = walker
            .input
            .u32("BunchEntry.node")
            .map_err(|e| walker.codec_err(e))?;
        let level = walker
            .input
            .u32("BunchEntry.level")
            .map_err(|e| walker.codec_err(e))?;
        let distance = walker
            .input
            .u64("BunchEntry.distance")
            .map_err(|e| walker.codec_err(e))?;
        if let Some(prev) = previous {
            if node <= prev {
                return Err(AnalysisError::BunchOrder {
                    node: owner,
                    offset: entry_at,
                    previous: prev,
                    found: node,
                });
            }
        }
        previous = Some(node);
        if level as usize >= k {
            return Err(AnalysisError::BunchLevel {
                node: owner,
                level,
                k: k as u32,
                offset: entry_at,
            });
        }
        bunch.push((node, level, distance));
    }

    // A pivot that appears in its own bunch must agree on the distance:
    // both record d(owner, node), measured by different parts of the
    // construction.
    for (level, pivot) in pivots.iter().enumerate() {
        let Some((node, distance)) = pivot else {
            continue;
        };
        if let Ok(i) = bunch.binary_search_by_key(node, |&(n, _, _)| n) {
            if bunch[i].2 != *distance {
                return Err(AnalysisError::PivotRow {
                    node: owner,
                    level: level as u32,
                    message: format!(
                        "pivot {node} at distance {distance} but the bunch records {}",
                        bunch[i].2
                    ),
                });
            }
        }
    }

    Ok(WalkedSketch {
        owner,
        k,
        pivots,
        bunch,
    })
}

/// Cross-check one sketch against the sampling hierarchy stored beside it:
/// a bunch entry at level `i` names a node the construction saw in `A_i`,
/// and the level-`i` pivot is the nearest member of `A_i` — so both nodes'
/// stored hierarchy levels must be at least `i`.
fn check_hierarchy_contract(
    sketch: &WalkedSketch,
    hierarchy: &Hierarchy,
) -> Result<(), AnalysisError> {
    if hierarchy.k() != sketch.k {
        return Err(AnalysisError::HierarchyContract {
            node: sketch.owner,
            message: format!(
                "sketch has k = {} but the hierarchy has k = {}",
                sketch.k,
                hierarchy.k()
            ),
        });
    }
    let num_nodes = hierarchy.levels().len();
    for &(node, level, _) in &sketch.bunch {
        if node as usize >= num_nodes {
            return Err(AnalysisError::HierarchyContract {
                node: sketch.owner,
                message: format!("bunch member {node} out of range for {num_nodes} nodes"),
            });
        }
        let actual = hierarchy.level_of(NodeId(node));
        if actual < level as i32 {
            return Err(AnalysisError::HierarchyContract {
                node: sketch.owner,
                message: format!(
                    "bunch member {node} claims level {level} but the hierarchy samples it \
                     at level {actual}"
                ),
            });
        }
    }
    for (level, pivot) in sketch.pivots.iter().enumerate() {
        let Some((node, _)) = pivot else { continue };
        if *node as usize >= num_nodes {
            return Err(AnalysisError::HierarchyContract {
                node: sketch.owner,
                message: format!("pivot {node} out of range for {num_nodes} nodes"),
            });
        }
        let actual = hierarchy.level_of(NodeId(*node));
        if actual < level as i32 {
            return Err(AnalysisError::HierarchyContract {
                node: sketch.owner,
                message: format!(
                    "level-{level} pivot {node} is sampled only to level {actual} \
                     in the hierarchy"
                ),
            });
        }
    }
    Ok(())
}

/// CRC-32 (IEEE, reflected) — deliberately a second implementation, so the
/// verifier does not depend on the code path it is checking.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_and_garbage_inputs_fail_typed() {
        assert!(matches!(
            verify_snapshot_bytes(&[]),
            Err(AnalysisError::Truncated { .. })
        ));
        assert!(matches!(
            verify_snapshot_bytes(b"not a snapshot at all"),
            Err(AnalysisError::BadMagic { .. })
        ));
        let mut prelude = Vec::new();
        prelude.extend_from_slice(&MAGIC);
        prelude.extend_from_slice(&99u32.to_le_bytes());
        prelude.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            verify_snapshot_bytes(&prelude),
            Err(AnalysisError::UnsupportedVersion { found: 99, .. })
        ));
    }
}
