//! The project lint pass: six hand-rolled lints over the workspace
//! sources, with per-line escapes and path scoping.
//!
//! The lints encode contracts the compiler cannot express for us:
//!
//! | lint | contract |
//! |---|---|
//! | `no-unwrap-in-hot-path` | no `unwrap()` / `expect()` / `panic!` in `core`/`store`/`serve`/`obs` lib code outside tests |
//! | `checked-casts` | no bare integer `as` casts in codec/format/flat byte-layout code — use `dsketch::cast` |
//! | `unsafe-needs-safety-comment` | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `deny-missing-docs-everywhere` | every lib crate root carries `#![deny(missing_docs)]` |
//! | `no-raw-thread-spawn` | all thread spawning goes through `dsketch::parallel` |
//! | `metric-name-style` | registered metric names are snake_case, `dsketch_`-prefixed, and unit-suffixed |
//!
//! A finding can be suppressed **at the site** with an escape comment that
//! names the lint and must carry a justification:
//!
//! ```text
//! // dsketch-lint: allow(no-unwrap-in-hot-path): a dead shard is a bug, not an input
//! worker.join().expect("query shard panicked");
//! ```
//!
//! The escape applies to its own line and the next code line only — there
//! is deliberately no file- or crate-wide escape, so every exemption is
//! visible next to the code it exempts and carries its reason.

use crate::error::AnalysisError;
use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The six project lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// No `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!`
    /// in hot-path lib code (`crates/core`, `crates/store`, `crates/serve`,
    /// `crates/obs`) outside `#[cfg(test)]`.
    NoUnwrapInHotPath,
    /// No bare integer `as` casts in byte-layout code (codec, DSK1 format,
    /// flat CSR); use the `dsketch::cast` checked helpers.
    CheckedCasts,
    /// Every `unsafe` block or fn must be preceded by a `// SAFETY:`
    /// comment within the three lines above it.
    UnsafeNeedsSafetyComment,
    /// Every lib crate root (`crates/*/src/lib.rs`) must carry
    /// `#![deny(missing_docs)]`.
    DenyMissingDocsEverywhere,
    /// No `std::thread::spawn` / `std::thread::Builder` outside
    /// `dsketch::parallel` — one blessed spawn path for the whole
    /// workspace.
    NoRawThreadSpawn,
    /// Metric names passed as string literals to the registry's
    /// `counter`/`gauge`/`histogram` constructors must be snake_case
    /// (`[a-z0-9_]`, no `__`, no trailing `_`), carry the `dsketch_`
    /// prefix, and end with a unit suffix (`_total`, `_nanos`,
    /// `_seconds`, `_bytes`, `_ratio`, `_entries`, or `_info`) — so the
    /// `/metrics` exposition stays uniformly navigable.
    MetricNameStyle,
}

impl Lint {
    /// All lints, in reporting order.
    pub fn all() -> [Lint; 6] {
        [
            Lint::NoUnwrapInHotPath,
            Lint::CheckedCasts,
            Lint::UnsafeNeedsSafetyComment,
            Lint::DenyMissingDocsEverywhere,
            Lint::NoRawThreadSpawn,
            Lint::MetricNameStyle,
        ]
    }

    /// The lint's kebab-case name — what escape comments and reports use.
    pub fn name(&self) -> &'static str {
        match self {
            Lint::NoUnwrapInHotPath => "no-unwrap-in-hot-path",
            Lint::CheckedCasts => "checked-casts",
            Lint::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
            Lint::DenyMissingDocsEverywhere => "deny-missing-docs-everywhere",
            Lint::NoRawThreadSpawn => "no-raw-thread-spawn",
            Lint::MetricNameStyle => "metric-name-style",
        }
    }

    /// Look a lint up by its kebab-case name.
    pub fn by_name(name: &str) -> Option<Lint> {
        Lint::all().into_iter().find(|l| l.name() == name)
    }
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation: which lint, where, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated lint.
    pub lint: Lint,
    /// Path of the offending file, relative to the lint root.
    pub file: PathBuf,
    /// 1-based line of the violation.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// The escape-comment marker. A comment suppresses a lint on its own line
/// and the next line when it contains `dsketch-lint: allow(<name>)`.
const ESCAPE_MARKER: &str = "dsketch-lint:";

/// Lint every workspace source under `root` (the `crates/`, `tests/` and
/// `examples/` trees; `vendor/` and `target/` are never scanned) and return
/// the findings, sorted by file then line.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, AnalysisError> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rust_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file).map_err(|source| AnalysisError::Io {
            path: file.clone(),
            source,
        })?;
        let relative = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        findings.extend(lint_file(&relative, &source));
    }
    Ok(findings)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalysisError> {
    let entries = std::fs::read_dir(dir).map_err(|source| AnalysisError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| AnalysisError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's source text.  `path` should be workspace-relative: the
/// path decides which lints apply (crate libraries get the full set,
/// binaries and benches skip the doc lints, integration tests are exempt).
pub fn lint_file(path: &Path, source: &str) -> Vec<Finding> {
    let scope = Scope::of(path);
    let tokens = tokenize(source);
    let suppressed = suppressed_lines(&tokens);
    let test_lines = cfg_test_lines(&tokens);
    let mut findings = Vec::new();

    if scope.unwrap_lint {
        lint_no_unwrap(path, &tokens, &test_lines, &mut findings);
    }
    if scope.cast_lint {
        lint_checked_casts(path, &tokens, &test_lines, &mut findings);
    }
    // The safety-comment lint applies everywhere, tests included: a test
    // exercising unsafe code needs its reasoning written down just as much.
    lint_unsafe_safety_comment(path, &tokens, &mut findings);
    if scope.lib_root {
        lint_deny_missing_docs(path, &tokens, &mut findings);
    }
    if scope.spawn_lint {
        lint_no_raw_spawn(path, &tokens, &test_lines, &mut findings);
    }
    if scope.metric_lint {
        lint_metric_name_style(path, &tokens, &test_lines, &mut findings);
    }

    findings.retain(|f| {
        !suppressed.get(&f.lint).is_some_and(|lines| {
            lines.contains(&f.line) || lines.contains(&f.line.saturating_sub(1))
        })
    });
    findings.sort_by_key(|f| (f.line, f.lint));
    findings
}

/// Which lints apply to a file, decided from its workspace-relative path.
struct Scope {
    unwrap_lint: bool,
    cast_lint: bool,
    lib_root: bool,
    spawn_lint: bool,
    metric_lint: bool,
}

impl Scope {
    fn of(path: &Path) -> Scope {
        let p = path.to_string_lossy().replace('\\', "/");
        let in_lib_src = |krate: &str| p.starts_with(&format!("crates/{krate}/src/"));
        let unwrap_lint =
            in_lib_src("core") || in_lib_src("store") || in_lib_src("serve") || in_lib_src("obs");
        // The byte-layout code: the sketch codec, the flat CSR decoder, and
        // the DSK1 container.  `cast.rs` itself is the blessed home of the
        // raw casts and is exempt.
        let cast_lint = [
            "crates/core/src/codec.rs",
            "crates/core/src/flat.rs",
            "crates/store/src/format.rs",
            "crates/store/src/snapshot.rs",
            "crates/store/src/crc32.rs",
        ]
        .contains(&p.as_str());
        let lib_root = p.starts_with("crates/") && p.ends_with("/src/lib.rs");
        // `dsketch::parallel` is the one blessed spawn site; integration
        // test and bench trees drive concurrency through the public APIs
        // and are covered by code review instead.
        let spawn_lint = p != "crates/core/src/parallel.rs"
            && !p.starts_with("tests/")
            && !p.contains("/tests/")
            && !p.contains("/benches/");
        // Metric names are registered from crate sources (lib and bin);
        // integration tests exercising deliberately bad names are exempt,
        // like the other style lints.
        let metric_lint = p.starts_with("crates/")
            && p.contains("/src/")
            && !p.contains("/tests/")
            && !p.contains("/benches/");
        Scope {
            unwrap_lint,
            cast_lint,
            lib_root,
            spawn_lint,
            metric_lint,
        }
    }
}

/// Lines suppressed per lint by `dsketch-lint: allow(...)` escape comments.
fn suppressed_lines(tokens: &[Token<'_>]) -> std::collections::BTreeMap<Lint, BTreeSet<u32>> {
    let mut map: std::collections::BTreeMap<Lint, BTreeSet<u32>> = Default::default();
    for token in tokens.iter().filter(|t| t.is_comment()) {
        let Some(marker) = token.text.find(ESCAPE_MARKER) else {
            continue;
        };
        let rest = &token.text[marker + ESCAPE_MARKER.len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        for name in rest[open + "allow(".len()..open + close].split(',') {
            if let Some(lint) = Lint::by_name(name.trim()) {
                // The escape covers its own line and the following line
                // (`suppress` is checked as line or line − 1 at filter
                // time, so a trailing comment works too).
                map.entry(lint).or_default().insert(token.line);
            }
        }
    }
    map
}

/// The set of lines inside `#[cfg(test)]`-gated items (the test modules):
/// scan for the attribute, then swallow the brace-balanced item after it.
fn cfg_test_lines(tokens: &[Token<'_>]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(&code, i) {
            // Find the item's opening brace, then its matching close.
            let mut j = i;
            while j < code.len() && code[j].text != "{" {
                j += 1;
            }
            let start_line = code[i].line;
            let mut depth = 0usize;
            while j < code.len() {
                match code[j].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end_line = code.get(j).map_or(u32::MAX, |t| t.line);
            lines.extend(start_line..=end_line);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    lines
}

/// Does `code[i..]` start the token sequence `# [ cfg ( test ) ]`?
fn is_cfg_test_attr(code: &[&Token<'_>], i: usize) -> bool {
    let texts: Vec<&str> = code[i..].iter().take(7).map(|t| t.text).collect();
    texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

fn lint_no_unwrap(
    path: &Path,
    tokens: &[Token<'_>],
    test_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || test_lines.contains(&token.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| code[p].text);
        let next = code.get(i + 1).map(|t| t.text);
        let method_call = |name| token.text == name && prev == Some(".") && next == Some("(");
        let macro_call = |name| token.text == name && next == Some("!");
        let message = if method_call("unwrap") || method_call("expect") {
            format!(
                "`{}()` in hot-path lib code — return a typed error instead",
                token.text
            )
        } else if macro_call("panic") || macro_call("todo") || macro_call("unimplemented") {
            format!(
                "`{}!` in hot-path lib code — return a typed error instead",
                token.text
            )
        } else {
            continue;
        };
        findings.push(Finding {
            lint: Lint::NoUnwrapInHotPath,
            file: path.to_path_buf(),
            line: token.line,
            message,
        });
    }
}

/// Integer types an `as` cast may truncate into (or, for `usize`/`u64`,
/// whose portability depends on the platform word size).  Casting **to**
/// any integer type is flagged in the scoped byte-layout files: the
/// `dsketch::cast` helpers express intent (checked narrowing vs. static
/// widening) where `as` silently wraps.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn lint_checked_casts(
    path: &Path,
    tokens: &[Token<'_>],
    test_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, token) in code.iter().enumerate() {
        if token.text != "as" || token.kind != TokenKind::Ident || test_lines.contains(&token.line)
        {
            continue;
        }
        // `use x as y` renames are not casts.
        if i > 0 && code[i - 1].kind == TokenKind::Ident && code[i - 1].text == "crate" {
            continue;
        }
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        if INT_TYPES.contains(&target.text) {
            findings.push(Finding {
                lint: Lint::CheckedCasts,
                file: path.to_path_buf(),
                line: token.line,
                message: format!(
                    "bare `as {}` cast in byte-layout code — use the `dsketch::cast` checked helpers",
                    target.text
                ),
            });
        }
    }
}

fn lint_unsafe_safety_comment(path: &Path, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || token.text != "unsafe" {
            continue;
        }
        // A `// SAFETY:` comment within the three lines above (or on the
        // same line) satisfies the lint.
        let documented = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line + 3 >= token.line)
            .any(|t| t.is_comment() && t.text.contains("SAFETY:"));
        if !documented {
            findings.push(Finding {
                lint: Lint::UnsafeNeedsSafetyComment,
                file: path.to_path_buf(),
                line: token.line,
                message: "`unsafe` without a `// SAFETY:` comment explaining why it is sound"
                    .to_string(),
            });
        }
    }
}

fn lint_deny_missing_docs(path: &Path, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let has = code.windows(8).any(|w| {
        let texts: Vec<&str> = w.iter().map(|t| t.text).collect();
        texts == ["#", "!", "[", "deny", "(", "missing_docs", ")", "]"]
    });
    if !has {
        findings.push(Finding {
            lint: Lint::DenyMissingDocsEverywhere,
            file: path.to_path_buf(),
            line: 1,
            message: "lib crate root lacks `#![deny(missing_docs)]`".to_string(),
        });
    }
}

fn lint_no_raw_spawn(
    path: &Path,
    tokens: &[Token<'_>],
    test_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || test_lines.contains(&token.line) {
            continue;
        }
        if token.text != "spawn" && token.text != "Builder" {
            continue;
        }
        // Preceded by `thread ::`?
        let preceded_by_thread = i >= 2
            && code[i - 1].text == ":"
            && code[i - 2].text == ":"
            && i >= 3
            && code[i - 3].text == "thread";
        if preceded_by_thread {
            findings.push(Finding {
                lint: Lint::NoRawThreadSpawn,
                file: path.to_path_buf(),
                line: token.line,
                message: format!(
                    "raw `thread::{}` — spawn through `dsketch::parallel` instead",
                    token.text
                ),
            });
        }
    }
}

/// Registry constructor methods whose first string-literal argument is a
/// metric name (see `dsketch-obs`).
const METRIC_METHODS: [&str; 6] = [
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
];

/// The unit suffixes the naming convention accepts.
const METRIC_SUFFIXES: [&str; 7] = [
    "_total", "_nanos", "_seconds", "_bytes", "_ratio", "_entries", "_info",
];

/// Why `name` violates the metric naming convention, or `None` if it is
/// conforming.
fn metric_name_problem(name: &str) -> Option<String> {
    if !name.starts_with("dsketch_") {
        return Some(format!("metric `{name}` lacks the `dsketch_` prefix"));
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !c.is_ascii_lowercase() && !c.is_ascii_digit() && *c != '_')
    {
        return Some(format!(
            "metric `{name}` contains `{bad}` — snake_case `[a-z0-9_]` only"
        ));
    }
    if name.contains("__") {
        return Some(format!("metric `{name}` contains a double underscore"));
    }
    if name.ends_with('_') {
        return Some(format!("metric `{name}` ends with `_`"));
    }
    if !METRIC_SUFFIXES.iter().any(|s| name.ends_with(s)) {
        return Some(format!(
            "metric `{name}` lacks a unit suffix (one of {})",
            METRIC_SUFFIXES.join(", ")
        ));
    }
    None
}

fn lint_metric_name_style(
    path: &Path,
    tokens: &[Token<'_>],
    test_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident
            || test_lines.contains(&token.line)
            || !METRIC_METHODS.contains(&token.text)
        {
            continue;
        }
        // Only method calls with a string-literal first argument:
        // `.counter("…", …)`.  Names built at runtime cannot be checked
        // statically and are deliberately out of scope.
        let is_method = i > 0 && code[i - 1].text == ".";
        if !is_method || code.get(i + 1).map(|t| t.text) != Some("(") {
            continue;
        }
        let Some(arg) = code.get(i + 2) else {
            continue;
        };
        if arg.kind != TokenKind::Str {
            continue;
        }
        // Strip the quotes (and any raw/byte prefix) off the literal.
        let Some(open) = arg.text.find('"') else {
            continue;
        };
        let inner = &arg.text[open + 1..];
        let name = inner.rfind('"').map_or(inner, |close| &inner[..close]);
        if let Some(problem) = metric_name_problem(name) {
            findings.push(Finding {
                lint: Lint::MetricNameStyle,
                file: path.to_path_buf(),
                line: arg.line,
                message: problem,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(path: &str, source: &str) -> Vec<Finding> {
        lint_file(Path::new(path), source)
    }

    const HOT: &str = "crates/core/src/query.rs";

    #[test]
    fn unwrap_is_flagged_in_hot_path_lib_code_only() {
        let source = "fn f() { x.unwrap(); y.expect(\"reason\"); panic!(\"no\"); }";
        let findings = lint_as(HOT, source);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == Lint::NoUnwrapInHotPath));
        // The same text in a non-hot-path crate is clean.
        assert!(lint_as("crates/graph/src/apsp.rs", source).is_empty());
        // …and in bench code.
        assert!(lint_as("crates/bench/src/experiments.rs", source).is_empty());
    }

    #[test]
    fn unwrap_or_variants_and_strings_are_not_flagged() {
        let source = r#"
            fn f() {
                x.unwrap_or(0);
                x.unwrap_or_else(|| 0);
                x.unwrap_or_default();
                let s = "just call unwrap() here";
                // a comment mentioning unwrap() too
            }
        "#;
        assert!(lint_as(HOT, source).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let source = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); }\n}";
        assert!(lint_as(HOT, source).is_empty());
        // But code BEFORE the test module is still linted.
        let source = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {}";
        assert_eq!(lint_as(HOT, source).len(), 1);
    }

    #[test]
    fn escape_comments_suppress_with_their_line_and_the_next() {
        let suppressed =
            "fn f() {\n // dsketch-lint: allow(no-unwrap-in-hot-path): invariant\n x.unwrap();\n}";
        assert!(lint_as(HOT, suppressed).is_empty());
        let trailing =
            "fn f() { x.unwrap(); } // dsketch-lint: allow(no-unwrap-in-hot-path): invariant";
        assert!(lint_as(HOT, trailing).is_empty());
        // An escape for a different lint does not suppress.
        let wrong = "fn f() {\n // dsketch-lint: allow(checked-casts): nope\n x.unwrap();\n}";
        assert_eq!(lint_as(HOT, wrong).len(), 1);
        // An escape two lines up does not reach.
        let far = "fn f() {\n // dsketch-lint: allow(no-unwrap-in-hot-path): too far\n let y = 1;\n x.unwrap();\n}";
        assert_eq!(lint_as(HOT, far).len(), 1);
    }

    #[test]
    fn casts_are_flagged_in_byte_layout_files_only() {
        let source = "fn f(x: u64) -> u32 { x as u32 }";
        let findings = lint_as("crates/core/src/codec.rs", source);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::CheckedCasts);
        assert!(lint_as("crates/core/src/cast.rs", source).is_empty());
        assert!(lint_as("crates/graph/src/csr.rs", source).is_empty());
        // Non-integer casts (traits, f64) are not the lint's business.
        let trait_cast = "fn f(x: &dyn Any) { g(x as &dyn Other); h(1 as f64); }";
        assert!(lint_as("crates/core/src/codec.rs", trait_cast).is_empty());
    }

    #[test]
    fn unsafe_requires_a_safety_comment() {
        let bad = "fn f() { unsafe { work() } }";
        let findings = lint_as("crates/graph/src/csr.rs", bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::UnsafeNeedsSafetyComment);
        let good = "fn f() {\n // SAFETY: bounds checked above\n unsafe { work() }\n}";
        assert!(lint_as("crates/graph/src/csr.rs", good).is_empty());
        // A SAFETY comment too far above does not count.
        let far = "// SAFETY: stale\nfn a() {}\nfn b() {}\nfn c() {}\nfn f() { unsafe { w() } }";
        assert_eq!(lint_as("crates/graph/src/csr.rs", far).len(), 1);
    }

    #[test]
    fn lib_roots_must_deny_missing_docs() {
        let bare = "pub fn f() {}";
        let findings = lint_as("crates/graph/src/lib.rs", bare);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::DenyMissingDocsEverywhere);
        let good = "#![deny(missing_docs)]\npub fn f() {}";
        assert!(lint_as("crates/graph/src/lib.rs", good).is_empty());
        // Non-root files are exempt.
        assert!(lint_as("crates/graph/src/csr.rs", bare).is_empty());
    }

    #[test]
    fn raw_thread_spawns_are_flagged_outside_the_pool() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        let builder = "fn f() { std::thread::Builder::new(); }";
        for source in [spawn, builder] {
            let findings = lint_as("crates/serve/src/server.rs", source);
            assert_eq!(findings.len(), 1, "{source}");
            assert_eq!(findings[0].lint, Lint::NoRawThreadSpawn);
        }
        // The pool itself is the blessed site.
        assert!(lint_as("crates/core/src/parallel.rs", spawn).is_empty());
        // Integration tests may spawn freely.
        assert!(lint_as("tests/tests/serve_layer.rs", spawn).is_empty());
    }

    #[test]
    fn metric_names_must_follow_the_convention() {
        let obs = "crates/serve/src/stats.rs";
        // Conforming names pass, whichever constructor registers them.
        let good = r#"fn f(r: &MetricsRegistry) {
            r.counter("dsketch_serve_queries_total", "h");
            let l = "4";
            r.gauge_with("dsketch_serve_queue_entries", "h", &[("shard", &l)]);
            r.histogram("dsketch_serve_query_latency_nanos", "h");
        }"#;
        assert!(lint_as(obs, good).is_empty(), "{:?}", lint_as(obs, good));
        // Each violation class is caught.
        for (source, needle) in [
            (r#"r.counter("serve_queries_total", "h");"#, "prefix"),
            (r#"r.counter("dsketch_Serve_total", "h");"#, "snake_case"),
            (
                r#"r.gauge("dsketch_serve__queue_entries", "h");"#,
                "double underscore",
            ),
            (
                r#"r.histogram("dsketch_serve_latency", "h");"#,
                "unit suffix",
            ),
            (
                r#"r.counter_with("dsketch_x_total_", "h", &[]);"#,
                "ends with",
            ),
        ] {
            let wrapped = format!("fn f() {{ {source} }}");
            let findings = lint_as(obs, &wrapped);
            assert_eq!(findings.len(), 1, "{source}: {findings:?}");
            assert_eq!(findings[0].lint, Lint::MetricNameStyle);
            assert!(
                findings[0].message.contains(needle),
                "{}",
                findings[0].message
            );
        }
        // Plain function calls, runtime-built names and test modules are
        // out of scope.
        let skip = r#"fn f() { counter("x", "h"); r.counter(name, "h"); }
            #[cfg(test)] mod t { fn g(r: &R) { r.counter("bad", "h"); } }"#;
        assert!(lint_as(obs, skip).is_empty());
        // Integration tests may register deliberately bad names.
        let bad = r#"fn f(r: &R) { r.counter("bad", "h"); }"#;
        assert!(lint_as("tests/tests/obs_registry.rs", bad).is_empty());
    }

    #[test]
    fn lint_names_round_trip() {
        for lint in Lint::all() {
            assert_eq!(Lint::by_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::by_name("no-such-lint"), None);
    }

    #[test]
    fn findings_display_file_line_and_lint() {
        let findings = lint_as(HOT, "fn f() { x.unwrap(); }");
        let text = findings[0].to_string();
        assert!(text.contains("query.rs:1"), "{text}");
        assert!(text.contains("no-unwrap-in-hot-path"), "{text}");
    }
}
