//! `dsketch-analyze` — the workspace's correctness gate as a CLI.
//!
//! ```text
//! dsketch-analyze lint [--root PATH] [--deny-warnings]
//! dsketch-analyze verify SNAPSHOT...
//! ```
//!
//! `lint` walks the workspace sources and prints every project-lint
//! finding as `file:line: [lint] message`; with `--deny-warnings` any
//! finding makes the exit status 1 (the CI mode).  `verify` deep-checks
//! one or more `DSK1` snapshots and fails on the first invariant
//! violation, naming the section, node and byte offset.

use dsketch_analysis::{lint_workspace, verify_snapshot_file, AnalysisError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage()
        }
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: dsketch-analyze lint [--root PATH] [--deny-warnings]");
    eprintln!("       dsketch-analyze verify SNAPSHOT...");
    ExitCode::FAILURE
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny = true,
            "--root" => match it.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    // When run from a workspace subdirectory, walk up to the root so
    // `cargo run -p dsketch-analysis` works from anywhere in the repo.
    let root = find_workspace_root(&root);
    let findings = match lint_workspace(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("lint failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        eprintln!("lint clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} finding{} across the workspace",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walk up from `start` to the first directory holding a `Cargo.toml` with
/// a `[workspace]` table; fall back to `start` when none is found.
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("verify needs at least one snapshot path");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in args {
        match verify_snapshot_file(Path::new(path)) {
            Ok(report) => {
                println!(
                    "{path}: ok — {} · {} node{} · {} layer{} · {} bunch entries · {} pivots",
                    report.spec.name(),
                    report.nodes,
                    if report.nodes == 1 { "" } else { "s" },
                    report.layers,
                    if report.layers == 1 { "" } else { "s" },
                    report.bunch_entries,
                    report.pivots_present,
                );
                for section in &report.sections {
                    println!(
                        "  section {} @ {} ({} bytes, crc {:#010x})",
                        section.id, section.file_offset, section.len, section.crc
                    );
                }
            }
            Err(e) => {
                report_failure(path, &e);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report_failure(path: &str, e: &AnalysisError) {
    eprintln!("{path}: FAILED [{}] {e}", e.kind());
}
