//! A lightweight, dependency-free Rust lexer — just enough structure for
//! the project lints.
//!
//! The lints in [`crate::lints`] need to see identifiers, punctuation and
//! comments while being immune to look-alike text inside string literals
//! and doc prose (a `// the old code called unwrap()` comment must not trip
//! `no-unwrap-in-hot-path`).  A full parser would be overkill; a scanner
//! that classifies the token stream and tracks line numbers is exactly
//! enough.  It handles the Rust lexical constructs that matter for not
//! mis-classifying source text:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string, raw-string (`r#"…"#`, any number of hashes), byte-string and
//!   char literals, including escapes,
//! * lifetimes vs. char literals (`'a` vs `'a'`),
//! * identifiers (keywords are not distinguished — the lints match on
//!   text), numbers and single-char punctuation.
//!
//! The lexer never fails: unterminated constructs are consumed to end of
//! input and tokenized as what they started as, which is the right behavior
//! for a linter (the compiler will reject the file anyway; the lint pass
//! should not panic on it).

/// The classification of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `as`, `unsafe`, `fn`, …).
    Ident,
    /// A numeric literal (integer or float, any base; suffix included).
    Number,
    /// One punctuation character (`.`, `(`, `{`, `#`, `!`, `:`, …).
    Punct,
    /// A `//` comment, text included (doc comments too).
    LineComment,
    /// A `/* … */` comment (nesting handled), text included.
    BlockComment,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`, `'_`.
    Lifetime,
}

/// One lexed token: its kind, its exact source text, and the 1-based line
/// it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's source text, byte-exact.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenize `source` into a flat token stream (whitespace dropped, comments
/// kept).  Never fails; see the module docs for the unterminated-input
/// policy.
pub fn tokenize(source: &str) -> Vec<Token<'_>> {
    Lexer {
        source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    source: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut tokens = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.consume_line_comment();
                    TokenKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.consume_block_comment();
                    TokenKind::BlockComment
                }
                b'r' | b'b' if self.starts_raw_or_byte_string() => {
                    self.consume_string_prefix();
                    TokenKind::Str
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1; // the `b`; the char scanner takes the rest
                    self.consume_char_literal();
                    TokenKind::Char
                }
                b'"' => {
                    self.consume_plain_string();
                    TokenKind::Str
                }
                b'\'' => self.consume_char_or_lifetime(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.consume_ident();
                    TokenKind::Ident
                }
                _ if b.is_ascii_digit() => {
                    self.consume_number();
                    TokenKind::Number
                }
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            tokens.push(Token {
                kind,
                text: &self.source[start..self.pos],
                line,
            });
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump_line_on(&mut self, b: u8) {
        if b == b'\n' {
            self.line += 1;
        }
    }

    fn consume_line_comment(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn consume_block_comment(&mut self) {
        self.pos += 2; // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.bytes.get(self.pos), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(&b), _) => {
                    self.bump_line_on(b);
                    self.pos += 1;
                }
                (None, _) => break,
            }
        }
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `br"` or `br#` — the raw /
    /// byte string prefixes?  (`b'` is handled separately as a byte char.)
    fn starts_raw_or_byte_string(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        let after_prefix = match rest {
            [b'b', b'r', ..] => &rest[2..],
            [b'r', ..] | [b'b', ..] => &rest[1..],
            _ => return false,
        };
        let raw = rest[0] == b'r' || rest.get(1) == Some(&b'r');
        match after_prefix.first() {
            Some(b'"') => true,
            Some(b'#') if raw => {
                // r#"…"# or r#ident (a raw identifier).  Look past the
                // hashes for the opening quote.
                let hashes = after_prefix.iter().take_while(|&&b| b == b'#').count();
                after_prefix.get(hashes) == Some(&b'"')
            }
            _ => false,
        }
    }

    fn consume_string_prefix(&mut self) {
        // Consume `r` / `b` / `br` then dispatch on what follows.
        let raw = self.bytes[self.pos] == b'r' || self.peek(1) == Some(b'r');
        while matches!(self.bytes.get(self.pos), Some(b'r') | Some(b'b')) {
            self.pos += 1;
        }
        if raw {
            self.consume_raw_string();
        } else {
            self.consume_plain_string();
        }
    }

    fn consume_plain_string(&mut self) {
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            self.bump_line_on(b);
            self.pos += 1;
            match b {
                b'\\' => {
                    if let Some(&esc) = self.bytes.get(self.pos) {
                        self.bump_line_on(esc);
                        self.pos += 1;
                    }
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    fn consume_raw_string(&mut self) {
        let hashes = self.bytes[self.pos..]
            .iter()
            .take_while(|&&b| b == b'#')
            .count();
        self.pos += hashes + 1; // hashes + opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            self.bump_line_on(b);
            self.pos += 1;
            if b == b'"' {
                let closing = &self.bytes[self.pos..];
                if closing.len() >= hashes && closing[..hashes].iter().all(|&b| b == b'#') {
                    self.pos += hashes;
                    break;
                }
            }
        }
    }

    fn consume_char_or_lifetime(&mut self) -> TokenKind {
        // `'a` (lifetime) vs `'a'` (char): a lifetime is `'` + ident chars
        // with no closing quote right after.
        let mut probe = self.pos + 1;
        while self
            .bytes
            .get(probe)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric())
        {
            probe += 1;
        }
        // (`get` returning `None` — end of input — also means lifetime.)
        let is_lifetime = probe > self.pos + 1 && self.bytes.get(probe) != Some(&b'\'');
        if is_lifetime {
            self.pos = probe;
            TokenKind::Lifetime
        } else {
            self.consume_char_literal();
            TokenKind::Char
        }
    }

    fn consume_char_literal(&mut self) {
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            self.bump_line_on(b);
            self.pos += 1;
            match b {
                b'\\' if self.bytes.get(self.pos).is_some() => self.pos += 1,
                b'\'' => break,
                _ => {}
            }
        }
    }

    fn consume_ident(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
    }

    fn consume_number(&mut self) {
        // Numbers never matter to the lints; consume digits, `_`, `.`, and
        // alphanumeric suffix/exponent chars greedily (but stop before a
        // `..` range so `0..n` lexes as three tokens).
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'.' {
                if self.peek(1) == Some(b'.') {
                    break;
                }
                self.pos += 1;
            } else if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, &str)> {
        tokenize(source)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("let x = a.unwrap();"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "unwrap"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, ";"),
            ]
        );
        assert_eq!(
            kinds("0..10 1_000u64 3.5e2"),
            vec![
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "10"),
                (TokenKind::Number, "1_000u64"),
                (TokenKind::Number, "3.5e2"),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let tokens = kinds(r#"let s = "call unwrap() as u32"; t"#);
        assert!(tokens.contains(&(TokenKind::Str, r#""call unwrap() as u32""#)));
        // No Ident token for the words inside the string.
        assert!(!tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let source = "r#\"a \" inside\"# r\"plain\" br#\"bytes\"#";
        let tokens = kinds(source);
        assert_eq!(tokens.len(), 3);
        assert!(tokens.iter().all(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn comments_and_nesting() {
        let source = "code // line unwrap()\n/* outer /* inner */ still */ after";
        let tokens = kinds(source);
        assert_eq!(tokens[0], (TokenKind::Ident, "code"));
        assert_eq!(tokens[1].0, TokenKind::LineComment);
        assert_eq!(tokens[2].0, TokenKind::BlockComment);
        assert_eq!(tokens[3], (TokenKind::Ident, "after"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(
            kinds("&'a str 'x' '\\n' b'z' '_'"),
            vec![
                (TokenKind::Punct, "&"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Ident, "str"),
                (TokenKind::Char, "'x'"),
                (TokenKind::Char, "'\\n'"),
                (TokenKind::Char, "b'z'"),
                // `'_'` is a char literal holding an underscore.
                (TokenKind::Char, "'_'"),
            ]
        );
        assert_eq!(kinds("<'_>")[1].0, TokenKind::Lifetime);
    }

    #[test]
    fn line_numbers_are_tracked_across_constructs() {
        let source = "a\n\"two\nline\"\nb /* c\nd */ e";
        let tokens = tokenize(source);
        let find = |text: &str| tokens.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for source in ["\"open", "/* open", "r#\"open", "'"] {
            let _ = tokenize(source);
        }
    }
}
