//! Static analysis and invariant verification for the distance-sketch
//! workspace: the correctness gate in front of every serving deployment.
//!
//! Two engines, one crate:
//!
//! * [`lints`] — a hand-rolled, dependency-free lint pass (its own lexer,
//!   no `syn`, no `rustc` internals) that walks every workspace source and
//!   enforces the five project lints the compiler cannot express: no
//!   unwrap/panic in hot-path lib code, checked casts in byte-layout code,
//!   `SAFETY:` comments on every `unsafe`, `#![deny(missing_docs)]` on
//!   every lib crate root, and one blessed thread-spawn path.
//! * [`verify`] — the `DSK1` snapshot deep verifier: an independent parse
//!   of the container plus a byte-by-byte walk of the sketch payload,
//!   checking the semantic invariants (sorted bunches, pivot-row
//!   monotonicity, hierarchy consistency, cross-family contracts, frozen
//!   CSR structure) that CRCs cannot see.
//!
//! Both run from the [`dsketch-analyze`](../dsketch_analyze/index.html)
//! binary and as a required CI job; `dsketch-store verify` exposes the
//! verifier next to the other snapshot tooling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod lexer;
pub mod lints;
pub mod verify;

pub use error::AnalysisError;
pub use lints::{lint_file, lint_workspace, Finding, Lint};
pub use verify::{verify_snapshot_bytes, verify_snapshot_file, VerifyReport};
