//! Fixed log₂-bucket latency histograms with lock-free recording.
//!
//! A [`Histogram`] is [`BUCKETS`] counters plus a running sum and maximum,
//! all relaxed atomics.  Bucket `i` counts values in `[2^i, 2^(i+1))`
//! (bucket 0 also takes 0, the last bucket takes everything above its
//! floor), which spans 1 ns to ~9 minutes when values are nanoseconds —
//! every latency this workspace can produce.  The *count* of a histogram
//! is never stored: it is derived from the bucket array at snapshot time,
//! so a snapshot's count always equals the sum of its buckets by
//! construction (no torn `count`-vs-`buckets` reads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log₂ buckets. `2^39` ns ≈ 9.2 minutes, far beyond any
/// single-query or single-phase duration the workspace measures.
pub const BUCKETS: usize = 40;

/// The bucket index a value lands in: `floor(log2(max(v, 1)))`, clamped to
/// the last bucket.  Boundary values `2^i` land in bucket `i` exactly.
pub fn bucket_index(value: u64) -> usize {
    let floor_log2 = 63 - value.max(1).leading_zeros() as usize;
    floor_log2.min(BUCKETS - 1)
}

/// The largest value bucket `i` holds: `2^(i+1) - 1`, or `u64::MAX` for
/// the last (unbounded) bucket.  These are the `le` bounds the Prometheus
/// encoder emits.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

#[derive(Debug)]
struct Cells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A shared log₂-bucket histogram handle.  Cloning shares the cells;
/// recording is three relaxed atomic RMW operations and never locks.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<Cells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (standalone use — e.g. the load generator's
    /// client-side latency record; registered histograms come from
    /// [`crate::MetricsRegistry::histogram`]).
    pub fn new() -> Histogram {
        Histogram {
            cells: Arc::new(Cells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation (nanoseconds, by workspace convention).
    pub fn record(&self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        self.cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A guard that records the elapsed nanoseconds since its creation
    /// when dropped — the span-style way to time a scope:
    ///
    /// ```
    /// # let registry = dsketch_obs::MetricsRegistry::new();
    /// let hist = registry.histogram("dsketch_build_phase_nanos", "Phase wall time.");
    /// {
    ///     let _span = hist.start_span();
    ///     // … timed work …
    /// } // recorded here
    /// assert_eq!(hist.snapshot().count(), 1);
    /// ```
    pub fn start_span(&self) -> HistogramSpan {
        HistogramSpan {
            histogram: self.clone(),
            started: Instant::now(),
        }
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .cells
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.cells.sum.load(Ordering::Relaxed),
            max: self.cells.max.load(Ordering::Relaxed),
        }
    }
}

/// Times a scope into a [`Histogram`] on drop — see
/// [`Histogram::start_span`].
#[derive(Debug)]
pub struct HistogramSpan {
    histogram: Histogram,
    started: Instant,
}

impl Drop for HistogramSpan {
    fn drop(&mut self) {
        self.histogram
            .record(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// A consistent point-in-time view of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries, non-cumulative).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations — derived from the buckets, so it always equals
    /// their sum.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank over the log₂
    /// buckets, reported as the holding bucket's [`bucket_upper_bound`] —
    /// a conservative (never under-reported) estimate with the buckets'
    /// factor-of-two resolution.  `quantile(0.99)` is the p99 the swap
    /// experiments compare; the top (unbounded) bucket reports the exact
    /// recorded `max` instead of `u64::MAX`.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Nearest rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return if index >= BUCKETS - 1 {
                    self.max
                } else {
                    bucket_upper_bound(index).min(self.max)
                };
            }
        }
        self.max
    }

    /// Merge another snapshot into this one by summation (maximum for
    /// `max`) — how per-shard histograms aggregate into totals.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_their_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_index(1u64 << i), i, "2^{i} starts bucket {i}");
            assert_eq!(
                bucket_index((1u64 << i) - 1),
                i - 1,
                "2^{i}-1 ends bucket {}",
                i - 1
            );
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bounds_are_inclusive_and_monotone() {
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
            assert!(bucket_upper_bound(i) < bucket_upper_bound(i + 1));
        }
    }

    #[test]
    fn count_is_derived_from_buckets() {
        let hist = Histogram::new();
        for value in [0, 1, 1, 5, 1023, 1024, u64::MAX] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 7);
        assert_eq!(snap.buckets[0], 3, "0, 1, 1");
        assert_eq!(snap.buckets[2], 1, "5");
        assert_eq!(snap.buckets[9], 1, "1023");
        assert_eq!(snap.buckets[10], 1, "1024");
        assert_eq!(snap.buckets[BUCKETS - 1], 1, "u64::MAX");
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn quantiles_follow_nearest_rank_over_buckets() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);

        let hist = Histogram::new();
        // 90 small values in bucket 3 ([8, 16)) and 10 large ones in
        // bucket 10 ([1024, 2048)): p50 sits in the small bucket, p99 in
        // the large one.
        for _ in 0..90 {
            hist.record(10);
        }
        for _ in 0..10 {
            hist.record(1500);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.5), bucket_upper_bound(3));
        assert_eq!(snap.quantile(0.90), bucket_upper_bound(3));
        assert_eq!(snap.quantile(0.91), 1500, "capped at the recorded max");
        assert_eq!(snap.quantile(0.99), 1500);
        assert_eq!(snap.quantile(1.0), 1500);

        // A single observation answers every quantile with itself (its
        // bucket bound capped at max).
        let one = Histogram::new();
        one.record(5);
        assert_eq!(one.snapshot().quantile(0.0), 5);
        assert_eq!(one.snapshot().quantile(0.99), 5);

        // Top-bucket mass reports the exact max, not u64::MAX.
        let top = Histogram::new();
        top.record(u64::MAX - 3);
        assert_eq!(top.snapshot().quantile(0.99), u64::MAX - 3);
    }

    #[test]
    fn spans_record_on_drop_and_absorb_sums() {
        let hist = Histogram::new();
        {
            let _span = hist.start_span();
        }
        let mut a = hist.snapshot();
        assert_eq!(a.count(), 1);
        let other = Histogram::new();
        other.record(7);
        other.record(9);
        a.absorb(&other.snapshot());
        assert_eq!(a.count(), 3);
        assert!(a.sum >= 16);
        assert!(a.mean() > 0.0);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }
}
