//! `dsketch-obs` — the dependency-free observability core of the workspace.
//!
//! The paper's contribution is *efficiency*: sketch construction in
//! Õ(n^(1/2+1/2k) + D) rounds and constant-round queries.  Demonstrating
//! efficiency continuously — not just in one-shot experiment tables —
//! needs a telemetry spine, and this crate is it:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log₂-bucket latency
//!   histograms.  Recording is lock-free (plain relaxed atomics behind
//!   cheap `Clone` handles); reading is a one-pass [`MetricsRegistry::snapshot`]
//!   whose derived quantities (histogram counts, ratios) are computed from
//!   the snapshot itself, so a `/stats` document can never mix counter
//!   values from two different moments.
//! * [`Histogram`] — fixed log₂ buckets over nanoseconds: bucket *i* holds
//!   values in `[2^i, 2^(i+1))`, recording is three `fetch_add`-class
//!   atomic operations, and the total count is *derived from the buckets*
//!   at snapshot time so count and buckets cannot tear.
//! * [`Tracer`] — deterministic 1-in-N sampling over a shared atomic
//!   counter (exactly ⌈Q/N⌉ of Q events are sampled), emitting structured
//!   JSON [`TraceEvent`]s to a built-in ring buffer plus any pluggable
//!   [`TraceSink`]s (e.g. [`StdoutSink`] for `--log-json`).
//! * [`prometheus::encode`] — the Prometheus text exposition format over
//!   one or more registry snapshots, served by the HTTP front end as
//!   `GET /metrics`.
//!
//! # Instrument naming
//!
//! Every instrument name is `snake_case`, starts with `dsketch_`, and ends
//! with a unit suffix (`_total`, `_nanos`, `_seconds`, `_bytes`, `_ratio`,
//! `_entries`, `_info`).  The `metric-name-style` project lint
//! (`dsketch-analyze lint`) enforces this at every registration site.
//!
//! # Registry scoping
//!
//! Process-wide facts (build phases, graph generation, snapshot I/O) go to
//! the [`global`] registry.  Per-server facts (shard counters, wire
//! counters) go to a per-server registry owned by that server, because one
//! process may run many servers (tests run dozens) and their exact counts
//! must not mix.  `GET /metrics` encodes both.
//!
//! ```
//! use dsketch_obs::{MetricsRegistry, prometheus};
//!
//! let registry = MetricsRegistry::new();
//! let queries = registry.counter("dsketch_serve_queries_total", "Queries answered.");
//! let latency = registry.histogram("dsketch_serve_query_latency_nanos", "Service time.");
//! queries.inc();
//! latency.record(1_500);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("dsketch_serve_queries_total", ""), Some(1));
//! let text = prometheus::encode(&[&snap]);
//! assert!(text.contains("dsketch_serve_queries_total 1"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod histogram;
pub mod prometheus;
mod registry;
mod trace;

pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{
    global, Counter, FamilySnapshot, Gauge, InstrumentKind, MetricsRegistry, MetricsSnapshot,
    SeriesSnapshot, SeriesValue,
};
pub use trace::{RingSink, StdoutSink, TraceEvent, TraceSink, Tracer};
