//! Prometheus text exposition (format version 0.0.4) over registry
//! snapshots.
//!
//! [`encode`] takes one or more [`MetricsSnapshot`]s — typically the
//! [`crate::global`] registry plus a server's own — and renders the
//! standard `# HELP` / `# TYPE` / sample-line document.  Families with the
//! same name across snapshots are merged under one header.  Histogram
//! series expand to cumulative `_bucket{le="…"}` lines (bounds are the
//! inclusive integer-nanosecond bucket tops from
//! [`crate::bucket_upper_bound`]), a `_sum`, and a `_count`.

use crate::histogram::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::{FamilySnapshot, MetricsSnapshot, SeriesValue};

/// Render `snapshots` as one Prometheus text document.
///
/// ```
/// use dsketch_obs::{prometheus, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// registry.counter("dsketch_net_frames_in_total", "Frames read.").add(7);
/// let text = prometheus::encode(&[&registry.snapshot()]);
/// assert!(text.contains("# TYPE dsketch_net_frames_in_total counter"));
/// assert!(text.contains("dsketch_net_frames_in_total 7"));
/// ```
pub fn encode(snapshots: &[&MetricsSnapshot]) -> String {
    let mut out = String::new();
    let mut emitted: Vec<&str> = Vec::new();
    for (i, snapshot) in snapshots.iter().enumerate() {
        for family in &snapshot.families {
            if emitted.contains(&family.name.as_str()) {
                continue;
            }
            emitted.push(&family.name);
            encode_family(&mut out, family);
            // Later snapshots may carry series of the same family name;
            // fold them under this one header.
            for other in &snapshots[i + 1..] {
                for twin in other.families.iter().filter(|f| f.name == family.name) {
                    encode_series(&mut out, twin);
                }
            }
        }
    }
    out
}

fn encode_family(out: &mut String, family: &FamilySnapshot) {
    out.push_str("# HELP ");
    out.push_str(&family.name);
    out.push(' ');
    for c in family.help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(&family.name);
    out.push(' ');
    out.push_str(family.kind.type_name());
    out.push('\n');
    encode_series(out, family);
}

fn encode_series(out: &mut String, family: &FamilySnapshot) {
    for series in &family.series {
        match &series.value {
            SeriesValue::Counter(v) => {
                sample_line(out, &family.name, "", &series.labels, None, &v.to_string())
            }
            SeriesValue::Gauge(v) => {
                sample_line(out, &family.name, "", &series.labels, None, &v.to_string())
            }
            SeriesValue::Histogram(h) => encode_histogram(out, &family.name, &series.labels, h),
        }
    }
}

fn encode_histogram(out: &mut String, name: &str, labels: &str, hist: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, count) in hist.buckets.iter().enumerate().take(BUCKETS) {
        cumulative += count;
        let bound = bucket_upper_bound(i);
        let le = if bound == u64::MAX {
            "+Inf".to_string()
        } else {
            bound.to_string()
        };
        sample_line(
            out,
            name,
            "_bucket",
            labels,
            Some(&le),
            &cumulative.to_string(),
        );
    }
    if hist.buckets.len() < BUCKETS
        || bucket_upper_bound(hist.buckets.len().saturating_sub(1)) != u64::MAX
    {
        // Snapshots always carry the full bucket array, but keep the
        // exposition well-formed even for a truncated one.
        sample_line(
            out,
            name,
            "_bucket",
            labels,
            Some("+Inf"),
            &cumulative.to_string(),
        );
    }
    sample_line(out, name, "_sum", labels, None, &hist.sum.to_string());
    sample_line(out, name, "_count", labels, None, &cumulative.to_string());
}

/// One sample line: `name_suffix{labels,le="bound"} value`.
fn sample_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    let has_labels = !labels.is_empty();
    if has_labels || le.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some(bound) = le {
            if has_labels {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(bound);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn counters_and_gauges_render_plain_lines() {
        let registry = MetricsRegistry::new();
        registry.counter("dsketch_test_hits_total", "Hits.").add(3);
        registry
            .gauge("dsketch_test_queue_entries", "Depth.")
            .set(-2);
        registry
            .counter_with("dsketch_test_shard_total", "Per shard.", &[("shard", "1")])
            .add(4);
        let text = encode(&[&registry.snapshot()]);
        assert!(text.contains("# HELP dsketch_test_hits_total Hits.\n"));
        assert!(text.contains("# TYPE dsketch_test_hits_total counter\n"));
        assert!(text.contains("dsketch_test_hits_total 3\n"));
        assert!(text.contains("dsketch_test_queue_entries -2\n"));
        assert!(text.contains("dsketch_test_shard_total{shard=\"1\"} 4\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("dsketch_test_latency_nanos", "Latency.");
        hist.record(1); // bucket 0 (le="1")
        hist.record(5); // bucket 2 (le="7")
        let text = encode(&[&registry.snapshot()]);
        assert!(text.contains("# TYPE dsketch_test_latency_nanos histogram\n"));
        assert!(text.contains("dsketch_test_latency_nanos_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("dsketch_test_latency_nanos_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("dsketch_test_latency_nanos_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("dsketch_test_latency_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dsketch_test_latency_nanos_sum 6\n"));
        assert!(text.contains("dsketch_test_latency_nanos_count 2\n"));
    }

    #[test]
    fn labeled_histograms_put_le_last() {
        let registry = MetricsRegistry::new();
        registry
            .histogram_with("dsketch_test_latency_nanos", "L.", &[("shard", "0")])
            .record(2);
        let text = encode(&[&registry.snapshot()]);
        assert!(text.contains("dsketch_test_latency_nanos_bucket{shard=\"0\",le=\"3\"} 1\n"));
        assert!(text.contains("dsketch_test_latency_nanos_sum{shard=\"0\"} 2\n"));
        assert!(text.contains("dsketch_test_latency_nanos_count{shard=\"0\"} 1\n"));
    }

    #[test]
    fn families_merge_across_snapshots_under_one_header() {
        let a = MetricsRegistry::new();
        a.counter_with("dsketch_test_shared_total", "Shared.", &[("src", "a")])
            .add(1);
        let b = MetricsRegistry::new();
        b.counter_with("dsketch_test_shared_total", "Shared.", &[("src", "b")])
            .add(2);
        b.counter("dsketch_test_only_b_total", "Only b.").add(9);
        let text = encode(&[&a.snapshot(), &b.snapshot()]);
        assert_eq!(
            text.matches("# TYPE dsketch_test_shared_total counter")
                .count(),
            1
        );
        assert!(text.contains("dsketch_test_shared_total{src=\"a\"} 1\n"));
        assert!(text.contains("dsketch_test_shared_total{src=\"b\"} 2\n"));
        assert!(text.contains("dsketch_test_only_b_total 9\n"));
    }

    #[test]
    fn help_text_is_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("dsketch_test_esc_total", "line one\nline \\two");
        let text = encode(&[&registry.snapshot()]);
        assert!(text.contains("# HELP dsketch_test_esc_total line one\\nline \\\\two\n"));
    }
}
