//! Sampled query tracing: deterministic 1-in-N selection, structured JSON
//! events, pluggable sinks.
//!
//! Sampling is a single shared atomic counter: the k-th call to
//! [`Tracer::sample`] returns `true` iff `k ≡ 0 (mod N)`, so a run of `Q`
//! queries emits *exactly* `⌈Q/N⌉` events — deterministic enough to assert
//! on in tests and cheap enough (one relaxed `fetch_add`) to leave on in
//! production paths.
//!
//! Every tracer owns a [`RingSink`] holding the most recent events (served
//! by the HTTP front end as `GET /trace?n=K`) and forwards each event to
//! any extra [`TraceSink`]s, e.g. [`StdoutSink`] for `--log-json` runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Receives rendered trace events (one JSON document per call).
pub trait TraceSink: Send + Sync {
    /// Accept one rendered event.  Must not block for long: this runs on
    /// the query path of sampled queries.
    fn emit(&self, json_line: &str);
}

/// A bounded in-memory buffer of the most recent events.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<String>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn last(&self, n: usize) -> Vec<String> {
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let skip = events.len().saturating_sub(n);
        events.iter().skip(skip).cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn emit(&self, json_line: &str) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(json_line.to_string());
    }
}

/// Writes each event as one line on stdout — the `--log-json` sink.
#[derive(Debug, Default)]
pub struct StdoutSink;

impl TraceSink for StdoutSink {
    fn emit(&self, json_line: &str) {
        println!("{json_line}");
    }
}

/// Default capacity of a tracer's built-in ring buffer.
const RING_CAPACITY: usize = 256;

/// Deterministic 1-in-N sampler and event dispatcher.
pub struct Tracer {
    /// Sample every `every`-th call; 0 disables sampling entirely.
    every: u64,
    calls: AtomicU64,
    ring: Arc<RingSink>,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("every", &self.every)
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .field("ring_len", &self.ring.len())
            .field("extra_sinks", &self.sinks.len())
            .finish()
    }
}

impl Tracer {
    /// A tracer that never samples ([`Tracer::sample`] is a single relaxed
    /// load returning `false`).
    pub fn disabled() -> Tracer {
        Tracer::one_in(0)
    }

    /// Sample every `n`-th query (0 disables).  Over `Q` calls, exactly
    /// `⌈Q/n⌉` return `true` — the 1st, the (n+1)-th, and so on.
    pub fn one_in(n: u64) -> Tracer {
        Tracer {
            every: n,
            calls: AtomicU64::new(0),
            ring: Arc::new(RingSink::new(RING_CAPACITY)),
            sinks: Vec::new(),
        }
    }

    /// Forward every emitted event to `sink` as well as the ring.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Tracer {
        self.sinks.push(sink);
        self
    }

    /// Whether sampling is on at all — lets callers skip argument
    /// preparation entirely when tracing is disabled.
    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// Count this call and report whether it is a sampled one.
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.calls
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// Render `event` and dispatch it to the ring and all extra sinks.
    pub fn emit(&self, event: TraceEvent) {
        let line = event.finish();
        self.ring.emit(&line);
        for sink in &self.sinks {
            sink.emit(&line);
        }
    }

    /// The most recent `n` buffered events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<String> {
        self.ring.last(n)
    }
}

/// Builds one flat JSON trace event: `{"event":"kind","key":value,...}`.
///
/// ```
/// use dsketch_obs::TraceEvent;
///
/// let line = TraceEvent::new("query")
///     .num("shard", 2)
///     .text("cache", "hit")
///     .finish();
/// assert_eq!(line, r#"{"event":"query","shard":2,"cache":"hit"}"#);
/// ```
#[derive(Debug)]
pub struct TraceEvent {
    body: String,
}

impl TraceEvent {
    /// Start an event of the given kind.
    pub fn new(kind: &str) -> TraceEvent {
        let mut body = String::with_capacity(64);
        body.push_str("{\"event\":\"");
        push_escaped(&mut body, kind);
        body.push('"');
        TraceEvent { body }
    }

    /// Append an unsigned numeric field.
    pub fn num(mut self, key: &str, value: u64) -> TraceEvent {
        self.push_key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Append a boolean field.
    pub fn flag(mut self, key: &str, value: bool) -> TraceEvent {
        self.push_key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Append a string field (JSON-escaped).
    pub fn text(mut self, key: &str, value: &str) -> TraceEvent {
        self.push_key(key);
        self.body.push('"');
        push_escaped(&mut self.body, value);
        self.body.push('"');
        self
    }

    /// Close the document and return the rendered line.
    pub fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }

    fn push_key(&mut self, key: &str) {
        self.body.push_str(",\"");
        push_escaped(&mut self.body, key);
        self.body.push_str("\":");
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_exactly_ceil_q_over_n() {
        for (q, n, expected) in [
            (20u64, 8u64, 3u64),
            (16, 8, 2),
            (1, 8, 1),
            (0, 8, 0),
            (7, 1, 7),
        ] {
            let tracer = Tracer::one_in(n);
            let sampled = (0..q).filter(|_| tracer.sample()).count() as u64;
            assert_eq!(sampled, expected, "Q={q} N={n}");
            assert_eq!(sampled, q.div_ceil(n), "Q={q} N={n}");
        }
    }

    #[test]
    fn disabled_tracer_never_samples() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        assert!((0..100).all(|_| !tracer.sample()));
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let ring = RingSink::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.emit(&format!("e{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.last(2), vec!["e3".to_string(), "e4".to_string()]);
        assert_eq!(
            ring.last(10),
            vec!["e2".to_string(), "e3".to_string(), "e4".to_string()]
        );
    }

    #[test]
    fn tracer_emits_to_ring_and_extra_sinks() {
        let extra = Arc::new(RingSink::new(8));
        let tracer = Tracer::one_in(1).with_sink(extra.clone());
        tracer.emit(TraceEvent::new("query").num("u", 1));
        tracer.emit(TraceEvent::new("query").num("u", 2));
        assert_eq!(tracer.recent(8).len(), 2);
        assert_eq!(extra.len(), 2);
        assert_eq!(
            extra.last(1),
            vec![r#"{"event":"query","u":2}"#.to_string()]
        );
    }

    #[test]
    fn events_escape_strings() {
        let line = TraceEvent::new("e")
            .text("k", "a\"b\\c\nd")
            .flag("ok", true)
            .finish();
        assert_eq!(
            line,
            "{\"event\":\"e\",\"k\":\"a\\\"b\\\\c\\nd\",\"ok\":true}"
        );
    }
}
