//! The metrics registry: named instrument families with labeled series.
//!
//! Registration (the [`MetricsRegistry::counter`]-family methods) takes a
//! write lock once per *series*, returns a cheap `Clone` handle, and is
//! idempotent — registering the same `(name, labels)` twice returns a
//! handle to the same cells, so construction-order coupling between the
//! code paths that share an instrument is never needed.  Recording through
//! a handle is a relaxed atomic operation and takes no lock.
//!
//! [`MetricsRegistry::snapshot`] walks every family once under the read
//! lock and loads each atomic exactly once, producing a
//! [`MetricsSnapshot`] whose derived quantities (ratios, histogram counts)
//! are internally consistent by construction.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A monotone counter handle.  Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (mostly useful in tests; registered
    /// counters come from [`MetricsRegistry::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that goes up and down (queue depths, pool
/// occupancy).  Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtract `delta`.
    pub fn sub(&self, delta: i64) {
        self.cell.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotone [`Counter`].
    Counter,
    /// Up-and-down [`Gauge`].
    Gauge,
    /// Log₂-bucket [`Histogram`].
    Histogram,
}

impl InstrumentKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn type_name(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum SeriesCell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: InstrumentKind,
    /// Keyed by the rendered label set (e.g. `shard="0"`, empty for none).
    series: BTreeMap<String, SeriesCell>,
}

/// A process- or server-scoped collection of named instruments.
///
/// Create per-server registries with [`MetricsRegistry::new`]; use
/// [`global`] for process-wide facts (build phases, snapshot I/O).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

/// Render a label slice to its canonical exposition text: `k1="v1",k2="v2"`.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, BTreeMap<String, Family>> {
        // A poisoned lock only means some thread panicked mid-registration;
        // the map itself is always structurally sound, so recover.
        self.families.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Family>> {
        self.families.write().unwrap_or_else(|e| e.into_inner())
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: InstrumentKind,
        labels: &[(&str, &str)],
    ) -> SeriesCell {
        let key = render_labels(labels);
        {
            // Fast path: the series already exists.
            let map = self.read();
            if let Some(family) = map.get(name) {
                assert_eq!(
                    family.kind,
                    kind,
                    "instrument `{name}` registered as {} and {}",
                    family.kind.type_name(),
                    kind.type_name()
                );
                if let Some(cell) = family.series.get(&key) {
                    return cell.clone();
                }
            }
        }
        let mut map = self.write();
        let family = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "instrument `{name}` registered as {} and {}",
            family.kind.type_name(),
            kind.type_name()
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                InstrumentKind::Counter => SeriesCell::Counter(Counter::new()),
                InstrumentKind::Gauge => SeriesCell::Gauge(Gauge::new()),
                InstrumentKind::Histogram => SeriesCell::Histogram(Histogram::new()),
            })
            .clone()
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, InstrumentKind::Counter, labels) {
            SeriesCell::Counter(c) => c,
            // register() asserts the kind matches before returning.
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, InstrumentKind::Gauge, labels) {
            SeriesCell::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Register (or look up) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or look up) a labeled histogram series.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, InstrumentKind::Histogram, labels) {
            SeriesCell::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// One consistent pass over every registered instrument: each atomic is
    /// loaded exactly once, under a single read lock.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.read();
        MetricsSnapshot {
            families: map
                .iter()
                .map(|(name, family)| FamilySnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|(labels, cell)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match cell {
                                SeriesCell::Counter(c) => SeriesValue::Counter(c.value()),
                                SeriesCell::Gauge(g) => SeriesValue::Gauge(g.value()),
                                SeriesCell::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The process-global registry: build phases, graph generation, snapshot
/// I/O — facts that belong to the process, not to one server.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A point-in-time view of one registry: every family, every series, read
/// in one pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Families in name order.
    pub families: Vec<FamilySnapshot>,
}

/// One instrument family in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (e.g. `dsketch_serve_queries_total`).
    pub name: String,
    /// Help text shown in the exposition.
    pub help: String,
    /// Instrument kind.
    pub kind: InstrumentKind,
    /// Labeled series, in label order.
    pub series: Vec<SeriesSnapshot>,
}

/// One labeled series in a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Rendered label set (e.g. `shard="0"`; empty for an unlabeled series).
    pub labels: String,
    /// The value read at snapshot time.
    pub value: SeriesValue,
}

/// The value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram's cells.
    Histogram(HistogramSnapshot),
}

impl MetricsSnapshot {
    fn find(&self, name: &str, labels: &str) -> Option<&SeriesValue> {
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| s.labels == labels)
            .map(|s| &s.value)
    }

    /// The counter series `name{labels}`, if present (`labels` rendered as
    /// `k="v"`; empty string for an unlabeled series).
    pub fn counter(&self, name: &str, labels: &str) -> Option<u64> {
        match self.find(name, labels)? {
            SeriesValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge series `name{labels}`, if present.
    pub fn gauge(&self, name: &str, labels: &str) -> Option<i64> {
        match self.find(name, labels)? {
            SeriesValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram series `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&HistogramSnapshot> {
        match self.find(name, labels)? {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of a counter family over all its series (0 when absent).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.series)
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// A histogram family absorbed over all its series (empty when absent).
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for family in self.families.iter().filter(|f| f.name == name) {
            for series in &family.series {
                if let SeriesValue::Histogram(h) = &series.value {
                    total.absorb(h);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_cells() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("dsketch_test_a_total", "help");
        let b = registry.counter("dsketch_test_a_total", "ignored on re-register");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        assert_eq!(
            registry.snapshot().counter("dsketch_test_a_total", ""),
            Some(3)
        );
    }

    #[test]
    fn labeled_series_are_independent() {
        let registry = MetricsRegistry::new();
        for shard in 0..3u32 {
            let c = registry.counter_with(
                "dsketch_test_queries_total",
                "per-shard",
                &[("shard", &shard.to_string())],
            );
            c.add(u64::from(shard) + 1);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("dsketch_test_queries_total", "shard=\"0\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("dsketch_test_queries_total", "shard=\"2\""),
            Some(3)
        );
        assert_eq!(snap.counter_sum("dsketch_test_queries_total"), 6);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("dsketch_test_queue_entries", "depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-1);
        assert_eq!(
            registry.snapshot().gauge("dsketch_test_queue_entries", ""),
            Some(-1)
        );
    }

    #[test]
    fn histograms_aggregate_across_series() {
        let registry = MetricsRegistry::new();
        registry
            .histogram_with("dsketch_test_latency_nanos", "h", &[("shard", "0")])
            .record(10);
        registry
            .histogram_with("dsketch_test_latency_nanos", "h", &[("shard", "1")])
            .record(100);
        let snap = registry.snapshot();
        assert_eq!(
            snap.histogram("dsketch_test_latency_nanos", "shard=\"0\"")
                .map(|h| h.count()),
            Some(1)
        );
        let total = snap.histogram_total("dsketch_test_latency_nanos");
        assert_eq!(total.count(), 2);
        assert_eq!(total.sum, 110);
        assert_eq!(total.max, 100);
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_mismatch_panics_at_registration() {
        let registry = MetricsRegistry::new();
        registry.counter("dsketch_test_kind_total", "a");
        registry.gauge("dsketch_test_kind_total", "b");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(render_labels(&[("k", "a\"b\\c")]), "k=\"a\\\"b\\\\c\"");
        assert_eq!(render_labels(&[]), "");
        assert_eq!(render_labels(&[("a", "1"), ("b", "2")]), "a=\"1\",b=\"2\"");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("dsketch_test_global_total", "singleton");
        let before = c.value();
        global()
            .counter("dsketch_test_global_total", "singleton")
            .inc();
        assert_eq!(c.value(), before + 1);
    }

    #[test]
    fn missing_series_read_as_none_or_zero() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.counter("dsketch_test_none_total", ""), None);
        assert_eq!(snap.gauge("dsketch_test_none_total", ""), None);
        assert!(snap.histogram("dsketch_test_none_total", "").is_none());
        assert_eq!(snap.counter_sum("dsketch_test_none_total"), 0);
        assert_eq!(snap.histogram_total("dsketch_test_none_total").count(), 0);
    }
}
