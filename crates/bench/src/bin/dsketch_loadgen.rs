//! `dsketch-loadgen` — drive a running network front end over the wire and
//! report latency percentiles.
//!
//! The client side of the serving story: where `dsketch-serve --listen`
//! (or `dsketch-store serve --listen`) exposes the binary `NETQ`/`NETR`
//! protocol on a socket, this binary opens `--connections` concurrent
//! clients, replays a seeded [`QueryWorkload`] through them, and reports
//! throughput plus p50/p95/p99 per-request latency, writing the same
//! numbers as machine-readable JSON (default `BENCH_serve.json`).  Every
//! frame latency is also recorded into a client-side
//! [`dsketch_obs::Histogram`], and the JSON carries its log₂ bucket
//! counts (`latency_histogram`) so runs can be compared distribution-wise,
//! not just by three percentile points.
//!
//! ```text
//! # terminal 1: serve a sketch on a port
//! cargo run --release -p dsketch-bench --bin dsketch-serve -- \
//!     --scheme tz:3 --nodes 512 --listen 127.0.0.1:7421 --serve-seconds 60
//!
//! # terminal 2: measure it
//! cargo run --release -p dsketch-bench --bin dsketch-loadgen -- \
//!     --addr 127.0.0.1:7421 --queries 50000 --connections 4 --batch 16
//! ```
//!
//! Flags: `--addr HOST:PORT` (required), `--queries N` (total, default
//! 10000), `--connections N` (default 4), `--batch N` (pairs per frame,
//! default 16; `1` uses single-query frames), `--workload
//! uniform|hotspot|adversarial` (default uniform), `--seed N`,
//! `--timeout-ms N` (per-frame deadline, default 5000) and `--json PATH`
//! (default `BENCH_serve.json`; `-` disables the file).
//!
//! The node count is discovered from the server's stats document, so the
//! workload always matches whatever sketch the server is actually holding.
//! Exit status is nonzero on any transport error or any non-typed failure.

use dsketch_bench::workloads::QueryWorkload;
use dsketch_bench::{arg_parse_or_exit, arg_value, percentile_nanos};
use dsketch_obs::Histogram;
use dsketch_serve::NetClient;
use netgraph::NodeId;
use std::time::{Duration, Instant};

/// Latency samples and error tallies from one connection's replay.
#[derive(Default)]
struct ConnReport {
    latencies_nanos: Vec<u64>,
    answers: u64,
    typed_errors: u64,
    transport_error: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "addr").unwrap_or_else(|| {
        eprintln!(
            "usage: dsketch-loadgen --addr HOST:PORT [--queries N] [--connections N] \
             [--batch N] [--workload uniform|hotspot|adversarial] [--seed N] \
             [--timeout-ms N] [--json PATH|-]"
        );
        std::process::exit(2);
    });
    let queries: usize = arg_parse_or_exit(&args, "queries", 10_000);
    let connections: usize = arg_parse_or_exit(&args, "connections", 4).max(1);
    let batch: usize = arg_parse_or_exit(&args, "batch", 16).max(1);
    let seed: u64 = arg_parse_or_exit(&args, "seed", 42);
    let timeout = Duration::from_millis(arg_parse_or_exit(&args, "timeout-ms", 5_000u64).max(1));
    let json_path = arg_value(&args, "json").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let workload_text = arg_value(&args, "workload").unwrap_or_else(|| "uniform".to_string());
    let shape = QueryWorkload::parse(&workload_text).unwrap_or_else(|| {
        eprintln!(
            "--workload {workload_text}: unknown (known: {:?})",
            QueryWorkload::all().map(|w| w.name())
        );
        std::process::exit(2);
    });

    dsketch_faults::arm_from_env().unwrap_or_else(|e| {
        eprintln!("DSKETCH_FAULTS: {e}");
        std::process::exit(2);
    });

    // One probe connection: liveness, then the node count from the stats
    // document so the generated pairs match the served sketch.  Retried
    // with backoff so racing a just-spawned server (CI smoke) is not a
    // coin flip.
    let mut probe = NetClient::connect_with_retry(&addr, timeout, timeout).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = probe.ping() {
        eprintln!("ping failed: {e}");
        std::process::exit(1);
    }
    let stats = probe.stats_json().unwrap_or_else(|e| {
        eprintln!("stats request failed: {e}");
        std::process::exit(1);
    });
    let num_nodes = json_usize_field(&stats, "num_nodes").unwrap_or_else(|| {
        eprintln!("server stats carry no num_nodes field: {stats}");
        std::process::exit(1);
    });
    let scheme = json_string_field(&stats, "scheme").unwrap_or_else(|| "?".to_string());
    drop(probe);
    println!(
        "target {addr}: scheme {scheme}, {num_nodes} nodes — replaying {queries} {} \
         queries over {connections} connection(s), {batch} pairs/frame",
        shape.name()
    );

    let pairs = shape.generate(num_nodes, queries, seed);
    // One shared log₂-bucket histogram across every connection thread: the
    // same lock-free type the server records into, exercised client-side.
    let histogram = Histogram::new();
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for (conn, slice) in chunk_evenly(&pairs, connections).into_iter().enumerate() {
        let addr = addr.clone();
        let histogram = histogram.clone();
        handles.push(dsketch::parallel::spawn_named(
            &format!("dsketch-loadgen-{conn}"),
            move || run_connection(&addr, timeout, &slice, batch, &histogram),
        ));
    }
    let mut reports = Vec::with_capacity(connections);
    for handle in handles {
        // dsketch-lint: allow(no-unwrap-in-hot-path): CLI tool — a panicked driver thread should abort the run
        reports.push(handle.join().expect("loadgen connection panicked"));
    }
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::with_capacity(queries);
    let (mut answers, mut typed_errors) = (0u64, 0u64);
    let mut failed = false;
    for (conn, report) in reports.iter().enumerate() {
        if let Some(error) = &report.transport_error {
            eprintln!("connection {conn}: transport error: {error}");
            failed = true;
        }
        latencies.extend_from_slice(&report.latencies_nanos);
        answers += report.answers;
        typed_errors += report.typed_errors;
    }
    let p50 = percentile_nanos(&mut latencies, 50.0);
    let p95 = percentile_nanos(&mut latencies, 95.0);
    let p99 = percentile_nanos(&mut latencies, 99.0);
    let qps = answers as f64 / elapsed.as_secs_f64().max(1e-12);

    println!(
        "{answers} answers ({typed_errors} typed errors) in {:.1} ms — {qps:.0} queries/s",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "per-request latency over {} frames: p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
        latencies.len(),
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3
    );

    if json_path != "-" {
        let json = format!(
            "{{\n\"tool\": \"dsketch-loadgen\",\n\"addr\": \"{addr}\",\n\
             \"scheme\": \"{scheme}\",\n\"num_nodes\": {num_nodes},\n\
             \"workload\": \"{}\",\n\"queries\": {queries},\n\
             \"connections\": {connections},\n\"batch\": {batch},\n\
             \"answers\": {answers},\n\"typed_errors\": {typed_errors},\n\
             \"elapsed_ms\": {:.3},\n\"queries_per_sec\": {qps:.0},\n\
             \"frames\": {},\n\"latency_nanos\": {{\"p50\": {p50}, \"p95\": {p95}, \
             \"p99\": {p99}}},\n\"latency_histogram\": {}\n}}\n",
            shape.name(),
            elapsed.as_secs_f64() * 1e3,
            latencies.len(),
            histogram_json(&histogram.snapshot()),
        );
        match std::fs::write(&json_path, &json) {
            Ok(()) => println!("wrote machine-readable results to {json_path}"),
            Err(e) => {
                eprintln!("could not write {json_path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Replay one slice of the stream through one connection, timing each frame.
fn run_connection(
    addr: &str,
    timeout: Duration,
    pairs: &[(NodeId, NodeId)],
    batch: usize,
    histogram: &Histogram,
) -> ConnReport {
    let mut report = ConnReport::default();
    let mut client = match NetClient::connect_with_retry(addr, timeout, timeout) {
        Ok(client) => client,
        Err(e) => {
            report.transport_error = Some(format!("connect: {e}"));
            return report;
        }
    };
    for chunk in pairs.chunks(batch) {
        let frame_started = Instant::now();
        if batch == 1 {
            let (u, v) = chunk[0];
            match client.query(u, v) {
                Ok(Ok(_)) => report.answers += 1,
                Ok(Err(_)) => {
                    report.answers += 1;
                    report.typed_errors += 1;
                }
                Err(e) => {
                    report.transport_error = Some(format!("query: {e}"));
                    return report;
                }
            }
        } else {
            match client.query_batch(chunk) {
                Ok(results) => {
                    report.answers += results.len() as u64;
                    report.typed_errors += results.iter().filter(|r| r.is_err()).count() as u64;
                }
                Err(e) => {
                    report.transport_error = Some(format!("batch: {e}"));
                    return report;
                }
            }
        }
        let frame_nanos = u64::try_from(frame_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        histogram.record(frame_nanos);
        report.latencies_nanos.push(frame_nanos);
    }
    report
}

/// Render one histogram snapshot as a JSON object: total count (derived
/// from the buckets, so it always matches their sum), sum and max in
/// nanoseconds, then the non-empty log₂ buckets with their inclusive
/// upper bounds (the last bucket's `u64::MAX` bound is rendered as -1,
/// since it means "unbounded", and JSON has no u64).
fn histogram_json(snap: &dsketch_obs::HistogramSnapshot) -> String {
    let buckets: Vec<String> = snap
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(index, &count)| {
            let bound = dsketch_obs::bucket_upper_bound(index);
            let le = if bound == u64::MAX {
                "-1".to_string()
            } else {
                bound.to_string()
            };
            format!("{{\"le_nanos\": {le}, \"count\": {count}}}")
        })
        .collect();
    format!(
        "{{\"count\": {}, \"sum_nanos\": {}, \"max_nanos\": {}, \"buckets\": [{}]}}",
        snap.count(),
        snap.sum,
        snap.max,
        buckets.join(", ")
    )
}

/// Split `pairs` into `parts` contiguous slices whose lengths differ by at
/// most one (empty slices when there are more connections than pairs).
fn chunk_evenly(pairs: &[(NodeId, NodeId)], parts: usize) -> Vec<Vec<(NodeId, NodeId)>> {
    let base = pairs.len() / parts;
    let extra = pairs.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0;
    for part in 0..parts {
        let len = base + usize::from(part < extra);
        out.push(pairs[offset..offset + len].to_vec());
        offset += len;
    }
    out
}

/// Pull `"name": 123` out of a flat JSON document (the stats format is
/// hand-written by the server, so a hand parser on this side is symmetric
/// and keeps the binary dependency-free).
fn json_usize_field(json: &str, name: &str) -> Option<usize> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let digits: String = json[start..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull `"name": "text"` out of a flat JSON document.
fn json_string_field(json: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let rest = json[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}
