//! Experiment harness entry point.
//!
//! ```text
//! cargo run --release -p dsketch-bench --bin experiments -- all
//! cargo run --release -p dsketch-bench --bin experiments -- e1 e3 --quick
//! cargo run --release -p dsketch-bench --bin experiments -- all --markdown
//! ```

use dsketch_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let mut requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if requested.is_empty() || requested.iter().any(|a| a == "all") {
        requested = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }

    println!(
        "# Distance-sketch experiment harness ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    for id in &requested {
        let started = std::time::Instant::now();
        match run_experiment(id, quick) {
            Some(result) => {
                if markdown {
                    println!("{}", result.to_markdown());
                } else {
                    println!("== {} — {} ==", result.id.to_uppercase(), result.title);
                    println!("paper claim: {}\n", result.claim);
                    println!("{}", result.table.to_text());
                }
                println!(
                    "[{} finished in {:.1}s]\n",
                    result.id,
                    started.elapsed().as_secs_f64()
                );
            }
            None => eprintln!("unknown experiment id '{id}' (known: {EXPERIMENT_IDS:?})"),
        }
    }
}
