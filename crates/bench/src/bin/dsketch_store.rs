//! `dsketch-store` — the sketch artifact lifecycle as a CLI:
//! **build → save → inspect → load → serve**.
//!
//! ```text
//! # pay the construction once, keep the artifact (parallel engine,
//! # all cores; --threads N pins the worker count — the snapshot bytes
//! # are bit-identical for every N)
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     build --scheme tz:3 --nodes 512 --threads 8 --out g.dsk
//!
//! # build from a persisted edge list instead of a generated topology
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     build --scheme cdg:0.2,2 --edges graph.txt --out g.dsk
//!
//! # measure the CONGEST round/message cost instead (the paper's currency)
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     build --scheme tz:3 --nodes 512 --engine congest --out g.dsk
//!
//! # what is in the file? (also verifies every checksum)
//! cargo run --release -p dsketch-bench --bin dsketch-store -- inspect --snapshot g.dsk
//!
//! # deep semantic verification beyond the checksums (bunch ordering,
//! # pivot-row contracts, hierarchy consistency — see `dsketch-analyze`)
//! cargo run --release -p dsketch-bench --bin dsketch-store -- verify --snapshot g.dsk
//!
//! # answer one query from the snapshot alone
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     query --snapshot g.dsk --u 0 --v 41
//!
//! # cold-start a sharded server from the snapshot and replay traffic
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     serve --snapshot g.dsk --queries 100000 --shards 4
//!
//! # keep g.dsk fresh against an evolving edge list, hot-swapping a live
//! # server whenever the graph's fingerprint moves
//! cargo run --release -p dsketch-bench --bin dsketch-store -- \
//!     watch --graph graph.txt --scheme tz:3 --snapshot g.dsk \
//!     --server 127.0.0.1:7421 --interval-ms 2000
//! ```
//!
//! `build` flags: `--scheme`, `--out`, and either `--edges <path>` (load a
//! `netgraph::io` edge list) or `--topology erdos-renyi|grid|ring|power-law`
//! with `--nodes N`; plus `--seed N`, `--threads N` (parallel engine worker
//! count, 0 = all cores) and `--engine parallel|congest` (default
//! `parallel`).  `serve` flags: `--snapshot`, `--queries`, `--shards`,
//! `--batch`, `--cache`, `--workload`, `--seed`, `--frozen true|false`;
//! with `--listen HOST:PORT` (plus `--serve-seconds N`, `--net-workers N`)
//! the cold-started server is exposed over TCP — binary protocol and HTTP
//! on one port — instead of replaying a local workload.
//! `query` and `serve` both default to `--frozen true`: the snapshot's
//! label bytes are materialized straight into the flat CSR layout
//! (`dsketch::flat::FlatSketchSet`) without rebuilding any `BTreeMap`;
//! `--frozen false` loads the map-backed sketches instead (the two answer
//! identically — CI diffs them).
//! `watch` polls `--graph` every `--interval-ms` (default 2000),
//! rebuilds `--snapshot` with the parallel engine whenever the graph's
//! fingerprint changes, and — when `--server HOST:PORT` names a live
//! `dsketch-serve`/`dsketch-store serve --listen` instance — sends it a
//! binary-protocol swap request so the fresh snapshot goes live without a
//! restart.  `--iterations N` bounds the loop (0 = run forever).

use dsketch::prelude::*;
use dsketch_bench::workloads::{QueryWorkload, Workload, WorkloadSpec};
use dsketch_bench::{arg_engine, arg_frozen, arg_parse_or_exit, arg_value, serve_network, Table};
use dsketch_serve::{ServeConfig, SketchServer};
use dsketch_store::{
    build_and_save, build_and_save_from_edge_list, inspect_snapshot, load_frozen_oracle,
    load_oracle,
};
use std::sync::Arc;
use std::time::Instant;

fn required(args: &[String], name: &str) -> String {
    arg_value(args, name).unwrap_or_else(|| {
        eprintln!("missing required flag --{name}");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: dsketch-store <build|inspect|query|serve|verify|watch> [flags]\n\
         \n\
         build   --scheme SPEC --out FILE [--edges FILE | --topology T --nodes N] [--seed N]\n\
         \u{20}        [--threads N] [--engine parallel|congest]\n\
         inspect --snapshot FILE\n\
         verify  --snapshot FILE\n\
         query   --snapshot FILE --u NODE --v NODE [--frozen true|false]\n\
         serve   --snapshot FILE [--queries N] [--shards N] [--batch N] [--cache N]\n\
         \u{20}        [--workload uniform|hotspot|adversarial] [--seed N] [--frozen true|false]\n\
         \u{20}        [--listen HOST:PORT [--serve-seconds N] [--net-workers N]]\n\
         watch   --graph EDGE_LIST --scheme SPEC --snapshot FILE [--server HOST:PORT]\n\
         \u{20}        [--interval-ms N] [--iterations N] [--seed N] [--threads N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Err(e) = dsketch_faults::arm_from_env() {
        eprintln!("DSKETCH_FAULTS: {e}");
        std::process::exit(2);
    }
    match args.get(1).map(String::as_str) {
        Some("build") => cmd_build(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("verify") => cmd_verify(&args),
        Some("query") => cmd_query(&args),
        Some("serve") => cmd_serve(&args),
        Some("watch") => cmd_watch(&args),
        _ => usage(),
    }
}

/// The rebuild-and-swap loop: poll an edge list for fingerprint changes,
/// rebuild the snapshot with the parallel engine when it moves, and (with
/// `--server`) tell a live server to hot-swap the fresh file in.
fn cmd_watch(args: &[String]) {
    let graph_path = required(args, "graph");
    let snapshot_path = required(args, "snapshot");
    let scheme_text = required(args, "scheme");
    let seed: u64 = arg_parse_or_exit(args, "seed", 42);
    let threads: usize = arg_parse_or_exit(args, "threads", 0);
    let interval_ms: u64 = arg_parse_or_exit(args, "interval-ms", 2_000);
    let iterations: u64 = arg_parse_or_exit(args, "iterations", 0);
    let server = arg_value(args, "server");
    let spec = SchemeSpec::parse(&scheme_text).unwrap_or_else(|e| {
        eprintln!("--scheme {scheme_text}: {e}");
        std::process::exit(2);
    });
    let config = SchemeConfig::default()
        .with_seed(seed)
        .with_parallel_build()
        .with_threads(threads);

    let mut core = dsketch_store::WatchCore::new(&graph_path, &snapshot_path, spec, config);
    if core.prime_from_snapshot() {
        println!(
            "primed from {snapshot_path}: fingerprint {}",
            core.last_fingerprint()
                .expect("primed watcher has a fingerprint")
        );
    } else {
        println!("{snapshot_path} missing or stale — first tick will rebuild");
    }

    let mut tick = 0u64;
    loop {
        tick += 1;
        match core.check_once() {
            Ok(dsketch_store::WatchOutcome::Unchanged { fingerprint }) => {
                println!("[tick {tick}] unchanged ({fingerprint})");
            }
            Ok(dsketch_store::WatchOutcome::Rebuilt {
                fingerprint,
                nodes,
                bytes,
            }) => {
                println!(
                    "[tick {tick}] graph moved → rebuilt {spec} for {nodes} nodes, \
                     {bytes} bytes saved ({fingerprint})"
                );
                if let Some(addr) = &server {
                    swap_live_server(addr, &snapshot_path, tick);
                }
            }
            Err(e) => {
                // Transient failures (edge list mid-rewrite, disk hiccup)
                // must not kill the loop; state is unchanged, so the next
                // tick simply retries — after a backoff that grows with
                // the failure streak.
                eprintln!(
                    "[tick {tick}] watch error: {e} — retrying (streak {})",
                    core.consecutive_failures()
                );
            }
        }
        if iterations != 0 && tick >= iterations {
            return;
        }
        let base = std::time::Duration::from_millis(interval_ms);
        std::thread::sleep(core.next_delay(base, base.saturating_mul(32)));
    }
}

/// Tell the live server at `addr` to hot-swap in the snapshot at `path`.
fn swap_live_server(addr: &str, path: &str, tick: u64) {
    match dsketch_serve::NetClient::connect_with_retry(
        addr,
        std::time::Duration::from_secs(10),
        std::time::Duration::from_secs(10),
    ) {
        Ok(mut client) => match client.swap(path) {
            Ok(generation) => {
                println!("[tick {tick}] live server {addr} swapped to generation {generation}");
            }
            Err(e) => eprintln!("[tick {tick}] swap refused by {addr}: {e}"),
        },
        Err(e) => eprintln!("[tick {tick}] cannot reach {addr}: {e}"),
    }
}

fn cmd_build(args: &[String]) {
    let scheme_text = required(args, "scheme");
    let out = required(args, "out");
    let seed: u64 = arg_parse_or_exit(args, "seed", 42);
    let threads: usize = arg_parse_or_exit(args, "threads", 0);
    let engine = arg_engine(args);
    let spec = SchemeSpec::parse(&scheme_text).unwrap_or_else(|e| {
        eprintln!("--scheme {scheme_text}: {e}");
        std::process::exit(2);
    });
    let config = SchemeConfig::default()
        .with_seed(seed)
        .with_engine(engine)
        .with_threads(threads);

    let build_started = Instant::now();
    let (graph_label, graph, contents, bytes) = if let Some(edges) = arg_value(args, "edges") {
        println!("loading edge list {edges} …");
        let (graph, contents, bytes) = build_and_save_from_edge_list(&edges, spec, &config, &out)
            .unwrap_or_else(|e| {
                eprintln!("build failed: {e}");
                std::process::exit(1);
            });
        (edges, graph, contents, bytes)
    } else {
        let n: usize = arg_parse_or_exit(args, "nodes", 512);
        let topology_text =
            arg_value(args, "topology").unwrap_or_else(|| "erdos-renyi".to_string());
        let topology = Workload::all()
            .into_iter()
            .find(|w| w.name() == topology_text)
            .unwrap_or_else(|| {
                eprintln!(
                    "--topology {topology_text}: unknown (known: {:?})",
                    Workload::all().map(|w| w.name())
                );
                std::process::exit(2);
            });
        let graph_spec = WorkloadSpec::new(topology, n, seed);
        let graph = graph_spec.build();
        let (contents, bytes) = build_and_save(&graph, spec, &config, &out).unwrap_or_else(|e| {
            eprintln!("build failed: {e}");
            std::process::exit(1);
        });
        (graph_spec.label(), graph, contents, bytes)
    };
    let elapsed = build_started.elapsed();

    println!(
        "graph: {graph_label} — n = {}, |E| = {}, fingerprint {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.fingerprint()
    );
    match engine {
        BuildEngine::Parallel => println!(
            "built {spec} with the parallel engine ({} worker threads) in {:.2}s",
            dsketch::parallel::resolve_threads(threads),
            elapsed.as_secs_f64(),
        ),
        BuildEngine::Congest => {
            let stats = contents.build_stats.as_ref().expect("build records stats");
            println!(
                "built {spec} in {:.2}s: {} rounds, {} messages, {} words on the wire",
                elapsed.as_secs_f64(),
                stats.rounds,
                stats.messages,
                stats.words
            );
        }
    }
    println!(
        "saved {out}: {bytes} bytes for {} nodes (≤ {} words/node, avg {:.1})",
        contents.sketches.num_nodes(),
        contents.sketches.as_oracle().max_words(),
        contents.sketches.as_oracle().avg_words(),
    );
}

fn cmd_inspect(args: &[String]) {
    let path = required(args, "snapshot");
    let summary = inspect_snapshot(&path).unwrap_or_else(|e| {
        eprintln!("inspect failed: {e}");
        std::process::exit(1);
    });
    println!("== {path} ==");
    println!("format:      DSK1 v{}", summary.version);
    println!("scheme:      {}", summary.spec);
    println!("graph:       {}", summary.fingerprint);
    println!(
        "labels:      {} nodes, max {} words, avg {:.1} words",
        summary.num_nodes, summary.max_words, summary.avg_words
    );
    match &summary.build_stats {
        Some(stats) if stats.rounds > 0 => println!(
            "built in:    {} rounds, {} messages, {} words on the wire",
            stats.rounds, stats.messages, stats.words
        ),
        Some(_) => println!("built in:    parallel engine (no simulated CONGEST rounds)"),
        None => println!("built in:    (not recorded)"),
    }
    println!("total bytes: {}", summary.total_bytes);
    let mut table = Table::new(&["section", "offset", "bytes", "crc32", "decodes to"]);
    for (entry, entities) in summary.sections.iter().zip(&summary.section_entities) {
        table.push(vec![
            entry.id.to_string(),
            entry.offset.to_string(),
            entry.len.to_string(),
            format!("{:08x}", entry.crc),
            entities.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("all checksums verified ✓");
}

fn cmd_verify(args: &[String]) {
    let path = required(args, "snapshot");
    match dsketch_analysis::verify_snapshot_file(std::path::Path::new(&path)) {
        Ok(report) => {
            println!(
                "{path}: ok — {} snapshot, {} nodes, {} layer(s), {} bunch entries, {} pivots",
                report.spec.name(),
                report.nodes,
                report.layers,
                report.bunch_entries,
                report.pivots_present,
            );
            for section in &report.sections {
                println!(
                    "  section {}: {} bytes at offset {}, crc ok",
                    section.id, section.len, section.file_offset
                );
            }
        }
        Err(e) => {
            eprintln!("{path}: FAILED [{}] {e}", e.kind());
            std::process::exit(1);
        }
    }
}

fn cmd_query(args: &[String]) {
    let node = |name| {
        required(args, name).parse::<u32>().unwrap_or_else(|_| {
            eprintln!("--{name} must be a node id (a non-negative integer)");
            std::process::exit(2);
        })
    };
    let path = required(args, "snapshot");
    let u = node("u");
    let v = node("v");
    let oracle = if arg_frozen(args) {
        load_frozen_oracle(&path)
    } else {
        load_oracle(&path)
    }
    .unwrap_or_else(|e| {
        eprintln!("load failed: {e}");
        std::process::exit(1);
    });
    match oracle.estimate(netgraph::NodeId(u), netgraph::NodeId(v)) {
        Ok(estimate) => println!(
            "{} estimate d(v{u}, v{v}) = {estimate}",
            oracle.scheme_name()
        ),
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_serve(args: &[String]) {
    let path = required(args, "snapshot");
    let queries: usize = arg_parse_or_exit(args, "queries", 100_000);
    let shards: usize = arg_parse_or_exit(args, "shards", 4);
    let batch: usize = arg_parse_or_exit(args, "batch", 256);
    let cache: usize = arg_parse_or_exit(args, "cache", 4096);
    let seed: u64 = arg_parse_or_exit(args, "seed", 42);
    let workload_text = arg_value(args, "workload").unwrap_or_else(|| "uniform".to_string());
    let shape = QueryWorkload::parse(&workload_text).unwrap_or_else(|| {
        eprintln!(
            "--workload {workload_text}: unknown (known: {:?})",
            QueryWorkload::all().map(|w| w.name())
        );
        std::process::exit(2);
    });

    let frozen = arg_frozen(args);
    let trace_sample: u64 = arg_parse_or_exit(args, "trace-sample", 0);
    let load_started = Instant::now();
    let config = ServeConfig::default()
        .with_shards(shards)
        .with_cache_capacity(cache)
        .with_trace_sample(trace_sample);
    // The frozen path materializes the snapshot's label bytes straight into
    // the flat CSR layout — no BTreeMap is ever constructed between disk
    // and the serving shards (SketchServer::from_snapshot is this same
    // sequence; the oracle is loaded here so the node count is at hand for
    // workload generation).
    let oracle = if frozen {
        load_frozen_oracle(&path)
    } else {
        dsketch_store::load_snapshot(&path).map(|contents| contents.into_oracle())
    }
    .unwrap_or_else(|e| {
        eprintln!("cold start failed: {e}");
        std::process::exit(1);
    });
    let num_nodes = oracle.num_nodes();

    // `--listen` turns the cold-started server into a network service
    // instead of a local replay: the paper's standby-server story end to
    // end (snapshot on disk → serving sockets, no construction rounds).
    if let Some(listen) = arg_value(args, "listen") {
        let serve_seconds: u64 = arg_parse_or_exit(args, "serve-seconds", 0);
        let net_workers: usize = arg_parse_or_exit(args, "net-workers", 4);
        let log_json = args.iter().any(|a| a == "--log-json");
        // The snapshot header names what is being served; read it without
        // paying a second sketch decode.  The typed (spec, fingerprint)
        // pair also arms the swap compatibility gates.
        let origin = dsketch_store::peek_snapshot_meta(&path).ok();
        let meta = match &origin {
            Some((spec, fingerprint)) => {
                dsketch_serve::ServeMeta::new(spec.to_string(), fingerprint.to_string())
            }
            None => dsketch_serve::ServeMeta::default(),
        };
        println!(
            "cold-started from {path} in {:.1} ms; exposing it on the network",
            load_started.elapsed().as_secs_f64() * 1e3
        );
        serve_network(
            Arc::from(oracle),
            config,
            dsketch_bench::NetServeOptions {
                net_workers,
                listen: &listen,
                serve_seconds,
                log_json,
            },
            meta,
            origin,
        );
    }

    let server = SketchServer::start(Arc::from(oracle), config).unwrap_or_else(|e| {
        eprintln!("cold start failed: {e}");
        std::process::exit(1);
    });
    println!(
        "cold-started {shards}-shard server from {path} in {:.1} ms \
         (no construction rounds; {} labels)",
        load_started.elapsed().as_secs_f64() * 1e3,
        if frozen {
            "frozen flat CSR"
        } else {
            "BTreeMap-backed"
        }
    );

    let pairs = shape.generate(num_nodes, queries, seed);
    let client = server.client();
    let replay_started = Instant::now();
    let mut nonzero = 0usize;
    for chunk in pairs.chunks(batch.max(1)) {
        for result in client.query_batch(chunk) {
            if matches!(result, Ok(d) if d > 0) {
                nonzero += 1;
            }
        }
    }
    let elapsed = replay_started.elapsed();
    drop(client);
    let stats = server.shutdown();
    println!(
        "[{}] replayed {} queries in {:.1} ms — {:.0} queries/s, {:.1}% cache hits, {} errors",
        shape.name(),
        stats.totals.queries,
        elapsed.as_secs_f64() * 1e3,
        stats.totals.queries as f64 / elapsed.as_secs_f64(),
        100.0 * stats.totals.hit_rate(),
        stats.totals.errors,
    );
    println!("{nonzero} / {queries} answers were nonzero distances");
    if nonzero == 0 {
        eprintln!("snapshot served no usable answers — refusing to call this a success");
        std::process::exit(1);
    }
}
