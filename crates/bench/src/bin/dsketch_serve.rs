//! `dsketch-serve` — build a sketch, start the sharded query server, replay
//! synthetic traffic, report throughput and cache statistics.
//!
//! The end-to-end demonstration of the paper's serving economics: pay the
//! CONGEST construction once, then serve query traffic from labels alone.
//!
//! ```text
//! cargo run --release -p dsketch-bench --bin dsketch-serve -- \
//!     --scheme tz:3 --nodes 512 --queries 100000 --shards 4
//!
//! # a single workload shape, a different scheme and topology
//! cargo run --release -p dsketch-bench --bin dsketch-serve -- \
//!     --scheme cdg:0.2,2 --topology grid --workload hotspot --cache 1024
//! ```
//!
//! Flags (all optional): `--scheme tz:3|3stretch:ε|cdg:ε,k|degrading[:k]`,
//! `--topology erdos-renyi|grid|ring|power-law`, `--nodes N`,
//! `--queries N`, `--shards N`, `--batch N`, `--cache N` (0 disables),
//! `--queue N`, `--workload uniform|hotspot|adversarial|all`, `--seed N`,
//! `--threads N` (parallel-engine worker count, 0 = all cores),
//! `--engine parallel|congest` (default `parallel`; `congest` runs the
//! paper-faithful simulation and reports its round/message cost) and
//! `--frozen true|false` (default `true`: serve from the flat CSR label
//! layout; `false` serves the `BTreeMap`-backed sketches, for comparison).
//!
//! With `--listen HOST:PORT` the binary serves the sketch over TCP instead
//! of replaying local traffic: the length-prefixed binary protocol (drive
//! it with `dsketch-loadgen`) and a minimal HTTP endpoint
//! (`GET /distance?u=..&v=..`, `GET /stats`, `GET /metrics` for the
//! Prometheus text exposition, `GET /trace?n=K` for recent sampled events —
//! `curl` works) share the one port.  `--serve-seconds N` stops the server
//! after a graceful drain (default 0: serve until killed); `--net-workers N`
//! sets the concurrent connection bound (default 4); `--trace-sample N`
//! samples every N-th query into the trace ring (default 0: off);
//! `--log-json` mirrors sampled events to stdout as JSON lines.

use dsketch::prelude::*;
use dsketch_bench::workloads::{QueryWorkload, Workload, WorkloadSpec};
use dsketch_bench::{arg_engine, arg_frozen, arg_parse_or_exit, arg_value, serve_network, Table};
use dsketch_serve::{ServeConfig, SketchServer};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Err(e) = dsketch_faults::arm_from_env() {
        eprintln!("DSKETCH_FAULTS: {e}");
        std::process::exit(2);
    }
    let scheme_text = arg_value(&args, "scheme").unwrap_or_else(|| "tz:3".to_string());
    let topology_text = arg_value(&args, "topology").unwrap_or_else(|| "erdos-renyi".to_string());
    let workload_text = arg_value(&args, "workload").unwrap_or_else(|| "all".to_string());
    let n: usize = arg_parse_or_exit(&args, "nodes", 512);
    let queries: usize = arg_parse_or_exit(&args, "queries", 100_000);
    let shards: usize = arg_parse_or_exit(&args, "shards", 4);
    let batch: usize = arg_parse_or_exit(&args, "batch", 256);
    let cache: usize = arg_parse_or_exit(&args, "cache", 4096);
    let queue: usize = arg_parse_or_exit(&args, "queue", 64);
    let seed: u64 = arg_parse_or_exit(&args, "seed", 42);
    let threads: usize = arg_parse_or_exit(&args, "threads", 0);
    let engine = arg_engine(&args);
    let frozen = arg_frozen(&args);

    let spec = SchemeSpec::parse(&scheme_text).unwrap_or_else(|e| {
        eprintln!("--scheme {scheme_text}: {e}");
        std::process::exit(2);
    });
    let topology = Workload::all()
        .into_iter()
        .find(|w| w.name() == topology_text)
        .unwrap_or_else(|| {
            eprintln!(
                "--topology {topology_text}: unknown (known: {:?})",
                Workload::all().map(|w| w.name())
            );
            std::process::exit(2);
        });
    let shapes: Vec<QueryWorkload> = if workload_text == "all" {
        QueryWorkload::all().to_vec()
    } else {
        match QueryWorkload::parse(&workload_text) {
            Some(shape) => vec![shape],
            None => {
                eprintln!(
                    "--workload {workload_text}: unknown (known: all, {:?})",
                    QueryWorkload::all().map(|w| w.name())
                );
                std::process::exit(2);
            }
        }
    };

    println!("== dsketch-serve: sharded query serving over distance sketches ==\n");
    let graph_spec = WorkloadSpec::new(topology, n, seed);
    let graph = graph_spec.build();
    println!(
        "graph: {} — n = {}, |E| = {}",
        graph_spec.label(),
        graph.num_nodes(),
        graph.num_edges()
    );

    match engine {
        BuildEngine::Parallel => print!(
            "building {spec} sketches with the parallel engine ({} worker threads)… ",
            dsketch::parallel::resolve_threads(threads)
        ),
        BuildEngine::Congest => print!("building {spec} sketches in the CONGEST simulator… "),
    }
    let build_started = Instant::now();
    let outcome = SketchBuilder::new(spec)
        .seed(seed)
        .engine(engine)
        .threads(threads)
        .frozen(frozen)
        .build(&graph)
        .unwrap_or_else(|e| {
            eprintln!("construction failed: {e}");
            std::process::exit(1);
        });
    println!("done in {:.1}s", build_started.elapsed().as_secs_f64());
    println!(
        "query layout: {}",
        if frozen {
            "frozen flat CSR labels (--frozen false serves the BTreeMap path)"
        } else {
            "BTreeMap-backed labels (--frozen true serves the flat CSR path)"
        }
    );
    match engine {
        BuildEngine::Parallel => println!(
            "construction: labels ≤ {} words/node (avg {:.1}); re-run with --engine congest \
             for the paper's round/message accounting",
            outcome.sketches.max_words(),
            outcome.sketches.avg_words()
        ),
        BuildEngine::Congest => println!(
            "construction: {} rounds, {} messages; labels ≤ {} words/node (avg {:.1})",
            outcome.stats.rounds,
            outcome.stats.messages,
            outcome.sketches.max_words(),
            outcome.sketches.avg_words()
        ),
    }
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);

    let trace_sample: u64 = arg_parse_or_exit(&args, "trace-sample", 0);
    let config = ServeConfig {
        shards,
        queue_depth: queue,
        cache_capacity: cache,
        trace_sample,
    };

    if let Some(listen) = arg_value(&args, "listen") {
        let serve_seconds: u64 = arg_parse_or_exit(&args, "serve-seconds", 0);
        let net_workers: usize = arg_parse_or_exit(&args, "net-workers", 4);
        let log_json = args.iter().any(|a| a == "--log-json");
        let meta = dsketch_serve::ServeMeta::new(spec.to_string(), graph.fingerprint().to_string());
        serve_network(
            oracle,
            config,
            dsketch_bench::NetServeOptions {
                net_workers,
                listen: &listen,
                serve_seconds,
                log_json,
            },
            meta,
            Some((spec, graph.fingerprint())),
        );
    }
    println!(
        "server: {} shards, queue depth {}, per-shard LRU cache {} entries\n",
        config.shards, config.queue_depth, config.cache_capacity
    );

    let mut table = Table::new(&[
        "workload",
        "queries",
        "shards",
        "elapsed ms",
        "queries/s",
        "hit rate",
        "errors",
        "avg µs/query",
        "max µs",
        "imbalance",
    ]);
    for shape in shapes {
        let pairs = shape.generate(graph.num_nodes(), queries, seed);

        // Spot-check the serving path against direct oracle calls on a
        // throwaway server, so the measured server's caches and counters
        // stay untouched by the verification traffic.
        {
            let checker = SketchServer::start(Arc::clone(&oracle), config).unwrap_or_else(|e| {
                eprintln!("server start failed: {e}");
                std::process::exit(1);
            });
            let client = checker.client();
            for &(u, v) in pairs.iter().take(32) {
                assert_eq!(client.query(u, v), oracle.estimate(u, v), "shard mismatch");
            }
        }

        // One fresh server per shape so cache statistics are per-workload.
        let server = SketchServer::start(Arc::clone(&oracle), config).unwrap_or_else(|e| {
            eprintln!("server start failed: {e}");
            std::process::exit(1);
        });
        let client = server.client();
        let replay_started = Instant::now();
        let mut checksum = 0u64;
        for chunk in pairs.chunks(batch.max(1)) {
            for result in client.query_batch(chunk) {
                checksum = checksum.wrapping_add(result.unwrap_or(u64::MAX));
            }
        }
        let elapsed = replay_started.elapsed();
        drop(client);
        let stats = server.shutdown();
        table.push(vec![
            shape.name().to_string(),
            stats.totals.queries.to_string(),
            stats.num_shards().to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", stats.totals.queries as f64 / elapsed.as_secs_f64()),
            format!("{:.1}%", 100.0 * stats.totals.hit_rate()),
            stats.totals.errors.to_string(),
            format!("{:.2}", stats.totals.avg_latency_nanos() / 1e3),
            format!("{:.1}", stats.totals.max_latency_nanos as f64 / 1e3),
            format!("{:.2}", stats.load_imbalance()),
        ]);
        println!("[{}] {} (checksum {checksum:x})", shape.name(), stats);
    }
    println!("\nreplay summary ({batch}-query batches):");
    println!("{}", table.to_text());
}
