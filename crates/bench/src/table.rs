//! Minimal table rendering for experiment output (markdown-compatible, so
//! rows can be pasted directly into EXPERIMENTS.md).

/// A simple header + rows table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(4)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new(&["name", "v"]);
        t.push(vec!["longer-name".into(), "7".into()]);
        t.push(vec!["x".into(), "12345".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines padded to same column start for second column.
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("longer-name"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(&["only"]);
        assert!(t.is_empty());
        assert!(t.to_markdown().contains("| only |"));
    }
}
