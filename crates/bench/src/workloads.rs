//! Workload definitions shared by all experiments.
//!
//! Every experiment row records the workload it ran on; a [`WorkloadSpec`]
//! is a named, seeded recipe so that EXPERIMENTS.md rows are reproducible
//! verbatim.

use netgraph::diameter::{diameters, DiameterReport};
use netgraph::generators::{erdos_renyi, grid, preferential_attachment, ring, GeneratorConfig};
use netgraph::Graph;

/// The topology family of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Erdős–Rényi with average degree ≈ 8 and weights 1..100 (low S).
    ErdosRenyi,
    /// Square grid with weights 1..10 (S ≈ 2√n).
    Grid,
    /// Unweighted ring (S = n/2, the adversarial case).
    Ring,
    /// Preferential attachment, m = 3, weights 1..100 (power-law degrees).
    PowerLaw,
}

impl Workload {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ErdosRenyi => "erdos-renyi",
            Workload::Grid => "grid",
            Workload::Ring => "ring",
            Workload::PowerLaw => "power-law",
        }
    }

    /// All families, in the order they appear in tables.
    pub fn all() -> [Workload; 4] {
        [
            Workload::ErdosRenyi,
            Workload::Grid,
            Workload::Ring,
            Workload::PowerLaw,
        ]
    }
}

/// A named, seeded workload recipe.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Topology family.
    pub family: Workload,
    /// Target node count (grids round to the nearest square).
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Create a spec.
    pub fn new(family: Workload, n: usize, seed: u64) -> Self {
        WorkloadSpec { family, n, seed }
    }

    /// Generate the graph.
    pub fn build(&self) -> Graph {
        match self.family {
            Workload::ErdosRenyi => erdos_renyi(
                self.n,
                8.0 / self.n as f64,
                GeneratorConfig::uniform(self.seed, 1, 100),
            ),
            Workload::Grid => {
                let side = (self.n as f64).sqrt().round() as usize;
                grid(side, side, GeneratorConfig::uniform(self.seed, 1, 10))
            }
            Workload::Ring => ring(self.n, GeneratorConfig::unit(self.seed)),
            Workload::PowerLaw => {
                preferential_attachment(self.n, 3, GeneratorConfig::uniform(self.seed, 1, 100))
            }
        }
    }

    /// Generate the graph and measure its diameters (exact for `n ≤ 512`,
    /// estimated above that to keep the harness fast).
    pub fn build_with_diameters(&self) -> (Graph, DiameterReport) {
        let graph = self.build();
        let report = if graph.num_nodes() <= 512 {
            diameters(&graph)
        } else {
            netgraph::diameter::estimate_diameters(&graph, 8, self.seed)
        };
        (graph, report)
    }

    /// A human-readable label like `grid(n=256)`.
    pub fn label(&self) -> String {
        format!("{}(n={})", self.family.name(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::is_connected;

    #[test]
    fn all_families_build_connected_graphs() {
        for family in Workload::all() {
            let spec = WorkloadSpec::new(family, 100, 7);
            let g = spec.build();
            assert!(is_connected(&g), "{} should be connected", spec.label());
            assert!(g.num_nodes() >= 95, "{}", spec.label());
        }
    }

    #[test]
    fn ring_has_larger_sp_diameter_than_er() {
        let (_, ring_d) = WorkloadSpec::new(Workload::Ring, 128, 3).build_with_diameters();
        let (_, er_d) = WorkloadSpec::new(Workload::ErdosRenyi, 128, 3).build_with_diameters();
        assert!(ring_d.shortest_path_diameter > er_d.shortest_path_diameter);
    }

    #[test]
    fn labels_and_names() {
        assert_eq!(Workload::Grid.name(), "grid");
        assert_eq!(
            WorkloadSpec::new(Workload::Ring, 64, 1).label(),
            "ring(n=64)"
        );
        assert_eq!(Workload::all().len(), 4);
    }

    #[test]
    fn specs_are_reproducible() {
        let a = WorkloadSpec::new(Workload::PowerLaw, 80, 5).build();
        let b = WorkloadSpec::new(Workload::PowerLaw, 80, 5).build();
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }
}
