//! Workload definitions shared by all experiments.
//!
//! Two kinds of workload live here.  A [`WorkloadSpec`] is a named, seeded
//! *topology* recipe — every experiment row records the graph it ran on, so
//! EXPERIMENTS.md rows are reproducible verbatim.  A [`QueryWorkload`] is a
//! named, seeded *traffic* recipe — a stream of `(u, v)` query pairs replayed
//! against a built oracle by the serving experiments (`e12`), the
//! `query_throughput` bench and the `dsketch-serve` binary.

use netgraph::diameter::{diameters, DiameterReport};
use netgraph::generators::{erdos_renyi, grid, preferential_attachment, ring, GeneratorConfig};
use netgraph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The topology family of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Erdős–Rényi with average degree ≈ 8 and weights 1..100 (low S).
    ErdosRenyi,
    /// Square grid with weights 1..10 (S ≈ 2√n).
    Grid,
    /// Unweighted ring (S = n/2, the adversarial case).
    Ring,
    /// Preferential attachment, m = 3, weights 1..100 (power-law degrees).
    PowerLaw,
}

impl Workload {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ErdosRenyi => "erdos-renyi",
            Workload::Grid => "grid",
            Workload::Ring => "ring",
            Workload::PowerLaw => "power-law",
        }
    }

    /// All families, in the order they appear in tables.
    pub fn all() -> [Workload; 4] {
        [
            Workload::ErdosRenyi,
            Workload::Grid,
            Workload::Ring,
            Workload::PowerLaw,
        ]
    }
}

/// A named, seeded workload recipe.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Topology family.
    pub family: Workload,
    /// Target node count (grids round to the nearest square).
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Create a spec.
    pub fn new(family: Workload, n: usize, seed: u64) -> Self {
        WorkloadSpec { family, n, seed }
    }

    /// Generate the graph.  Generation cost is charged to the global
    /// registry (`dsketch_graph_generate_nanos{family=…}`), so experiment
    /// runs expose graph-generation time next to build and serve cost.
    pub fn build(&self) -> Graph {
        let started = std::time::Instant::now();
        let graph = match self.family {
            Workload::ErdosRenyi => erdos_renyi(
                self.n,
                8.0 / self.n as f64,
                GeneratorConfig::uniform(self.seed, 1, 100),
            ),
            Workload::Grid => {
                let side = (self.n as f64).sqrt().round() as usize;
                grid(side, side, GeneratorConfig::uniform(self.seed, 1, 10))
            }
            Workload::Ring => ring(self.n, GeneratorConfig::unit(self.seed)),
            Workload::PowerLaw => {
                preferential_attachment(self.n, 3, GeneratorConfig::uniform(self.seed, 1, 100))
            }
        };
        let registry = dsketch_obs::global();
        let labels: &[(&str, &str)] = &[("family", self.family.name())];
        registry
            .histogram_with(
                "dsketch_graph_generate_nanos",
                "Wall time generating one workload graph.",
                labels,
            )
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        registry
            .counter_with(
                "dsketch_graph_generated_total",
                "Workload graphs generated.",
                labels,
            )
            .inc();
        graph
    }

    /// Generate the graph and measure its diameters (exact for `n ≤ 512`,
    /// estimated above that to keep the harness fast).
    pub fn build_with_diameters(&self) -> (Graph, DiameterReport) {
        let graph = self.build();
        let report = if graph.num_nodes() <= 512 {
            diameters(&graph)
        } else {
            netgraph::diameter::estimate_diameters(&graph, 8, self.seed)
        };
        (graph, report)
    }

    /// A human-readable label like `grid(n=256)`.
    pub fn label(&self) -> String {
        format!("{}(n={})", self.family.name(), self.n)
    }
}

/// The shape of a synthetic query stream replayed against a built oracle.
///
/// The three shapes bracket what a result cache can do for a serving layer:
/// [`QueryWorkload::Hotspot`] is the best case (a few pairs dominate),
/// [`QueryWorkload::Uniform`] is the typical case (repeats happen by
/// birthday collisions only), and [`QueryWorkload::Adversarial`] is the
/// worst case (no pair ever repeats, so every query misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryWorkload {
    /// Both endpoints uniform over the nodes, drawn independently.
    Uniform,
    /// Zipf-like traffic: endpoint popularity follows a `1/rank` law over a
    /// seeded permutation of the nodes, like client traffic concentrating on
    /// popular services.  Small key space ⇒ high cache-hit rate.
    Hotspot,
    /// Cache-adversarial traffic: a permutation-style walk over the
    /// **unordered** pair space that never repeats a pair — in either
    /// orientation — until it has used them all, so an LRU result cache of
    /// any size gets zero hits even when it canonicalises the symmetric
    /// pairs `(u, v)` / `(v, u)` onto one entry (as the serve layer does).
    Adversarial,
}

impl QueryWorkload {
    /// Short name used in tables and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            QueryWorkload::Uniform => "uniform",
            QueryWorkload::Hotspot => "hotspot",
            QueryWorkload::Adversarial => "adversarial",
        }
    }

    /// All query shapes, in the order they appear in tables.
    pub fn all() -> [QueryWorkload; 3] {
        [
            QueryWorkload::Uniform,
            QueryWorkload::Hotspot,
            QueryWorkload::Adversarial,
        ]
    }

    /// Parse a CLI name (as printed by [`QueryWorkload::name`]).
    pub fn parse(text: &str) -> Option<QueryWorkload> {
        QueryWorkload::all().into_iter().find(|w| w.name() == text)
    }

    /// Generate `count` query pairs over nodes `0..n`, deterministically for
    /// a fixed `(n, count, seed)`.
    pub fn generate(self, n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        assert!(n >= 2, "need at least two nodes to query");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ab_71be_11aa_d5a7);
        match self {
            QueryWorkload::Uniform => (0..count)
                .map(|_| {
                    (
                        NodeId::from_index(rng.gen_range(0..n)),
                        NodeId::from_index(rng.gen_range(0..n)),
                    )
                })
                .collect(),
            QueryWorkload::Hotspot => {
                // Zipf ranks over a seeded permutation of the nodes, sampled
                // by binary search on the cumulative 1/rank weights.
                let mut nodes: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
                nodes.shuffle(&mut rng);
                let mut cumulative = Vec::with_capacity(n);
                let mut total = 0.0f64;
                for rank in 0..n {
                    total += 1.0 / (rank + 1) as f64;
                    cumulative.push(total);
                }
                let draw = |rng: &mut StdRng| {
                    let target = rng.gen_range(0.0..total);
                    let idx = cumulative.partition_point(|&c| c <= target);
                    nodes[idx.min(n - 1)]
                };
                (0..count)
                    .map(|_| (draw(&mut rng), draw(&mut rng)))
                    .collect()
            }
            QueryWorkload::Adversarial => {
                // Visit unordered-pair indices `first + t·step (mod T)`,
                // `T = n(n+1)/2`, with `step` coprime to `T`: a full cycle,
                // so no unordered pair repeats within T queries.  Index
                // `t = a(a+1)/2 + b` (with `b ≤ a`) decodes to the pair
                // `(b, a)` by triangular root.
                let space = (n as u64) * (n as u64 + 1) / 2;
                let first = rng.gen_range(0..space);
                let mut step = rng.gen_range(1..space) | 1;
                while gcd(step, space) != 1 {
                    step = (step + 2) % space.max(3);
                    step |= 1;
                }
                let mut pair = first;
                (0..count)
                    .map(|_| {
                        let (u, v) = triangular_decode(pair);
                        pair = (pair + step) % space;
                        (NodeId::from_index(u), NodeId::from_index(v))
                    })
                    .collect()
            }
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Decode an unordered-pair index `t = a(a+1)/2 + b` (with `b ≤ a`) into
/// `(b, a)`: `a` is the triangular root of `t`.
fn triangular_decode(t: u64) -> (usize, usize) {
    // f64 sqrt can be off by one for large t; correct with a fix-up loop.
    let mut a = (((8.0 * t as f64 + 1.0).sqrt() - 1.0) / 2.0) as u64;
    while (a + 1) * (a + 2) / 2 <= t {
        a += 1;
    }
    while a * (a + 1) / 2 > t {
        a -= 1;
    }
    let b = t - a * (a + 1) / 2;
    (b as usize, a as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::is_connected;

    #[test]
    fn all_families_build_connected_graphs() {
        for family in Workload::all() {
            let spec = WorkloadSpec::new(family, 100, 7);
            let g = spec.build();
            assert!(is_connected(&g), "{} should be connected", spec.label());
            assert!(g.num_nodes() >= 95, "{}", spec.label());
        }
    }

    #[test]
    fn ring_has_larger_sp_diameter_than_er() {
        let (_, ring_d) = WorkloadSpec::new(Workload::Ring, 128, 3).build_with_diameters();
        let (_, er_d) = WorkloadSpec::new(Workload::ErdosRenyi, 128, 3).build_with_diameters();
        assert!(ring_d.shortest_path_diameter > er_d.shortest_path_diameter);
    }

    #[test]
    fn labels_and_names() {
        assert_eq!(Workload::Grid.name(), "grid");
        assert_eq!(
            WorkloadSpec::new(Workload::Ring, 64, 1).label(),
            "ring(n=64)"
        );
        assert_eq!(Workload::all().len(), 4);
    }

    #[test]
    fn query_workloads_are_deterministic_and_in_range() {
        for shape in QueryWorkload::all() {
            let a = shape.generate(64, 500, 9);
            let b = shape.generate(64, 500, 9);
            assert_eq!(a, b, "{} must be reproducible", shape.name());
            assert_eq!(a.len(), 500);
            assert!(a.iter().all(|&(u, v)| u.index() < 64 && v.index() < 64));
            assert_ne!(a, shape.generate(64, 500, 10), "seed must matter");
        }
    }

    #[test]
    fn adversarial_never_repeats_a_pair_in_either_orientation() {
        // 64 nodes span 64·65/2 = 2080 unordered pairs; 2000 queries must
        // all be distinct even after canonicalising (u, v) / (v, u).
        let pairs = QueryWorkload::Adversarial.generate(64, 2000, 3);
        let unordered: std::collections::HashSet<_> = pairs
            .iter()
            .map(|&(u, v)| if v < u { (v, u) } else { (u, v) })
            .collect();
        assert_eq!(
            unordered.len(),
            pairs.len(),
            "2000 < 2080 unordered pairs, all distinct"
        );
        assert!(pairs.iter().all(|&(u, v)| u.index() < 64 && v.index() < 64));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let n = 100;
        let pairs = QueryWorkload::Hotspot.generate(n, 10_000, 7);
        let mut counts = vec![0usize; n];
        for (u, v) in pairs {
            counts[u.index()] += 1;
            counts[v.index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = counts[..n / 10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            top_decile * 2 > total,
            "top 10% of nodes should carry over half the Zipf traffic \
             ({top_decile}/{total})"
        );
        // Uniform traffic, by contrast, spreads endpoints evenly.
        let uniform = QueryWorkload::Uniform.generate(n, 10_000, 7);
        let mut ucounts = vec![0usize; n];
        for (u, v) in uniform {
            ucounts[u.index()] += 1;
            ucounts[v.index()] += 1;
        }
        ucounts.sort_unstable_by(|a, b| b.cmp(a));
        let utop: usize = ucounts[..n / 10].iter().sum();
        assert!(utop * 2 < total, "uniform top decile stays near 10%");
    }

    #[test]
    fn query_workload_names_round_trip() {
        for shape in QueryWorkload::all() {
            assert_eq!(QueryWorkload::parse(shape.name()), Some(shape));
        }
        assert_eq!(QueryWorkload::parse("nope"), None);
    }

    #[test]
    fn specs_are_reproducible() {
        let a = WorkloadSpec::new(Workload::PowerLaw, 80, 5).build();
        let b = WorkloadSpec::new(Workload::PowerLaw, 80, 5).build();
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }
}
