//! Experiment harness reproducing the paper's results.
//!
//! The paper is a theory paper: its "evaluation" is the set of theorems
//! bounding stretch, sketch size, rounds, and messages.  Each experiment in
//! this crate is the empirical counterpart of one theorem or lemma (the
//! mapping is the per-experiment index in `DESIGN.md`); the harness measures
//! the quantities the theorem bounds on synthetic workloads and prints a
//! table with both the measured value and the theoretical prediction, so
//! EXPERIMENTS.md can record paper-vs-measured rows.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dsketch-bench --bin experiments -- all
//! cargo run --release -p dsketch-bench --bin experiments -- e1 --quick
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod table;
pub mod workloads;

pub use experiments::{run_experiment, ExperimentResult, EXPERIMENT_IDS};
pub use table::Table;
pub use workloads::{QueryWorkload, Workload, WorkloadSpec};

/// How [`serve_network`] should listen: the knobs both serving CLIs parse
/// from their command lines, separate from the oracle and shard config.
pub struct NetServeOptions<'a> {
    /// Number of connection-handling worker threads (clamped to ≥ 1).
    pub net_workers: usize,
    /// `HOST:PORT` to bind.
    pub listen: &'a str,
    /// Stop draining after this many seconds; 0 means serve forever.
    pub serve_seconds: u64,
    /// Emit structured JSON log lines instead of plain text.
    pub log_json: bool,
}

/// Serve `oracle` on `options.listen` over TCP until `options.serve_seconds`
/// elapses (0 = forever), then drain gracefully, print the final wire +
/// dispatch counters, and exit the process.
///
/// The shared tail of `dsketch-serve --listen` and `dsketch-store serve
/// --listen`: both build/load an oracle their own way, then hand it here.
/// `origin` is the oracle's typed provenance (scheme spec + graph
/// fingerprint) when the caller knows it — it arms the hot-swap
/// compatibility gates, so `POST /swap` refuses snapshots built with a
/// different scheme.  Exit code 0 after a timed run, 1 when the listener
/// cannot bind.
pub fn serve_network(
    oracle: std::sync::Arc<dyn dsketch::DistanceOracle>,
    config: dsketch_serve::ServeConfig,
    options: NetServeOptions<'_>,
    meta: dsketch_serve::ServeMeta,
    origin: Option<(dsketch::SchemeSpec, netgraph::GraphFingerprint)>,
) -> ! {
    use dsketch_serve::{NetConfig, NetServer};
    let NetServeOptions {
        net_workers,
        listen,
        serve_seconds,
        log_json,
    } = options;
    let net_workers = net_workers.max(1);
    let server = NetServer::start_with_origin(
        oracle,
        config,
        NetConfig::default()
            .with_workers(net_workers)
            .with_log_json(log_json),
        listen,
        meta,
        origin,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot listen on {listen}: {e}");
        std::process::exit(1);
    });
    println!(
        "listening on {} — binary NETQ protocol + HTTP/1.1 (GET /distance?u=..&v=.., \
         GET /stats, GET /metrics, GET /trace?n=K, POST /swap?snapshot=..) on one port, \
         {net_workers} connection workers",
        server.local_addr(),
    );
    if serve_seconds == 0 {
        println!("serving until killed (pass --serve-seconds N for a timed run)");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    println!("serving for {serve_seconds}s…");
    std::thread::sleep(std::time::Duration::from_secs(serve_seconds));
    let stats = server.shutdown();
    println!("drained and stopped.\n{stats}");
    std::process::exit(0);
}

/// Nearest-rank percentile over raw latency samples, `p` in `[0, 100]`.
///
/// Sorts `samples` in place and returns the value at the ceiling rank, the
/// convention loadgen reports (`p50`/`p95`/`p99` of per-request nanoseconds):
/// conservative (never interpolates below an observed sample) and exact for
/// the small sample counts a smoke run produces.  Returns 0 for an empty
/// slice.
pub fn percentile_nanos(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.max(1) - 1]
}

/// Look up a `--name value` style flag in raw `std::env::args` output
/// (shared by the `dsketch-serve` / `dsketch-store` binaries).
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    let flag = format!("--{name}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a `--name value` flag, falling back to `default` when the flag is
/// absent or unparsable.
pub fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Like [`arg_parse`], but a flag that is *present* with an unparsable
/// value is a usage error (exit code 2) instead of a silent fallback — an
/// absent flag still yields `default`.
pub fn arg_parse_or_exit<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match arg_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("--{name} {raw}: expected a {}", std::any::type_name::<T>());
            std::process::exit(2);
        }),
    }
}

/// Parse the `--engine parallel|congest` flag shared by the
/// `dsketch-store` and `dsketch-serve` binaries (default: the parallel
/// production engine); an unknown engine name is a usage error (exit 2).
pub fn arg_engine(args: &[String]) -> dsketch::BuildEngine {
    match arg_value(args, "engine").as_deref() {
        None | Some("parallel") => dsketch::BuildEngine::Parallel,
        Some("congest") => dsketch::BuildEngine::Congest,
        Some(other) => {
            eprintln!("--engine {other}: unknown (known: parallel, congest)");
            std::process::exit(2);
        }
    }
}

/// Parse the `--frozen true|false` flag shared by the serving binaries:
/// whether to serve through the flat CSR representation
/// (`dsketch::flat::FlatSketchSet`).  Defaults to `true` — serving always
/// prefers the frozen layout; pass `--frozen false` to exercise the
/// `BTreeMap`-backed path (e.g. for cross-checks).  An unrecognized value
/// is a usage error (exit 2).
pub fn arg_frozen(args: &[String]) -> bool {
    match arg_value(args, "frozen").as_deref() {
        None | Some("true") => true,
        Some("false") => false,
        Some(other) => {
            eprintln!("--frozen {other}: expected true or false");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_helpers_parse_flags_and_fall_back() {
        let args: Vec<String> = ["prog", "--nodes", "128", "--bad", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "nodes"), Some("128".to_string()));
        assert_eq!(arg_value(&args, "missing"), None);
        assert_eq!(arg_parse(&args, "nodes", 7usize), 128);
        assert_eq!(arg_parse(&args, "bad", 7usize), 7);
        assert_eq!(arg_parse(&args, "missing", 7usize), 7);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut empty: [u64; 0] = [];
        assert_eq!(percentile_nanos(&mut empty, 50.0), 0);
        let mut one = [7u64];
        assert_eq!(percentile_nanos(&mut one, 0.0), 7);
        assert_eq!(percentile_nanos(&mut one, 100.0), 7);
        // 1..=100 shuffled: pX is exactly X.
        let mut hundred: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile_nanos(&mut hundred, 50.0), 50);
        assert_eq!(percentile_nanos(&mut hundred, 95.0), 95);
        assert_eq!(percentile_nanos(&mut hundred, 99.0), 99);
        assert_eq!(percentile_nanos(&mut hundred, 100.0), 100);
        let mut four = [10u64, 20, 30, 40];
        assert_eq!(percentile_nanos(&mut four, 50.0), 20);
        assert_eq!(percentile_nanos(&mut four, 75.0), 30);
        assert_eq!(percentile_nanos(&mut four, 76.0), 40);
    }

    #[test]
    fn frozen_flag_defaults_to_true() {
        let absent: Vec<String> = vec!["prog".to_string()];
        assert!(arg_frozen(&absent));
        let off: Vec<String> = ["prog", "--frozen", "false"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(!arg_frozen(&off));
        let on: Vec<String> = ["prog", "--frozen", "true"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(arg_frozen(&on));
    }
}
