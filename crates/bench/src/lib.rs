//! Experiment harness reproducing the paper's results.
//!
//! The paper is a theory paper: its "evaluation" is the set of theorems
//! bounding stretch, sketch size, rounds, and messages.  Each experiment in
//! this crate is the empirical counterpart of one theorem or lemma (the
//! mapping is the per-experiment index in `DESIGN.md`); the harness measures
//! the quantities the theorem bounds on synthetic workloads and prints a
//! table with both the measured value and the theoretical prediction, so
//! EXPERIMENTS.md can record paper-vs-measured rows.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p dsketch-bench --bin experiments -- all
//! cargo run --release -p dsketch-bench --bin experiments -- e1 --quick
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;
pub mod workloads;

pub use experiments::{run_experiment, ExperimentResult, EXPERIMENT_IDS};
pub use table::Table;
pub use workloads::{QueryWorkload, Workload, WorkloadSpec};
