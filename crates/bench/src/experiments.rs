//! One function per experiment of DESIGN.md's per-experiment index.
//!
//! Each experiment prints a table whose rows are what EXPERIMENTS.md records
//! as "measured", next to the theoretical prediction ("paper") from the
//! corresponding theorem.  The `quick` flag shrinks node counts so the whole
//! suite stays in CI-friendly territory; the full sizes are the ones quoted
//! in EXPERIMENTS.md.

use crate::table::Table;
use crate::workloads::{Workload, WorkloadSpec};
use dsketch::baseline::LandmarkSketch;
use dsketch::eval::{evaluate_oracle_with_slack, evaluate_pairs};
use dsketch::prelude::*;
use netgraph::apsp::DistanceTable;
use netgraph::{Graph, NodeId};

/// The experiment identifiers, in DESIGN.md order (`e11` exercises the
/// scheme-polymorphic API over every family, `e12` the sharded serving
/// layer built on top of it, `e13` the snapshot persistence layer under
/// it, `e14` the parallel construction engine's thread scaling, `e15` the
/// frozen flat query path's single-thread throughput vs the `BTreeMap`
/// path, `e16` the network front end's loopback answer identity, `e17`
/// hot snapshot swapping under sustained query load, `e18` the
/// deterministic fault-injection chaos battery over the whole serve
/// stack).
pub const EXPERIMENT_IDS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Identifier (`e1` … `e10`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The paper claim being validated.
    pub claim: &'static str,
    /// The measured table.
    pub table: Table,
}

impl ExperimentResult {
    /// Render the full experiment block (title, claim, markdown table).
    pub fn to_markdown(&self) -> String {
        format!(
            "### {} — {}\n\n*Paper claim:* {}\n\n{}\n",
            self.id.to_uppercase(),
            self.title,
            self.claim,
            self.table.to_markdown()
        )
    }
}

/// Run one experiment by id.  `quick` shrinks workloads for smoke runs.
pub fn run_experiment(id: &str, quick: bool) -> Option<ExperimentResult> {
    match id {
        "e1" => Some(e1_tradeoff(quick)),
        "e2" => Some(e2_bunch_sizes(quick)),
        "e3" => Some(e3_three_stretch_slack(quick)),
        "e4" => Some(e4_cdg(quick)),
        "e5" => Some(e5_degrading(quick)),
        "e6" => Some(e6_density_net(quick)),
        "e7" => Some(e7_query_vs_ondemand(quick)),
        "e8" => Some(e8_equivalence(quick)),
        "e9" => Some(e9_termination_overhead(quick)),
        "e10" => Some(e10_rounds_scaling(quick)),
        "e11" => Some(e11_scheme_matrix(quick)),
        "e12" => Some(e12_query_throughput(quick)),
        "e13" => Some(e13_snapshot_cold_start(quick)),
        "e14" => Some(e14_parallel_build_scaling(quick)),
        "e15" => Some(e15_flat_query_throughput(quick)),
        "e16" => Some(e16_net_front_end(quick)),
        "e17" => Some(e17_swap_under_load(quick)),
        "e18" => Some(e18_chaos_battery(quick)),
        _ => None,
    }
}

fn exact_or_sampled_pairs(graph: &Graph, seed: u64) -> Vec<(NodeId, NodeId, u64)> {
    if graph.num_nodes() <= 300 {
        DistanceTable::exact(graph).pairs().collect()
    } else {
        netgraph::apsp::SampledPairs::uniform(graph, 20_000, seed).pairs
    }
}

/// E1 — Theorem 1.1 / 3.8: the size–stretch–rounds trade-off as k varies.
fn e1_tradeoff(quick: bool) -> ExperimentResult {
    let n = if quick { 128 } else { 256 };
    let mut table = Table::new(&[
        "workload",
        "k",
        "stretch bound",
        "worst stretch",
        "avg stretch",
        "max words",
        "bound k·n^(1/k)·log n",
        "rounds",
        "messages",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid] {
        let spec = WorkloadSpec::new(family, n, 42);
        let graph = spec.build();
        let pairs = exact_or_sampled_pairs(&graph, 1);
        let max_k = if quick { 3 } else { 5 };
        for k in 1..=max_k {
            let result = ThorupZwickScheme::new(k)
                .build(&graph, &SchemeConfig::default().with_seed(7))
                .expect("TZ construction");
            let report = evaluate_pairs(&pairs, |u, v| result.sketches.estimate(u, v));
            let nn = graph.num_nodes() as f64;
            let size_bound = k as f64 * nn.powf(1.0 / k as f64) * nn.log2();
            table.push(vec![
                spec.label(),
                k.to_string(),
                (2 * k - 1).to_string(),
                format!("{:.2}", report.worst),
                format!("{:.2}", report.average),
                result.sketches.max_words().to_string(),
                format!("{size_bound:.0}"),
                result.stats.rounds.to_string(),
                result.stats.messages.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e1",
        title: "Thorup–Zwick trade-off: stretch vs size vs construction cost",
        claim: "stretch ≤ 2k−1 with sketches of O(k n^{1/k} log n) words, built in \
                O(k n^{1/k} S log n) rounds (Theorem 1.1)",
        table,
    }
}

/// E2 — Lemma 3.1 / 3.6: bunch sizes concentrate around k·n^{1/k}.
fn e2_bunch_sizes(quick: bool) -> ExperimentResult {
    let n = if quick { 256 } else { 1024 };
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, n, 11);
    let graph = spec.build();
    let mut table = Table::new(&[
        "workload",
        "k",
        "E[|B(u)|] = k·n^(1/k)",
        "mean |B(u)|",
        "max |B(u)|",
        "tail bound O(k n^(1/k) ln n)",
    ]);
    for k in 2..=4usize {
        let (h, _) = Hierarchy::sample_until_top_nonempty(
            graph.num_nodes(),
            &TzParams::new(k).with_seed(5),
            500,
        )
        .unwrap();
        let tz = CentralizedTz::build(&graph, &h);
        let sizes: Vec<usize> = tz.sketches.iter().map(|s| s.bunch_size()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap();
        let nn = graph.num_nodes() as f64;
        let expected = k as f64 * nn.powf(1.0 / k as f64);
        let tail = expected * nn.ln();
        table.push(vec![
            spec.label(),
            k.to_string(),
            format!("{expected:.1}"),
            format!("{mean:.1}"),
            max.to_string(),
            format!("{tail:.0}"),
        ]);
    }
    ExperimentResult {
        id: "e2",
        title: "Bunch-size concentration",
        claim: "E|B_i(u)| ≤ n^{1/k} per level (Lemma 3.1) and |B_i(u)| = O(n^{1/k} ln n) w.h.p. \
                (Lemma 3.6)",
        table,
    }
}

/// E3 — Theorem 4.3: 3-stretch sketches with ε-slack.
fn e3_three_stretch_slack(quick: bool) -> ExperimentResult {
    let n = if quick { 128 } else { 256 };
    let mut table = Table::new(&[
        "workload",
        "eps",
        "|net|",
        "net bound (10/eps)ln n",
        "max words",
        "worst stretch (eps-far)",
        "worst stretch (near)",
        "rounds",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid] {
        let spec = WorkloadSpec::new(family, n, 21);
        let graph = spec.build();
        for &eps in &[0.4, 0.2, 0.1] {
            let outcome = ThreeStretchScheme::new(eps)
                .build(&graph, &SchemeConfig::default().with_seed(9))
                .unwrap();
            let sketches = &outcome.sketches;
            let report = evaluate_oracle_with_slack(&graph, eps, sketches);
            table.push(vec![
                spec.label(),
                format!("{eps}"),
                sketches.net.len().to_string(),
                format!("{:.0}", sketches.net.size_bound()),
                sketches.max_words().to_string(),
                format!("{:.2}", report.far.worst),
                format!("{:.2}", report.near.worst),
                outcome.stats.rounds.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e3",
        title: "3-stretch sketches with ε-slack",
        claim: "stretch ≤ 3 for every ε-far pair with sketches of O((1/ε) log n) words, built in \
                O(S (1/ε) log n) rounds (Theorem 4.3)",
        table,
    }
}

/// E4 — Theorem 1.2 / 4.6: (ε, k)-CDG sketches.
fn e4_cdg(quick: bool) -> ExperimentResult {
    let n = if quick { 128 } else { 256 };
    let mut table = Table::new(&[
        "workload",
        "eps",
        "k",
        "stretch bound 8k−1",
        "worst stretch (eps-far)",
        "max words",
        "rounds",
        "messages",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid] {
        let spec = WorkloadSpec::new(family, n, 33);
        let graph = spec.build();
        for &(eps, k) in &[(0.2, 1), (0.2, 2), (0.1, 2), (0.05, 3)] {
            let outcome = CdgScheme::new(eps, k)
                .build(&graph, &SchemeConfig::default().with_seed(3))
                .unwrap();
            let result = &outcome.sketches;
            let report = evaluate_oracle_with_slack(&graph, eps, result);
            table.push(vec![
                spec.label(),
                format!("{eps}"),
                k.to_string(),
                result.params.stretch().to_string(),
                format!("{:.2}", report.far.worst),
                result.max_words().to_string(),
                outcome.stats.rounds.to_string(),
                outcome.stats.messages.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e4",
        title: "(ε, k)-CDG sketches",
        claim: "stretch ≤ 8k−1 with ε-slack, size O(k (1/ε·log n)^{1/k} log n) words, \
                O(k S (1/ε·log n)^{1/k} log n) rounds (Theorem 4.6)",
        table,
    }
}

/// E5 — Theorem 1.3 / 4.8 / Corollary 4.9: gracefully degrading sketches.
fn e5_degrading(quick: bool) -> ExperimentResult {
    let n = if quick { 96 } else { 192 };
    let mut table = Table::new(&[
        "workload",
        "layers",
        "max words",
        "log^4 n reference",
        "worst stretch",
        "O(log n) reference",
        "avg stretch",
        "rounds",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid, Workload::PowerLaw] {
        let spec = WorkloadSpec::new(family, n, 17);
        let graph = spec.build();
        let outcome = DegradingScheme::new()
            .with_max_k(3)
            .build(&graph, &SchemeConfig::default().with_seed(3))
            .unwrap();
        let sketches = &outcome.sketches;
        let pairs = exact_or_sampled_pairs(&graph, 2);
        let report = evaluate_pairs(&pairs, |u, v| sketches.estimate(u, v));
        let logn = (graph.num_nodes() as f64).log2();
        table.push(vec![
            spec.label(),
            sketches.num_layers().to_string(),
            sketches.max_words().to_string(),
            format!("{:.0}", logn.powi(4)),
            format!("{:.2}", report.worst),
            format!("{logn:.1}"),
            format!("{:.2}", report.average),
            outcome.stats.rounds.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e5",
        title: "Gracefully degrading sketches: constant average stretch",
        claim: "size O(log^4 n), worst-case stretch O(log n), average stretch O(1), \
                O(S log^4 n) rounds (Theorem 1.3 / Corollary 4.9)",
        table,
    }
}

/// E6 — Lemma 4.2: density-net properties.
fn e6_density_net(quick: bool) -> ExperimentResult {
    let n = if quick { 192 } else { 384 };
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, n, 29);
    let graph = spec.build();
    let table_exact = DistanceTable::exact(&graph);
    let mut table = Table::new(&[
        "workload",
        "eps",
        "|N|",
        "bound (10/eps) ln n",
        "coverage violations",
    ]);
    for &eps in &[0.5, 0.3, 0.2, 0.1] {
        let net = DensityNet::sample_nonempty(graph.num_nodes(), eps, 7).unwrap();
        let report = net.verify(&graph, &table_exact);
        table.push(vec![
            spec.label(),
            format!("{eps}"),
            report.size.to_string(),
            format!("{:.0}", report.size_bound),
            report.coverage_violations.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e6",
        title: "ε-density nets by local sampling",
        claim: "|N| ≤ (10/ε) ln n and every node has a net node within R(u, ε), \
                with high probability, in zero rounds (Lemma 4.2)",
        table,
    }
}

/// E7 — Section 2.1: sketch-based query cost vs on-demand Bellman–Ford.
fn e7_query_vs_ondemand(quick: bool) -> ExperimentResult {
    use congest_sim::programs::bellman_ford::BellmanFordProgram;
    use congest_sim::{CongestConfig, Network};

    let n = if quick { 96 } else { 192 };
    let mut table = Table::new(&[
        "workload",
        "D",
        "S",
        "on-demand rounds",
        "on-demand msgs",
        "exchange rounds",
        "exchange msgs",
        "sketch words",
        "preprocessing rounds",
        "landmark words",
    ]);
    // The standard families plus the D ≪ S regime the paper emphasizes: a
    // ring whose heavy chords collapse the hop diameter while weighted
    // shortest paths still go the long way around.
    let mut cases: Vec<(String, netgraph::Graph)> = Workload::all()
        .into_iter()
        .map(|family| {
            let spec = WorkloadSpec::new(family, n, 13);
            (spec.label(), spec.build())
        })
        .collect();
    cases.push((
        format!("chorded-ring(n={n})"),
        netgraph::generators::ring_with_chords(
            n,
            n / 4,
            50_000,
            netgraph::generators::GeneratorConfig::unit(13),
        ),
    ));
    for (label, graph) in cases {
        let diam = netgraph::diameter::diameters(&graph);
        // One on-demand single-source Bellman–Ford (what a query costs
        // without preprocessing).
        let mut net = Network::new(&graph, CongestConfig::default(), |x| {
            BellmanFordProgram::new(x, x == NodeId(0))
        });
        let ondemand = net.run_until_quiescent(u64::MAX);
        // Preprocessed sketches, plus a fully simulated online exchange of
        // the farthest node's sketch back to node 0 (Section 2.1).
        let result = ThorupZwickScheme::new(3)
            .build(&graph, &SchemeConfig::default().with_seed(5))
            .expect("TZ construction");
        let target = NodeId::from_index(graph.num_nodes() - 1);
        let (_, exchange_stats) = dsketch::distributed::run_sketch_exchange(
            &graph,
            &result.sketches,
            NodeId(0),
            target,
            CongestConfig::default(),
        );
        let landmark = LandmarkSketch::build(&graph, 16, 5);
        table.push(vec![
            label,
            diam.hop_diameter.to_string(),
            diam.shortest_path_diameter.to_string(),
            ondemand.stats.rounds.to_string(),
            ondemand.stats.messages.to_string(),
            exchange_stats.rounds.to_string(),
            exchange_stats.messages.to_string(),
            result.sketches.max_words().to_string(),
            result.stats.rounds.to_string(),
            landmark.words_per_node().to_string(),
        ]);
    }
    ExperimentResult {
        id: "e7",
        title: "Query cost: shipped sketch vs on-demand distance computation",
        claim: "an on-demand computation needs Ω(S) rounds per query, while a sketch-based query \
                ships O(k n^{1/k} log n) words over ≤ D hops, i.e. O(D + sketch) rounds pipelined \
                (Section 2.1)",
        table,
    }
}

/// E8 — Section 3.2: distributed ≡ centralized given the same hierarchy.
fn e8_equivalence(quick: bool) -> ExperimentResult {
    let n = if quick { 96 } else { 160 };
    let mut table = Table::new(&[
        "workload",
        "k",
        "nodes compared",
        "pivot mismatches",
        "bunch mismatches",
    ]);
    for family in Workload::all() {
        let spec = WorkloadSpec::new(family, n, 51);
        let graph = spec.build();
        for k in [2usize, 3] {
            let (h, _) = Hierarchy::sample_until_top_nonempty(
                graph.num_nodes(),
                &TzParams::new(k).with_seed(9),
                500,
            )
            .unwrap();
            let centralized = CentralizedTz::build(&graph, &h);
            let distributed = ThorupZwickScheme::new(k)
                .build_with_hierarchy(&graph, h, &SchemeConfig::default())
                .expect("TZ construction");
            let mut pivot_mismatches = 0usize;
            let mut bunch_mismatches = 0usize;
            for u in graph.nodes() {
                let c = centralized.sketches.sketch(u);
                let d = distributed.sketches.sketch(u);
                if c.pivots() != d.pivots() {
                    pivot_mismatches += 1;
                }
                if c.bunch() != d.bunch() {
                    bunch_mismatches += 1;
                }
            }
            table.push(vec![
                spec.label(),
                k.to_string(),
                graph.num_nodes().to_string(),
                pivot_mismatches.to_string(),
                bunch_mismatches.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e8",
        title: "Distributed construction reproduces the centralized oracle",
        claim: "given the same sampled hierarchy, Algorithm 2 produces exactly the centralized \
                Thorup–Zwick bunches and pivots (Section 3.2, Lemma 3.5)",
        table,
    }
}

/// E9 — Section 3.3: cost of distributed termination detection.
fn e9_termination_overhead(quick: bool) -> ExperimentResult {
    let n = if quick { 96 } else { 160 };
    let mut table = Table::new(&[
        "workload",
        "k",
        "oracle rounds",
        "td rounds",
        "round overhead",
        "oracle messages",
        "td messages",
        "message overhead",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid] {
        let spec = WorkloadSpec::new(family, n, 61);
        let graph = spec.build();
        for k in [2usize, 3] {
            let (h, _) = Hierarchy::sample_until_top_nonempty(
                graph.num_nodes(),
                &TzParams::new(k).with_seed(2),
                500,
            )
            .unwrap();
            let scheme = ThorupZwickScheme::new(k);
            let oracle = scheme
                .build_with_hierarchy(&graph, h.clone(), &SchemeConfig::default())
                .expect("TZ construction");
            let td = scheme
                .build_with_hierarchy(
                    &graph,
                    h,
                    &SchemeConfig::default().with_termination_detection(),
                )
                .expect("TZ construction");
            table.push(vec![
                spec.label(),
                k.to_string(),
                oracle.stats.rounds.to_string(),
                td.stats.rounds.to_string(),
                format!(
                    "{:.2}x",
                    td.stats.rounds as f64 / oracle.stats.rounds.max(1) as f64
                ),
                oracle.stats.messages.to_string(),
                td.stats.messages.to_string(),
                format!(
                    "{:.2}x",
                    td.stats.messages as f64 / oracle.stats.messages.max(1) as f64
                ),
            ]);
        }
    }
    ExperimentResult {
        id: "e9",
        title: "Overhead of Section 3.3 termination detection",
        claim:
            "the ECHO/COMPLETE/START protocol at most doubles messages and adds O(D) rounds per \
                phase relative to an idealized synchronizer (Section 3.3)",
        table,
    }
}

/// E10 — Theorem 3.8 scaling: rounds track S and n^{1/k}.
fn e10_rounds_scaling(quick: bool) -> ExperimentResult {
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    let k = 2usize;
    let mut table = Table::new(&[
        "workload",
        "n",
        "S",
        "rounds",
        "rounds / (n^(1/k) S)",
        "messages",
        "messages / (|E| rounds)",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid, Workload::Ring] {
        for &n in sizes {
            let spec = WorkloadSpec::new(family, n, 77);
            let (graph, diam) = spec.build_with_diameters();
            let result = ThorupZwickScheme::new(k)
                .build(&graph, &SchemeConfig::default().with_seed(3))
                .expect("TZ construction");
            let s = diam.shortest_path_diameter.max(1) as f64;
            let normalized =
                result.stats.rounds as f64 / ((graph.num_nodes() as f64).powf(1.0 / k as f64) * s);
            let msg_per_edge_round = result.stats.messages as f64
                / (graph.num_edges().max(1) as f64 * result.stats.rounds.max(1) as f64);
            table.push(vec![
                spec.label(),
                graph.num_nodes().to_string(),
                diam.shortest_path_diameter.to_string(),
                result.stats.rounds.to_string(),
                format!("{normalized:.3}"),
                result.stats.messages.to_string(),
                format!("{msg_per_edge_round:.3}"),
            ]);
        }
    }
    ExperimentResult {
        id: "e10",
        title: "Round and message scaling in n and S",
        claim: "rounds grow as O(k n^{1/k} S log n) and messages as O(|E|) per round \
                (Theorem 3.8); the normalized columns should stay bounded as n grows",
        table,
    }
}

/// E11 — the unified API: every scheme family, one code path.
///
/// Builds each [`SchemeSpec`] family through [`SketchBuilder`] and evaluates
/// it through `Box<dyn DistanceOracle>`: the whole row — construction cost,
/// label size, stretch distribution — is produced by scheme-agnostic code.
/// This is the scenario-diverse comparison matrix the per-scheme entry
/// points could not express.
fn e11_scheme_matrix(quick: bool) -> ExperimentResult {
    let n = if quick { 96 } else { 192 };
    let mut table = Table::new(&[
        "workload",
        "scheme",
        "stretch bound",
        "worst stretch",
        "avg stretch",
        "failures",
        "max words",
        "avg words",
        "rounds",
        "messages",
    ]);
    for family in [Workload::ErdosRenyi, Workload::Grid, Workload::PowerLaw] {
        let spec = WorkloadSpec::new(family, n, 91);
        let graph = spec.build();
        let pairs = exact_or_sampled_pairs(&graph, 4);
        for scheme in SchemeSpec::all_families() {
            let outcome = SketchBuilder::new(scheme)
                .seed(13)
                .build(&graph)
                .expect("scheme construction");
            let oracle = &outcome.sketches;
            let report = evaluate_pairs(&pairs, |u, v| oracle.estimate(u, v));
            table.push(vec![
                spec.label(),
                scheme.to_string(),
                oracle
                    .stretch_bound()
                    .map_or("-".to_string(), |b| b.to_string()),
                format!("{:.2}", report.worst),
                format!("{:.2}", report.average),
                report.failures.to_string(),
                oracle.max_words().to_string(),
                format!("{:.1}", oracle.avg_words()),
                outcome.stats.rounds.to_string(),
                outcome.stats.messages.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e11",
        title: "Scheme matrix: all four families through one oracle interface",
        claim: "the four constructions are one family behind a build/query interface; \
                slack schemes trade worst-case stretch on near pairs for far smaller labels \
                (Sections 3–4)",
        table,
    }
}

/// E12 — serving throughput: the Section 2.1 query path under load.
///
/// Builds one oracle per scheme, starts the `dsketch-serve` sharded server
/// over it, and replays each [`QueryWorkload`] shape in batches.  The
/// interesting columns: the cache-hit rate spread between hotspot (Zipf)
/// and adversarial (never-repeating) traffic, and the resulting throughput
/// difference — plus shard load balance, which the pair-hash routing should
/// keep near 1.
fn e12_query_throughput(quick: bool) -> ExperimentResult {
    use crate::workloads::QueryWorkload;
    use dsketch_serve::{ServeConfig, SketchServer};
    use std::sync::Arc;

    // Keep `queries < n(n+1)/2` so the adversarial stream never wraps the
    // unordered-pair space (its zero-hit guarantee only holds for the first
    // n(n+1)/2 queries, since the serve cache canonicalises (u,v)/(v,u)).
    let n = if quick { 128 } else { 512 };
    let queries = if quick { 8_000 } else { 100_000 };
    let batch = 256;
    let config = ServeConfig::default(); // 4 shards, 4096-entry caches
    let mut table = Table::new(&[
        "workload",
        "scheme",
        "traffic",
        "queries",
        "shards",
        "queries/s",
        "hit rate",
        "errors",
        "avg µs/query",
        "imbalance",
    ]);
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, n, 42);
    let graph = spec.build();
    for scheme in [SchemeSpec::thorup_zwick(3), SchemeSpec::three_stretch(0.3)] {
        let outcome = SketchBuilder::new(scheme)
            .seed(13)
            .build(&graph)
            .expect("scheme construction");
        let oracle: Arc<dyn dsketch::DistanceOracle> = Arc::from(outcome.sketches);
        for shape in QueryWorkload::all() {
            let server = SketchServer::start(Arc::clone(&oracle), config).expect("server start");
            let client = server.client();
            let pairs = shape.generate(n, queries, 7);
            let started = std::time::Instant::now();
            for chunk in pairs.chunks(batch) {
                for _ in client.query_batch(chunk) {}
            }
            let elapsed = started.elapsed().as_secs_f64();
            drop(client);
            let stats = server.shutdown();
            table.push(vec![
                spec.label(),
                scheme.to_string(),
                shape.name().to_string(),
                stats.totals.queries.to_string(),
                stats.num_shards().to_string(),
                format!("{:.0}", stats.totals.queries as f64 / elapsed),
                format!("{:.1}%", 100.0 * stats.totals.hit_rate()),
                stats.totals.errors.to_string(),
                format!("{:.2}", stats.totals.avg_latency_nanos() / 1e3),
                format!("{:.2}", stats.load_imbalance()),
            ]);
        }
    }
    ExperimentResult {
        id: "e12",
        title: "Serving throughput: sharded concurrent queries over one oracle",
        claim: "after construction, distance queries need no communication and can be served \
                at memory speed from labels alone (Section 2.1); sharding spreads the load and \
                an LRU cache converts traffic skew into hit rate",
        table,
    }
}

/// E13 — persistence: snapshot save/load throughput and the
/// cold-start-from-snapshot vs rebuild speedup.
///
/// For every scheme family (and, for `tz:3`, growing graph sizes up to
/// n = 4096 in full mode), build once in the CONGEST simulator, save the
/// `DSK1` snapshot, reload it, and compare: the "speedup" column is
/// rebuild time over load time — the factor a restarted query server
/// gains by cold-starting from disk instead of re-running the
/// construction.  The "identical" column verifies the loaded oracle
/// returns bit-identical estimates to the freshly built one on sampled
/// pairs.
fn e13_snapshot_cold_start(quick: bool) -> ExperimentResult {
    use dsketch_store::{build_stored, load_oracle_for_graph, save_snapshot};
    use std::time::Instant;

    let dir = std::env::temp_dir().join("dsketch_e13");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // (spec, graph sizes): every family at a base size, plus the size
    // sweep for tz:3 — the scheme the acceptance bar (≥ 10× at n = 4096)
    // is stated for.
    let base = if quick { 96 } else { 256 };
    let mut cases: Vec<(SchemeSpec, usize)> = SchemeSpec::all_families()
        .into_iter()
        .map(|spec| (spec, base))
        .collect();
    if !quick {
        cases.push((SchemeSpec::thorup_zwick(3), 1024));
        cases.push((SchemeSpec::thorup_zwick(3), 4096));
    }

    let mut table = Table::new(&[
        "scheme",
        "n",
        "build ms",
        "save ms",
        "snapshot KB",
        "load ms",
        "speedup",
        "identical",
    ]);
    for (index, (spec, n)) in cases.into_iter().enumerate() {
        let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 42).build();
        let config = SchemeConfig::default().with_seed(13);
        let path = dir.join(format!("e13_{index}.dsk"));

        let build_started = Instant::now();
        let contents = build_stored(&graph, spec, &config).expect("construction");
        let build_time = build_started.elapsed();

        let save_started = Instant::now();
        let bytes = save_snapshot(&path, &contents).expect("save");
        let save_time = save_started.elapsed();

        let load_started = Instant::now();
        let loaded = load_oracle_for_graph(&path, &graph).expect("load");
        let load_time = load_started.elapsed();

        // Bit-identical estimates between the freshly built and the
        // reloaded oracle, on a deterministic pair sample.
        let built = contents.sketches.as_oracle();
        let identical = (0..200u32).all(|i| {
            let u = NodeId((i * 131) % n as u32);
            let v = NodeId((i * 157 + 71) % n as u32);
            match (built.estimate(u, v), loaded.estimate(u, v)) {
                (Ok(a), Ok(b)) => a == b,
                (Err(_), Err(_)) => true,
                _ => false,
            }
        });
        std::fs::remove_file(&path).ok();

        let speedup = build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9);
        table.push(vec![
            spec.to_string(),
            n.to_string(),
            format!("{:.1}", build_time.as_secs_f64() * 1e3),
            format!("{:.2}", save_time.as_secs_f64() * 1e3),
            format!("{:.1}", bytes as f64 / 1024.0),
            format!("{:.2}", load_time.as_secs_f64() * 1e3),
            format!("{speedup:.0}x"),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e13",
        title: "Snapshot persistence: cold start from disk vs rebuild",
        claim: "the construction cost (Õ(n^{1/2+1/k}+D) rounds) is paid once; a snapshot-loaded \
                oracle answers bit-identically to the freshly built one, and cold-starting from \
                disk is orders of magnitude faster than rebuilding",
        table,
    }
}

/// E14 — parallel construction engine: thread scaling and determinism.
///
/// For every scheme family (and, for `tz:3`, growing graph sizes up to
/// n = 4096 in full mode), build with the direct parallel engine at
/// increasing worker-thread counts.  The "speedup" column is the
/// single-thread build time over this thread count's build time; the
/// "identical" column re-serializes the build as `DSK1` snapshot bytes and
/// compares them against the 1-thread snapshot — the engine's determinism
/// contract is that they are byte-for-byte equal.  The "cores" column
/// records the host's available parallelism: wall-clock speedup can only
/// materialize up to that limit (the determinism columns hold regardless).
fn e14_parallel_build_scaling(quick: bool) -> ExperimentResult {
    use dsketch_store::{build_stored, write_snapshot};
    use std::time::Instant;

    let cores = dsketch::parallel::available_parallelism();
    let thread_axis: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let repeats = if quick { 1 } else { 2 };

    let base = if quick { 96 } else { 256 };
    let mut cases: Vec<(SchemeSpec, usize)> = SchemeSpec::all_families()
        .into_iter()
        .map(|spec| (spec, base))
        .collect();
    if !quick {
        cases.push((SchemeSpec::thorup_zwick(3), 1024));
        cases.push((SchemeSpec::thorup_zwick(3), 4096));
    }

    let mut table = Table::new(&[
        "scheme",
        "n",
        "threads",
        "cores",
        "build ms",
        "speedup vs 1T",
        "identical bytes",
    ]);
    for (spec, n) in cases {
        let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 42).build();
        let mut reference: Option<(Vec<u8>, f64)> = None; // (t=1 bytes, t=1 secs)
        for &threads in thread_axis {
            let config = SchemeConfig::default()
                .with_seed(13)
                .with_parallel_build()
                .with_threads(threads);
            let mut best = f64::INFINITY;
            let mut bytes = Vec::new();
            for _ in 0..repeats {
                let started = Instant::now();
                let contents = build_stored(&graph, spec, &config).expect("parallel construction");
                best = best.min(started.elapsed().as_secs_f64());
                bytes.clear();
                write_snapshot(&mut bytes, &contents).expect("serialize snapshot");
            }
            let (identical, speedup) = match &reference {
                None => {
                    reference = Some((std::mem::take(&mut bytes), best));
                    (true, 1.0)
                }
                Some((reference_bytes, reference_secs)) => {
                    (*reference_bytes == bytes, reference_secs / best.max(1e-12))
                }
            };
            table.push(vec![
                spec.to_string(),
                n.to_string(),
                threads.to_string(),
                cores.to_string(),
                format!("{:.1}", best * 1e3),
                format!("{speedup:.2}x"),
                if identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e14",
        title: "Parallel construction engine: thread scaling, bit-identical output",
        claim: "per-seed explorations are independent, so construction parallelizes across \
                worker threads with a deterministic merge: build(threads=k) is byte-identical \
                to build(threads=1) and wall-clock falls toward 1/min(k, cores) \
                (cf. Dinitz–Nazari 2018 on massively parallel sketch construction)",
        table,
    }
}

/// E15 — the frozen flat query path: single-thread throughput of
/// [`dsketch::flat::FlatSketchSet`] vs the `BTreeMap`-backed oracle.
///
/// For every scheme family (and, for `tz:3`, growing graph sizes up to
/// n = 4096 in full mode), build once with the parallel engine, freeze the
/// labels, and replay the same uniform query stream through both
/// representations at each batch size — one thread, `estimate_batch` for
/// both, so the columns isolate exactly the representation change (B-tree
/// pointer chasing vs binary search / linear merge over contiguous
/// arrays).  The "identical" column replays a sample of the stream through
/// both paths and compares results pairwise (errors included); the frozen
/// path's whole claim is *same answers, faster*.
///
/// Besides the printed table, the measurements are written as
/// machine-readable JSON to `BENCH_query.json` at the repository root, so
/// later optimisation PRs have a baseline to diff against.
fn e15_flat_query_throughput(quick: bool) -> ExperimentResult {
    use crate::workloads::QueryWorkload;
    use dsketch_store::build_stored;
    use std::time::Instant;

    let base = if quick { 128 } else { 256 };
    let queries = if quick { 40_000 } else { 400_000 };
    // Wall-clock on shared hosts is noisy; report each cell's median over
    // `repeats` replays (medians resist scheduler-steal outliers on both
    // sides of the comparison equally).
    let repeats = if quick { 1 } else { 9 };
    let batches: &[usize] = &[1, 256];
    let mut cases: Vec<(SchemeSpec, usize)> = SchemeSpec::all_families()
        .into_iter()
        .map(|spec| (spec, base))
        .collect();
    if !quick {
        cases.push((SchemeSpec::thorup_zwick(3), 1024));
        cases.push((SchemeSpec::thorup_zwick(3), 4096));
    }

    /// Replay `pairs` through the oracle — direct `estimate` calls at
    /// batch size 1 (the single-query path), `estimate_batch` in
    /// `batch`-sized chunks otherwise; returns (throughput in queries/s,
    /// answer checksum).
    fn replay(
        oracle: &dyn dsketch::DistanceOracle,
        pairs: &[(NodeId, NodeId)],
        batch: usize,
    ) -> (f64, u64) {
        let started = Instant::now();
        let mut checksum = 0u64;
        if batch <= 1 {
            for &(u, v) in pairs {
                checksum = checksum.wrapping_add(oracle.estimate(u, v).unwrap_or(u64::MAX));
            }
        } else {
            for chunk in pairs.chunks(batch) {
                for result in oracle.estimate_batch(chunk) {
                    checksum = checksum.wrapping_add(result.unwrap_or(u64::MAX));
                }
            }
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-12);
        (pairs.len() as f64 / elapsed, checksum)
    }

    let mut table = Table::new(&[
        "scheme",
        "n",
        "batch",
        "queries",
        "btree q/s",
        "flat q/s",
        "speedup",
        "identical",
    ]);
    let mut json_rows = Vec::new();
    for (spec, n) in cases {
        let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 42).build();
        let config = SchemeConfig::default().with_seed(13).with_parallel_build();
        let contents = build_stored(&graph, spec, &config).expect("construction");
        let btree = contents.sketches.as_oracle();
        let flat = contents.sketches.freeze();
        let pairs = QueryWorkload::Uniform.generate(n, queries, 7);

        // Answer-identity first, on a deterministic sample of the stream
        // (the full proptest equivalence lives in tests/tests/flat_query.rs).
        let sample = &pairs[..pairs.len().min(2_000)];
        let identical = btree.estimate_batch(sample) == flat.estimate_batch(sample);

        for &batch in batches {
            fn median(samples: &mut [f64]) -> f64 {
                samples.sort_by(f64::total_cmp);
                samples[samples.len() / 2]
            }
            let (mut btree_samples, mut flat_samples) = (Vec::new(), Vec::new());
            let (mut btree_sum, mut flat_sum) = (0, 0);
            for _ in 0..repeats {
                let (b_qps, b_sum) = replay(btree, &pairs, batch);
                let (f_qps, f_sum) = replay(&flat, &pairs, batch);
                btree_samples.push(b_qps);
                flat_samples.push(f_qps);
                (btree_sum, flat_sum) = (b_sum, f_sum);
            }
            let btree_qps = median(&mut btree_samples);
            let flat_qps = median(&mut flat_samples);
            let speedup = flat_qps / btree_qps.max(1e-12);
            let row_identical = identical && btree_sum == flat_sum;
            table.push(vec![
                spec.to_string(),
                n.to_string(),
                batch.to_string(),
                queries.to_string(),
                format!("{btree_qps:.0}"),
                format!("{flat_qps:.0}"),
                format!("{speedup:.2}x"),
                if row_identical { "yes" } else { "NO" }.to_string(),
            ]);
            json_rows.push(format!(
                "  {{\"scheme\": \"{spec}\", \"n\": {n}, \"batch\": {batch}, \
                 \"queries\": {queries}, \"btree_qps\": {btree_qps:.0}, \
                 \"flat_qps\": {flat_qps:.0}, \"speedup\": {speedup:.3}, \
                 \"identical\": {row_identical}}}"
            ));
        }
    }

    // Machine-readable baseline for future perf PRs.  Default target is
    // `BENCH_query.json` at the repo root (the committed baseline comes
    // from an explicit full-mode run); `DSKETCH_BENCH_JSON` overrides the
    // path so incidental runs — the unit-test smoke in particular — never
    // clobber the committed full-mode numbers with quick-mode ones.
    let json = format!(
        "{{\n\"experiment\": \"e15\",\n\"mode\": \"{}\",\n\"workload\": \"uniform\",\n\
         \"threads\": 1,\n\"rows\": [\n{}\n]\n}}\n",
        if quick { "quick" } else { "full" },
        json_rows.join(",\n")
    );
    let path = std::env::var_os("DSKETCH_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json")
        });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote machine-readable results to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    ExperimentResult {
        id: "e15",
        title: "Flat query path: frozen CSR labels vs BTreeMap sketches, one thread",
        claim: "queries are answered locally in O(k) from two labels (Lemma 3.2); packing \
                labels into contiguous sorted arrays turns every bunch probe into a binary \
                search / linear merge over cache-resident memory, multiplying single-thread \
                query throughput without changing a single answer (cf. Dinitz–Nazari's flat \
                label arrays in massively parallel sketches)",
        table,
    }
}

/// E16 — the network front end: wire answers vs direct oracle calls.
///
/// Builds each scheme family, starts the TCP server ([`dsketch_serve::net`])
/// on a loopback port, and drives the same query stream three ways — direct
/// oracle calls, single-query frames, and batched frames — plus a handful
/// of `GET /distance` HTTP requests.  The load-bearing columns are the two
/// identity checks: every wire answer (and every typed wire error) must
/// match the direct call exactly, or serving over the network would change
/// the scheme's semantics.
fn e16_net_front_end(quick: bool) -> ExperimentResult {
    use crate::workloads::QueryWorkload;
    use dsketch_serve::{NetClient, NetConfig, NetServer, ServeConfig};
    use std::io::{Read, Write};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// One HTTP exchange against the same port the binary protocol uses.
    fn http_get(addr: &str, path: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("http connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("socket timeout");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nhost: dsketch\r\nconnection: close\r\n\r\n"
        )
        .expect("http write");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("http read");
        body
    }

    let n = if quick { 96 } else { 256 };
    let queries = if quick { 600 } else { 5_000 };
    let singles = if quick { 128 } else { 512 };
    let mut table = Table::new(&[
        "scheme",
        "n",
        "queries",
        "wire=direct",
        "http=direct",
        "typed errors",
        "protocol errors",
        "p50 µs",
        "p99 µs",
    ]);
    let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 42).build();
    for scheme in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(scheme)
            .seed(13)
            .build(&graph)
            .expect("scheme construction");
        let oracle: Arc<dyn dsketch::DistanceOracle> = Arc::from(outcome.sketches);
        let server = NetServer::start(
            Arc::clone(&oracle),
            ServeConfig::default(),
            NetConfig::default(),
            "127.0.0.1:0",
        )
        .expect("net server start");
        let addr = server.local_addr().to_string();
        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
        let pairs = QueryWorkload::Uniform.generate(n, queries, 7);

        let mut wire_identical = true;
        let mut typed_errors = 0u64;
        let singles = pairs.len().min(singles);
        let mut latencies = Vec::with_capacity(singles);
        for &(u, v) in &pairs[..singles] {
            let started = Instant::now();
            let wire = client.query(u, v).expect("transport");
            latencies.push(started.elapsed().as_nanos() as u64);
            match (wire, oracle.estimate(u, v)) {
                (Ok(w), Ok(d)) if w == d => {}
                (Err(_), Err(_)) => typed_errors += 1,
                _ => wire_identical = false,
            }
        }
        for chunk in pairs[singles..].chunks(64) {
            let wire = client.query_batch(chunk).expect("transport");
            assert_eq!(wire.len(), chunk.len(), "one answer slot per pair");
            for (w, d) in wire.iter().zip(oracle.estimate_batch(chunk)) {
                match (w, d) {
                    (Ok(w), Ok(d)) if *w == d => {}
                    (Err(_), Err(_)) => typed_errors += 1,
                    _ => wire_identical = false,
                }
            }
        }

        let mut http_identical = true;
        for &(u, v) in pairs.iter().take(8) {
            let response = http_get(&addr, &format!("/distance?u={}&v={}", u.0, v.0));
            let matched = match oracle.estimate(u, v) {
                Ok(d) => response.contains(&format!("\"distance\":{d}")),
                Err(_) => response.contains("\"error\""),
            };
            if !matched {
                http_identical = false;
            }
        }
        let stats_doc = http_get(&addr, "/stats");
        if !stats_doc.contains(&format!("\"num_nodes\":{n}")) {
            http_identical = false;
        }

        drop(client);
        let stats = server.shutdown();
        let p50 = crate::percentile_nanos(&mut latencies, 50.0);
        let p99 = crate::percentile_nanos(&mut latencies, 99.0);
        table.push(vec![
            scheme.to_string(),
            n.to_string(),
            queries.to_string(),
            if wire_identical { "yes" } else { "NO" }.to_string(),
            if http_identical { "yes" } else { "NO" }.to_string(),
            typed_errors.to_string(),
            stats.net.protocol_errors.to_string(),
            format!("{:.1}", p50 as f64 / 1e3),
            format!("{:.1}", p99 as f64 / 1e3),
        ]);
    }
    ExperimentResult {
        id: "e16",
        title: "Network front end: loopback wire answers vs direct oracle calls",
        claim: "once sketches are built, any node answers queries from two labels with no \
                further communication (Section 2.1) — so a network hop in front of the \
                oracle can relay answers but never change them: every wire answer and \
                every typed wire error must equal the direct call, over every scheme \
                family and both frame shapes",
        table,
    }
}

/// E17 — hot snapshot swap under sustained load.
///
/// Two swap-compatible snapshots (same graph, same scheme, different
/// construction seeds) alternate through a live [`SketchServer`] while
/// client threads hammer tagged batch queries.  Each answer is checked
/// against the offline oracle of the generation that served it — swapping
/// must never produce a wrong, torn, or failed answer — and the server's
/// own latency histogram yields the p99 to compare against a swap-free
/// baseline run of the same workload.  The load-bearing columns: `wrong`
/// and `errors` must be 0 in both rows, and the swapping row's p99 should
/// stay within small-constant reach of the baseline's (readers never block
/// on a swap; the only extra cost is cache re-misses).
fn e17_swap_under_load(quick: bool) -> ExperimentResult {
    use crate::workloads::QueryWorkload;
    use dsketch_serve::{ServeConfig, SketchServer};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let n = if quick { 96 } else { 256 };
    let swap_rounds = if quick { 6 } else { 40 };
    let client_threads = if quick { 2 } else { 4 };
    let batch = 64;

    let graph_spec = WorkloadSpec::new(Workload::ErdosRenyi, n, 42);
    let graph = graph_spec.build();
    let scheme = SchemeSpec::thorup_zwick(2);
    let dir = std::env::temp_dir().join("dsketch_e17_swap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap_a = dir.join(format!("e17_a_{n}.dsk"));
    let snap_b = dir.join(format!("e17_b_{n}.dsk"));
    // Same graph + scheme, different seeds: swap-compatible by the
    // server's gates, but with different sampled hierarchies — so a
    // stale answer checked against the wrong generation's oracle is
    // actually detectable.
    let build = |seed: u64, path: &std::path::Path| {
        dsketch_store::build_and_save(
            &graph,
            scheme,
            &SchemeConfig::default()
                .with_seed(seed)
                .with_parallel_build(),
            path,
        )
        .expect("snapshot build");
    };
    build(11, &snap_a);
    build(23, &snap_b);
    // Offline ground truth per generation: odd generations serve snapshot
    // A (the server starts at generation 1 on A; each swap increments).
    let oracle_a: Arc<dyn DistanceOracle> =
        Arc::from(dsketch_store::load_frozen_oracle(&snap_a).expect("load a"));
    let oracle_b: Arc<dyn DistanceOracle> =
        Arc::from(dsketch_store::load_frozen_oracle(&snap_b).expect("load b"));

    let pairs = Arc::new(
        QueryWorkload::parse("uniform")
            .expect("uniform workload")
            .generate(n, 4096, 7),
    );

    let mut table = Table::new(&[
        "mode",
        "queries",
        "wrong",
        "errors",
        "swaps",
        "invalidations",
        "qps",
        "p50 µs",
        "p99 µs",
    ]);
    let mut baseline_p99 = 0u64;
    for swapping in [false, true] {
        let server = Arc::new(
            SketchServer::from_snapshot(&snap_a, ServeConfig::default())
                .expect("cold start from snapshot A"),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let wrong = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let workers: Vec<_> = (0..client_threads)
            .map(|worker| {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let wrong = Arc::clone(&wrong);
                let errors = Arc::clone(&errors);
                let pairs = Arc::clone(&pairs);
                let (oracle_a, oracle_b) = (Arc::clone(&oracle_a), Arc::clone(&oracle_b));
                dsketch::parallel::spawn_named(&format!("e17-client-{worker}"), move || {
                    let client = server.client();
                    while !stop.load(Ordering::Relaxed) {
                        for chunk in pairs.chunks(batch) {
                            for ((result, generation), &(u, v)) in
                                client.query_batch_tagged(chunk).into_iter().zip(chunk)
                            {
                                let oracle = if generation % 2 == 1 {
                                    &oracle_a
                                } else {
                                    &oracle_b
                                };
                                match (result, oracle.estimate(u, v)) {
                                    (Ok(got), Ok(want)) if got == want => {}
                                    (Err(_), Err(_)) => {}
                                    (Err(_), Ok(_)) => {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                    _ => {
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        if swapping {
            // Alternate B, A, B, … — every publish lands mid-traffic.
            for round in 0..swap_rounds {
                let next = if round % 2 == 0 { &snap_b } else { &snap_a };
                server
                    .swap_snapshot(next)
                    .expect("swap-compatible snapshot");
                std::thread::sleep(Duration::from_millis(10));
            }
        } else {
            std::thread::sleep(Duration::from_millis(10 * swap_rounds as u64));
        }
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            worker.join().expect("client thread panicked");
        }
        let elapsed = started.elapsed().as_secs_f64();
        let latency = server
            .registry()
            .snapshot()
            .histogram_total("dsketch_serve_query_latency_nanos");
        let server = match Arc::try_unwrap(server) {
            Ok(server) => server,
            Err(_) => unreachable!("all client threads joined; no Arc clones remain"),
        };
        let stats = server.shutdown();
        let p99 = latency.quantile(0.99);
        if !swapping {
            baseline_p99 = p99;
        }
        table.push(vec![
            if swapping { "swapping" } else { "baseline" }.to_string(),
            stats.totals.queries.to_string(),
            wrong.load(Ordering::Relaxed).to_string(),
            errors.load(Ordering::Relaxed).to_string(),
            stats.swaps.to_string(),
            stats.totals.cache_invalidations.to_string(),
            format!("{:.0}", stats.totals.queries as f64 / elapsed),
            format!("{:.1}", latency.quantile(0.5) as f64 / 1e3),
            format!("{:.1}", p99 as f64 / 1e3),
        ]);
        assert_eq!(
            wrong.load(Ordering::Relaxed),
            0,
            "swapped answers must match some live generation"
        );
        assert_eq!(
            errors.load(Ordering::Relaxed),
            0,
            "no query may fail during swaps"
        );
    }
    let _ = baseline_p99; // the table carries the comparison; CI reads both rows
    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();
    ExperimentResult {
        id: "e17",
        title: "Hot snapshot swap: correctness and tail latency under sustained load",
        claim: "the serving layer's generation cell lets a rebuilt sketch set go live \
                without stopping traffic: readers never block on a publish, every answer \
                is exactly correct for a generation that was live during its call, and \
                the p99 under sustained swapping stays within small-constant reach of \
                the swap-free baseline (the only added cost is cache re-misses)",
        table,
    }
}

/// E18 — the chaos battery: deterministic fault injection end to end.
///
/// Three storms, each against a different layer of the serve stack, all
/// driven by seeded [`dsketch_faults`] plans so every run injects the
/// same faults at the same points:
///
/// * **Phase A** panics a serving shard mid-dispatch, once per scheme
///   family.  Shed pairs must come back as the typed retryable
///   `ShardPanicked` error (never a wrong distance), the supervisor must
///   record exactly one restart per injected panic, and a disarmed
///   recovery sweep must answer every query oracle-identically.
/// * **Phase B** fails the watch loop's rebuild and then the snapshot
///   save's fsync and rename.  The loop must back off inside the jittered
///   exponential window, leave no torn `.tmp` staging file behind, and
///   converge to a loadable, fingerprint-correct snapshot the first tick
///   after the fault budget is spent.
/// * **Phase C** corrupts the TCP front end: dropped reads, broken
///   response writes, and shed accepts (counted as overloads).  A client
///   using `connect_with_retry` must ride through every fault with
///   reconnects alone — zero wrong answers — and a clean sweep must
///   succeed once the faults exhaust.
///
/// The battery asserts it armed at least six distinct failpoints spanning
/// the store, serve, net, and watch layers, and that it leaves the
/// process fully disarmed.
fn e18_chaos_battery(quick: bool) -> ExperimentResult {
    use crate::workloads::QueryWorkload;
    use dsketch_serve::{NetClient, NetConfig, NetServer, ServeConfig, SketchServer};
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::time::Duration;

    let n = if quick { 64 } else { 128 };
    let storm_queries = if quick { 512 } else { 2_048 };
    let net_queries = if quick { 160 } else { 800 };

    dsketch_faults::disarm_all();
    let mut armed_points: BTreeSet<&'static str> = BTreeSet::new();
    let mut table = Table::new(&[
        "phase",
        "target",
        "queries",
        "injected",
        "wrong",
        "restarts",
        "recovered",
        "detail",
    ]);

    // ---- Phase A: shard panic storm, one pass per scheme family. ----
    let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 42).build();
    let pairs = QueryWorkload::Uniform.generate(n, storm_queries, 7);
    for scheme in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(scheme)
            .seed(13)
            .build(&graph)
            .expect("scheme construction");
        let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
        let server =
            SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).expect("server start");
        let client = server.client();

        // Hits 0..3 dispatch cleanly, hits 3 and 4 panic the dequeuing
        // shard — so the storm lands inside the first batches and is
        // over (trip budget spent) well before the sweep ends.
        dsketch_faults::arm_from_spec("seed=101;serve.shard.dispatch=panic,after=3,max=2")
            .expect("valid fault spec");
        armed_points.insert("serve.shard.dispatch");

        let mut wrong = 0u64;
        let mut shed = 0u64;
        for chunk in pairs.chunks(32) {
            for (mut result, &(u, v)) in client.query_batch(chunk).into_iter().zip(chunk) {
                // A panicked shard sheds its in-flight job; its pairs come
                // back `ShardPanicked`.  The error's contract is "retry":
                // the supervisor is respawning the worker, so a bounded
                // retry loop must settle (the trip budget caps repeats).
                let mut retries = 0u32;
                while matches!(result, Err(SketchError::ShardPanicked { .. })) {
                    shed += 1;
                    retries += 1;
                    assert!(
                        retries <= 64,
                        "{scheme}: retry budget exhausted for ({u}, {v})"
                    );
                    result = client.query(u, v);
                }
                match (result, oracle.estimate(u, v)) {
                    (Ok(got), Ok(want)) if got == want => {}
                    (Err(_), Err(_)) => {}
                    _ => wrong += 1,
                }
            }
        }
        let injected = dsketch_faults::registry().trips("serve.shard.dispatch");
        dsketch_faults::disarm_all();
        assert!(injected >= 1, "{scheme}: the storm must panic a shard");
        assert!(
            shed >= injected,
            "{scheme}: every panic sheds at least its in-flight job"
        );

        // Disarmed recovery sweep: restarted shards serve from fresh
        // caches and every answer must again match the oracle exactly.
        let mut recovery_wrong = 0u64;
        for chunk in pairs.chunks(64) {
            for (result, &(u, v)) in client.query_batch(chunk).into_iter().zip(chunk) {
                match (result, oracle.estimate(u, v)) {
                    (Ok(got), Ok(want)) if got == want => {}
                    (Err(SketchError::ShardPanicked { .. }), _) => recovery_wrong += 1,
                    (Err(_), Err(_)) => {}
                    _ => recovery_wrong += 1,
                }
            }
        }
        drop(client);
        let stats = server.shutdown();
        assert_eq!(wrong, 0, "{scheme}: a panic storm may shed, never corrupt");
        assert_eq!(recovery_wrong, 0, "{scheme}: recovery must be complete");
        assert_eq!(
            stats.totals.restarts, injected,
            "{scheme}: every injected panic is followed by a recorded restart"
        );
        table.push(vec![
            "A panic storm".to_string(),
            scheme.to_string(),
            (pairs.len() as u64 * 2 + shed).to_string(),
            injected.to_string(),
            (wrong + recovery_wrong).to_string(),
            stats.totals.restarts.to_string(),
            "yes".to_string(),
            format!("{shed} shed answers retried to success"),
        ]);
    }

    // ---- Phase B: watch-loop convergence under store faults. ----
    let dir = std::env::temp_dir().join("dsketch_e18_chaos");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let edges = dir.join("e18.edges");
    let snap = dir.join("e18.dsk");
    std::fs::remove_file(&snap).ok();
    let watch_graph = WorkloadSpec::new(Workload::ErdosRenyi, 32, 9).build();
    netgraph::io::save_edge_list(&watch_graph, &edges).expect("edge list");
    let mut core = dsketch_store::WatchCore::new(
        &edges,
        &snap,
        SchemeSpec::thorup_zwick(2),
        SchemeConfig::default().with_seed(5).with_parallel_build(),
    );
    // Two rebuild faults, then one fsync fault and one rename fault inside
    // the crash-safe save: four failed ticks, then convergence.
    dsketch_faults::arm_from_spec(
        "seed=7;watch.rebuild=error,max=2;store.save.fsync=error,max=1;store.save.rename=error,max=1",
    )
    .expect("valid fault spec");
    armed_points.extend(["watch.rebuild", "store.save.fsync", "store.save.rename"]);

    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(160);
    let mut failed_ticks = 0u32;
    let mut ticks = 0u32;
    let converged = loop {
        ticks += 1;
        assert!(
            ticks <= 16,
            "watch must converge once the fault budget is spent"
        );
        match core.check_once() {
            Ok(outcome) => break outcome,
            Err(_) => {
                failed_ticks += 1;
                assert_eq!(core.consecutive_failures(), failed_ticks);
                let raw = base.saturating_mul(2u32.pow(failed_ticks.min(16))).min(cap);
                let delay = core.next_delay(base, cap);
                assert!(
                    delay >= raw / 2 && delay <= raw,
                    "failed tick {failed_ticks}: backoff {delay:?} outside [{:?}, {raw:?}]",
                    raw / 2
                );
                // A failed save must never leave a torn staging file.
                let litter = dir
                    .read_dir()
                    .expect("temp dir listing")
                    .filter_map(|entry| entry.ok())
                    .any(|entry| entry.path().extension().is_some_and(|ext| ext == "tmp"));
                assert!(!litter, "no .tmp staging litter after a failed tick");
            }
        }
    };
    let watch_injected = dsketch_faults::registry().total_trips();
    dsketch_faults::disarm_all();
    assert!(
        matches!(converged, dsketch_store::WatchOutcome::Rebuilt { nodes, .. } if nodes == 32),
        "convergence tick rebuilds the watched graph"
    );
    assert_eq!(
        failed_ticks, 4,
        "two rebuild faults + fsync + rename cost one tick each"
    );
    assert_eq!(core.consecutive_failures(), 0);
    assert_eq!(core.next_delay(base, cap), base, "healthy cadence restored");
    let (_, stored) = dsketch_store::peek_snapshot_meta(&snap).expect("converged snapshot header");
    assert_eq!(
        stored,
        watch_graph.fingerprint(),
        "snapshot tracks the graph"
    );
    dsketch_store::load_frozen_oracle(&snap).expect("converged snapshot loads");
    table.push(vec![
        "B watch storm".to_string(),
        "rebuild loop".to_string(),
        ticks.to_string(),
        watch_injected.to_string(),
        "0".to_string(),
        "-".to_string(),
        "yes".to_string(),
        format!("{failed_ticks} failed ticks, converged on tick {ticks}, no .tmp litter"),
    ]);

    // ---- Phase C: TCP front end under read/write/accept faults. ----
    let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
        .seed(13)
        .build(&graph)
        .expect("scheme construction");
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let server = NetServer::start(
        Arc::clone(&oracle),
        ServeConfig::default(),
        NetConfig::default(),
        "127.0.0.1:0",
    )
    .expect("net server start");
    let addr = server.local_addr().to_string();
    // The first two accepted connections are shed with a 503 (overload
    // path), every ~4th frame read drops the connection, and two response
    // writes break mid-storm.
    dsketch_faults::arm_from_spec(
        "seed=13;net.read.frame=error,one_in=4,max=6;net.write.frame=error,after=20,max=2;net.accept.handoff=error,max=2",
    )
    .expect("valid fault spec");
    armed_points.extend(["net.read.frame", "net.write.frame", "net.accept.handoff"]);

    let timeout = Duration::from_secs(5);
    let deadline = Duration::from_secs(10);
    let mut client = NetClient::connect_with_retry(&addr, timeout, deadline).expect("connect");
    let net_pairs = QueryWorkload::Uniform.generate(n, net_queries, 21);
    let mut reconnects = 0u64;
    let mut net_wrong = 0u64;
    for &(u, v) in &net_pairs {
        let answer = loop {
            match client.query(u, v) {
                Ok(answer) => break answer,
                Err(_) => {
                    // Transport faults (dropped reads, broken writes, shed
                    // accepts) surface as connection errors; ride through
                    // with the backoff-retrying reconnect.
                    reconnects += 1;
                    assert!(reconnects <= 256, "transport retry budget exhausted");
                    client = NetClient::connect_with_retry(&addr, timeout, deadline)
                        .expect("reconnect within deadline");
                }
            }
        };
        match (answer, oracle.estimate(u, v)) {
            (Ok(got), Ok(want)) if got == want => {}
            (Err(_), Err(_)) => {}
            _ => net_wrong += 1,
        }
    }
    let read_trips = dsketch_faults::registry().trips("net.read.frame");
    let write_trips = dsketch_faults::registry().trips("net.write.frame");
    let handoff_trips = dsketch_faults::registry().trips("net.accept.handoff");
    dsketch_faults::disarm_all();
    assert!(
        read_trips >= 1,
        "the storm must drop at least one frame read"
    );
    assert_eq!(handoff_trips, 2, "both shed-accept trips must fire");
    assert!(
        reconnects >= read_trips,
        "every dropped read costs (at least) one reconnect"
    );

    // Clean sweep with the faults disarmed: one connection, no errors.
    let mut client =
        NetClient::connect_with_retry(&addr, timeout, deadline).expect("clean reconnect");
    client.ping().expect("ping after the storm");
    for &(u, v) in net_pairs.iter().take(64) {
        let answer = client.query(u, v).expect("clean transport");
        match (answer, oracle.estimate(u, v)) {
            (Ok(got), Ok(want)) if got == want => {}
            (Err(_), Err(_)) => {}
            other => panic!("post-storm answer diverged for ({u}, {v}): {other:?}"),
        }
    }
    drop(client);
    let net_stats = server.shutdown();
    assert_eq!(net_wrong, 0, "net faults cost availability, never answers");
    assert_eq!(
        net_stats.net.overloads, handoff_trips,
        "every shed accept is counted as an overload"
    );
    table.push(vec![
        "C net storm".to_string(),
        "tcp front end".to_string(),
        (net_pairs.len() as u64 + 64).to_string(),
        (read_trips + write_trips + handoff_trips).to_string(),
        net_wrong.to_string(),
        "-".to_string(),
        "yes".to_string(),
        format!("{reconnects} reconnects, {handoff_trips} overload 503s"),
    ]);

    assert!(
        armed_points.len() >= 6,
        "the battery must span at least six distinct failpoints: {armed_points:?}"
    );
    for layer in ["store.", "serve.", "net.", "watch."] {
        assert!(
            armed_points.iter().any(|point| point.starts_with(layer)),
            "the battery must cover the {layer} layer: {armed_points:?}"
        );
    }
    assert_eq!(
        dsketch_faults::registry().armed_points(),
        0,
        "e18 must leave the process disarmed"
    );
    std::fs::remove_file(&edges).ok();
    std::fs::remove_file(&snap).ok();
    ExperimentResult {
        id: "e18",
        title: "Chaos battery: deterministic fault injection across the serve stack",
        claim: "a deterministic, label-only serving stack degrades only in availability, \
                never in correctness: injected shard panics, torn saves, failed rebuild \
                ticks, dropped frames, and shed accepts each surface as typed, retryable \
                errors while every answer that is delivered — during the storm and after \
                recovery — exactly matches the offline oracle, with every panic matched \
                by a recorded supervisor restart",
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        for id in EXPERIMENT_IDS {
            // Only construct, don't run (running all would be slow in debug);
            // e6 and e8 are cheap enough to smoke-test here.
            assert!(EXPERIMENT_IDS.contains(&id));
        }
        assert!(run_experiment("nope", true).is_none());
    }

    #[test]
    fn e6_quick_runs_and_has_rows() {
        let result = run_experiment("e6", true).unwrap();
        assert_eq!(result.id, "e6");
        assert_eq!(result.table.len(), 4);
        assert!(result.to_markdown().contains("E6"));
        // Every sampled net must satisfy both properties on this workload.
        for row in &result.table.rows {
            assert_eq!(row[4], "0", "coverage violations must be zero: {row:?}");
        }
    }

    #[test]
    fn e8_quick_shows_zero_mismatches() {
        let result = run_experiment("e8", true).unwrap();
        for row in &result.table.rows {
            assert_eq!(row[3], "0", "pivot mismatch: {row:?}");
            assert_eq!(row[4], "0", "bunch mismatch: {row:?}");
        }
    }

    #[test]
    fn e12_quick_shows_the_cache_hit_spread() {
        let result = run_experiment("e12", true).unwrap();
        assert_eq!(result.id, "e12");
        // 2 schemes × 3 traffic shapes.
        assert_eq!(result.table.len(), 6);
        for row in &result.table.rows {
            assert_eq!(row[3], "8000", "every replay answers all queries: {row:?}");
            assert_eq!(row[4], "4", "default shard count: {row:?}");
            match row[2].as_str() {
                // Never-repeating pairs defeat any LRU cache.
                "adversarial" => assert_eq!(row[6], "0.0%", "{row:?}"),
                // Zipf traffic concentrates on few pairs: hits dominate.
                "hotspot" => {
                    let hit: f64 = row[6].trim_end_matches('%').parse().unwrap();
                    assert!(hit > 50.0, "hotspot should mostly hit: {row:?}");
                }
                _ => {}
            }
            if row[1].starts_with("tz") {
                assert_eq!(row[7], "0", "TZ queries never fail: {row:?}");
            }
        }
    }

    #[test]
    fn e13_quick_round_trips_identically_and_loads_faster_than_rebuild() {
        let result = run_experiment("e13", true).unwrap();
        assert_eq!(result.id, "e13");
        // One row per scheme family in quick mode.
        assert_eq!(result.table.len(), 4);
        for row in &result.table.rows {
            assert_eq!(
                row[7], "yes",
                "loaded oracle must answer bit-identically: {row:?}"
            );
            let build_ms: f64 = row[2].parse().unwrap();
            let load_ms: f64 = row[5].parse().unwrap();
            assert!(
                load_ms < build_ms,
                "cold start must beat rebuild even at toy sizes: {row:?}"
            );
        }
    }

    #[test]
    fn e15_quick_is_answer_identical_and_writes_the_json_baseline() {
        // Divert the JSON to a temp path: a test run must never overwrite
        // the committed full-mode BENCH_query.json at the repo root.
        let json_path = std::env::temp_dir().join("dsketch_e15_test_BENCH_query.json");
        std::env::set_var("DSKETCH_BENCH_JSON", &json_path);
        let result = run_experiment("e15", true).unwrap();
        std::env::remove_var("DSKETCH_BENCH_JSON");
        assert_eq!(result.id, "e15");
        // 4 families × 2 batch sizes.
        assert_eq!(result.table.len(), 8);
        for row in &result.table.rows {
            assert_eq!(
                row[7], "yes",
                "flat and btree answers must be identical: {row:?}"
            );
        }
        let json = std::fs::read_to_string(&json_path).expect("BENCH_query.json written");
        std::fs::remove_file(&json_path).ok();
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"flat_qps\""));
        assert!(!json.contains("\"identical\": false"), "{json}");
    }

    #[test]
    fn e17_quick_swaps_without_wrong_answers_or_errors() {
        let result = run_experiment("e17", true).unwrap();
        assert_eq!(result.id, "e17");
        assert_eq!(result.table.len(), 2, "baseline row + swapping row");
        let baseline = &result.table.rows[0];
        let swapping = &result.table.rows[1];
        assert_eq!(baseline[0], "baseline");
        assert_eq!(swapping[0], "swapping");
        for row in [baseline, swapping] {
            assert_eq!(row[2], "0", "wrong answers: {row:?}");
            assert_eq!(row[3], "0", "failed queries: {row:?}");
        }
        assert_eq!(baseline[4], "0", "baseline performs no swaps");
        assert!(
            swapping[4].parse::<u64>().unwrap() >= 6,
            "swapping row records every publish: {swapping:?}"
        );
    }

    #[test]
    fn e16_quick_serves_wire_answers_identical_to_direct_calls() {
        let result = run_experiment("e16", true).unwrap();
        assert_eq!(result.id, "e16");
        // One row per scheme family.
        assert_eq!(result.table.len(), 4);
        for row in &result.table.rows {
            assert_eq!(row[3], "yes", "wire answers must equal direct: {row:?}");
            assert_eq!(row[4], "yes", "http answers must equal direct: {row:?}");
            assert_eq!(
                row[6], "0",
                "clean clients cause no protocol errors: {row:?}"
            );
        }
    }

    #[test]
    fn e14_quick_is_bit_identical_across_thread_counts() {
        let result = run_experiment("e14", true).unwrap();
        assert_eq!(result.id, "e14");
        // 4 scheme families × 3 thread counts.
        assert_eq!(result.table.len(), 12);
        for row in &result.table.rows {
            assert_eq!(
                row[6], "yes",
                "snapshots must be byte-identical across thread counts: {row:?}"
            );
            let ms: f64 = row[4].parse().unwrap();
            assert!(ms >= 0.0);
        }
    }

    #[test]
    fn e11_quick_covers_every_family_on_every_workload() {
        let result = run_experiment("e11", true).unwrap();
        assert_eq!(result.id, "e11");
        // 3 workloads × 4 scheme families.
        assert_eq!(result.table.len(), 12);
        for scheme in SchemeSpec::all_families() {
            let rows = result
                .table
                .rows
                .iter()
                .filter(|r| r[1] == scheme.to_string())
                .count();
            assert_eq!(rows, 3, "{scheme} should appear once per workload");
        }
        for row in &result.table.rows {
            let worst: f64 = row[3].parse().unwrap();
            let avg: f64 = row[4].parse().unwrap();
            assert!(worst >= avg && avg >= 1.0, "stretch ordering: {row:?}");
            // Thorup–Zwick must respect its bound over all pairs.
            if row[1].starts_with("tz") {
                let bound: f64 = row[2].parse().unwrap();
                assert!(worst <= bound + 1e-9, "TZ bound violated: {row:?}");
                assert_eq!(row[5], "0", "TZ queries never fail: {row:?}");
            }
        }
    }
}
