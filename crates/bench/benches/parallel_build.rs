//! Bench for the direct parallel construction engine (`dsketch::build`):
//! how wall-clock build time scales with the worker-thread count, and how
//! the direct engine compares against the CONGEST simulation at equal
//! output.
//!
//! The output is identical at every thread count (experiment `e14` and the
//! `parallel_build` integration suite assert byte-identical snapshots);
//! this bench measures only the speed.  Meaningful speedup requires a host
//! with more than one core — the determinism results hold regardless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

/// Thread-scaling of the parallel engine on a graph big enough for the
/// cluster phase to dominate.
fn bench_parallel_threads(c: &mut Criterion) {
    let graph = WorkloadSpec::new(Workload::ErdosRenyi, 1024, 42).build();
    let scheme = ThorupZwickScheme::new(3);

    let mut group = c.benchmark_group("parallel_build_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &threads| {
                let config = SchemeConfig::default()
                    .with_seed(7)
                    .with_parallel_build()
                    .with_threads(threads);
                b.iter(|| {
                    let outcome = scheme.build(&graph, &config).unwrap();
                    black_box(outcome.sketches.sketches.max_words())
                })
            },
        );
    }
    group.finish();
}

/// Direct engine vs CONGEST simulation at a size the simulator can still
/// handle in a bench iteration: the price of paper-faithful accounting.
fn bench_engine_comparison(c: &mut Criterion) {
    let graph = WorkloadSpec::new(Workload::ErdosRenyi, 256, 42).build();
    let scheme = ThorupZwickScheme::new(3);

    let mut group = c.benchmark_group("build_engine_comparison");
    group.sample_size(10);
    for (label, config) in [
        ("congest", SchemeConfig::default().with_seed(7)),
        (
            "parallel",
            SchemeConfig::default().with_seed(7).with_parallel_build(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let outcome = scheme.build(&graph, config).unwrap();
                black_box(outcome.sketches.sketches.max_words())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_threads, bench_engine_comparison);
criterion_main!(benches);
