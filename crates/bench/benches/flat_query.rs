//! Criterion bench for the frozen flat query path: `BTreeMap`-backed
//! sketches vs the `FlatSketchSet` CSR layout, per family, single and
//! batched submission.
//!
//! The interesting comparison is `btree/*` vs `flat/*` within one family:
//! identical answers, with every bunch probe turned from B-tree pointer
//! chasing into a binary search (level walk) or linear merge (best common)
//! over contiguous arrays.  Experiment `e15` measures the same matrix with
//! wall-clock throughput numbers and writes `BENCH_query.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsketch::prelude::*;
use dsketch_bench::workloads::{QueryWorkload, Workload, WorkloadSpec};
use dsketch_store::build_stored;
use std::hint::black_box;

fn bench_flat_query(c: &mut Criterion) {
    let n = 512;
    let graph = WorkloadSpec::new(Workload::ErdosRenyi, n, 13).build();
    let pairs = QueryWorkload::Uniform.generate(n, 8192, 7);

    let mut group = c.benchmark_group("flat_query");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for spec in SchemeSpec::all_families() {
        let contents = build_stored(
            &graph,
            spec,
            &SchemeConfig::default().with_seed(5).with_parallel_build(),
        )
        .expect("construction");
        let flat = contents.sketches.freeze();
        let btree = contents.sketches.as_oracle();

        group.bench_function(format!("btree/{spec}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &(u, v) in &pairs {
                    total = total.wrapping_add(btree.estimate(u, v).unwrap_or(u64::MAX));
                }
                black_box(total)
            })
        });
        group.bench_function(format!("flat/{spec}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &(u, v) in &pairs {
                    total = total.wrapping_add(flat.estimate(u, v).unwrap_or(u64::MAX));
                }
                black_box(total)
            })
        });
        group.bench_function(format!("flat_batched/{spec}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for chunk in pairs.chunks(256) {
                    for result in flat.estimate_batch(chunk) {
                        total = total.wrapping_add(result.unwrap_or(u64::MAX));
                    }
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_query);
criterion_main!(benches);
