//! Criterion bench for experiment E5 (Theorem 4.8 / Corollary 4.9): cost of
//! the layered gracefully degrading construction vs a single Thorup–Zwick
//! construction of comparable worst-case stretch.

use criterion::{criterion_group, criterion_main, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_degrading(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 96, 17);
    let graph = spec.build();
    let config = SchemeConfig::default().with_seed(3);

    let mut group = c.benchmark_group("e5_degrading");
    group.sample_size(10);
    group.bench_function("layered_degrading", |b| {
        let scheme = DegradingScheme::new().with_max_k(3);
        b.iter(|| {
            let outcome = scheme.build(&graph, &config).unwrap();
            black_box(outcome.stats.rounds)
        })
    });
    group.bench_function("plain_tz_log_n", |b| {
        let scheme = ThorupZwickScheme::log_n(graph.num_nodes());
        b.iter(|| {
            let outcome = scheme.build(&graph, &config).unwrap();
            black_box(outcome.stats.rounds)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_degrading);
criterion_main!(benches);
