//! Criterion bench for experiment E5 (Theorem 4.8 / Corollary 4.9): cost of
//! the layered gracefully degrading construction vs a single Thorup–Zwick
//! construction of comparable worst-case stretch.

use criterion::{criterion_group, criterion_main, Criterion};
use dsketch::prelude::*;
use dsketch::slack::degrading::{DegradingParams, DistributedDegrading};
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_degrading(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 96, 17);
    let graph = spec.build();

    let mut group = c.benchmark_group("e5_degrading");
    group.sample_size(10);
    group.bench_function("layered_degrading", |b| {
        b.iter(|| {
            let s = DistributedDegrading::run(
                &graph,
                DegradingParams::new(3).with_max_k(3),
                DistributedTzConfig::default(),
            )
            .unwrap();
            black_box(s.stats.rounds)
        })
    });
    group.bench_function("plain_tz_log_n", |b| {
        b.iter(|| {
            let result = DistributedTz::run(
                &graph,
                &TzParams::log_n(graph.num_nodes()).with_seed(3),
                DistributedTzConfig::default(),
            );
            black_box(result.stats.rounds)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_degrading);
criterion_main!(benches);
