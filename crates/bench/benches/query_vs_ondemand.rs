//! Criterion bench for experiments E7/E9: local query time from two sketches
//! (the online operation the whole paper optimizes for) versus an on-demand
//! simulated Bellman–Ford, plus the query cost of the slack variants.

use congest_sim::programs::bellman_ford::BellmanFordProgram;
use congest_sim::Network;
use criterion::{criterion_group, criterion_main, Criterion};
use dsketch::prelude::*;
use dsketch::query::estimate_distance_best_common;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use netgraph::NodeId;
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 192, 13);
    let graph = spec.build();
    let outcome = ThorupZwickScheme::new(3)
        .build(&graph, &SchemeConfig::default().with_seed(5))
        .unwrap();
    let oracle = &outcome.sketches;
    let pairs: Vec<(NodeId, NodeId)> = (0..64u32)
        .map(|i| (NodeId(i % 192), NodeId((i * 73 + 17) % 192)))
        .filter(|(u, v)| u != v)
        .collect();

    let mut group = c.benchmark_group("e7_query");
    group.bench_function("sketch_level_walk", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &(u, v) in &pairs {
                total += oracle.estimate(u, v).unwrap();
            }
            black_box(total)
        })
    });
    group.bench_function("sketch_best_common", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &(u, v) in &pairs {
                total += estimate_distance_best_common(
                    oracle.sketches.sketch(u),
                    oracle.sketches.sketch(v),
                )
                .unwrap();
            }
            black_box(total)
        })
    });
    group.sample_size(10);
    group.bench_function("ondemand_bellman_ford_one_query", |b| {
        b.iter(|| {
            let mut net = Network::new(&graph, CongestConfig::default(), |x| {
                BellmanFordProgram::new(x, x == NodeId(0))
            });
            let run = net.run_until_quiescent(u64::MAX);
            black_box(run.stats.rounds)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
