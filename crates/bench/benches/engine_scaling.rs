//! Ablation bench for the simulator engine itself (DESIGN.md §4.4): how the
//! wall-clock cost of simulating the distributed construction changes with
//! the number of worker threads used for the per-round compute step.
//!
//! The results must be *identical* regardless of thread count (asserted by
//! the integration tests); this bench measures only the speed of the
//! simulation harness, i.e. the HPC-parallel ablation of the engine design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_engine_threads(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 256, 42);
    let graph = spec.build();
    let scheme = ThorupZwickScheme::new(3);

    let mut group = c.benchmark_group("engine_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads={threads}")),
            &threads,
            |b, &threads| {
                let config = SchemeConfig::default()
                    .with_seed(7)
                    .with_congest(CongestConfig {
                        num_threads: threads,
                        ..Default::default()
                    });
                b.iter(|| {
                    let outcome = scheme.build(&graph, &config).unwrap();
                    black_box(outcome.stats.messages)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_threads);
criterion_main!(benches);
