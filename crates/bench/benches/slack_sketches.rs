//! Criterion bench for experiments E3/E4 (Theorems 4.3 and 4.6): slack
//! sketch construction cost as the slack parameter ε varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_slack(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 128, 21);
    let graph = spec.build();

    let mut group = c.benchmark_group("e3_three_stretch");
    group.sample_size(10);
    for eps in [0.4f64, 0.2, 0.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={eps}")),
            &eps,
            |b, &eps| {
                let builder = SketchBuilder::three_stretch(eps).seed(9);
                b.iter(|| {
                    let outcome = builder.build(&graph).unwrap();
                    black_box(outcome.stats.rounds)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e4_cdg");
    group.sample_size(10);
    for (eps, k) in [(0.2f64, 2usize), (0.1, 2), (0.05, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={eps}_k={k}")),
            &(eps, k),
            |b, &(eps, k)| {
                let builder = SketchBuilder::cdg(eps, k).seed(3);
                b.iter(|| {
                    let outcome = builder.build(&graph).unwrap();
                    black_box(outcome.stats.rounds)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_slack);
criterion_main!(benches);
