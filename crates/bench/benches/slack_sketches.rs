//! Criterion bench for experiments E3/E4 (Theorems 4.3 and 4.6): slack
//! sketch construction cost as the slack parameter ε varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsketch::distributed::DistributedTzConfig;
use dsketch::slack::cdg::{CdgParams, DistributedCdg};
use dsketch::slack::three_stretch::DistributedThreeStretch;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_slack(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 128, 21);
    let graph = spec.build();

    let mut group = c.benchmark_group("e3_three_stretch");
    group.sample_size(10);
    for eps in [0.4f64, 0.2, 0.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let s = DistributedThreeStretch::run(
                        &graph,
                        eps,
                        9,
                        congest_sim::CongestConfig::default(),
                        u64::MAX,
                    )
                    .unwrap();
                    black_box(s.stats.rounds)
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e4_cdg");
    group.sample_size(10);
    for (eps, k) in [(0.2f64, 2usize), (0.1, 2), (0.05, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={eps}_k={k}")),
            &(eps, k),
            |b, &(eps, k)| {
                b.iter(|| {
                    let s = DistributedCdg::run(
                        &graph,
                        CdgParams::new(eps, k).with_seed(3),
                        DistributedTzConfig::default(),
                    )
                    .unwrap();
                    black_box(s.stats.rounds)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_slack);
criterion_main!(benches);
