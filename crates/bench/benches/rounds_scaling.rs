//! Criterion bench for experiments E2/E10 (Theorem 3.8): how the simulated
//! construction scales with the network size and with the shortest-path
//! diameter `S`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_rounds_scaling");
    group.sample_size(10);
    let scheme = ThorupZwickScheme::new(2);
    let config = SchemeConfig::default().with_seed(3);
    for family in [Workload::ErdosRenyi, Workload::Ring] {
        for n in [64usize, 128, 256] {
            let spec = WorkloadSpec::new(family, n, 77);
            let graph = spec.build();
            group.throughput(Throughput::Elements(graph.num_edges() as u64));
            group.bench_with_input(BenchmarkId::new(family.name(), n), &n, |b, _| {
                b.iter(|| {
                    let outcome = scheme.build(&graph, &config).unwrap();
                    black_box(outcome.stats.messages)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
