//! Criterion bench for experiment E1 (Theorem 1.1): construction cost of
//! Thorup–Zwick sketches as `k` varies, distributed vs centralized.
//!
//! The experiment harness (`--bin experiments -- e1`) reports rounds,
//! messages, sizes and stretch; this bench reports wall-clock time of the
//! simulated distributed construction and of the centralized baseline on the
//! same workloads, i.e. the "construction cost" axis of the trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{Workload, WorkloadSpec};
use std::hint::black_box;

fn bench_tz_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_tz_construction");
    group.sample_size(10);
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 128, 42);
    let graph = spec.build();

    for k in [1usize, 2, 3, 4] {
        let scheme = ThorupZwickScheme::new(k);
        let config = SchemeConfig::default().with_seed(7);
        group.bench_with_input(BenchmarkId::new("distributed", k), &k, |b, _| {
            b.iter(|| {
                let outcome = scheme.build(&graph, &config).unwrap();
                black_box(outcome.stats.rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("centralized", k), &k, |b, _| {
            b.iter(|| {
                let (h, _) = Hierarchy::sample_until_top_nonempty(
                    graph.num_nodes(),
                    &TzParams::new(k).with_seed(7),
                    500,
                )
                .unwrap();
                let tz = CentralizedTz::build(&graph, &h);
                black_box(tz.sketches.max_words())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tz_construction);
criterion_main!(benches);
