//! Criterion bench for the serving layer: direct oracle calls vs the
//! sharded server, single vs batched submission, cache-friendly vs
//! cache-adversarial traffic.
//!
//! The interesting comparisons: batching should recover most of the channel
//! round-trip cost that single queries pay, and hotspot traffic should beat
//! adversarial traffic thanks to the per-shard LRU caches.

use criterion::{criterion_group, criterion_main, Criterion};
use dsketch::prelude::*;
use dsketch_bench::workloads::{QueryWorkload, Workload, WorkloadSpec};
use dsketch_serve::{ServeConfig, SketchServer};
use std::hint::black_box;
use std::sync::Arc;

fn bench_query_throughput(c: &mut Criterion) {
    let spec = WorkloadSpec::new(Workload::ErdosRenyi, 192, 13);
    let graph = spec.build();
    let outcome = SketchBuilder::thorup_zwick(3)
        .seed(5)
        .build(&graph)
        .unwrap();
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let n = graph.num_nodes();

    let mut group = c.benchmark_group("query_throughput");
    for shape in QueryWorkload::all() {
        let pairs = shape.generate(n, 4096, 7);

        group.bench_function(format!("direct/{}", shape.name()), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &(u, v) in &pairs {
                    total += oracle.estimate(u, v).unwrap_or(0);
                }
                black_box(total)
            })
        });

        let server = SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).unwrap();
        let client = server.client();
        group.bench_function(format!("server_batched/{}", shape.name()), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for chunk in pairs.chunks(256) {
                    for result in client.query_batch(chunk) {
                        total += result.unwrap_or(0);
                    }
                }
                black_box(total)
            })
        });
        group.sample_size(10);
        group.bench_function(format!("server_single/{}", shape.name()), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &(u, v) in &pairs[..512] {
                    total += client.query(u, v).unwrap_or(0);
                }
                black_box(total)
            })
        });
        drop(client);
        drop(server);
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
