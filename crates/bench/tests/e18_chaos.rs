//! Tier-1 coverage for the e18 chaos battery.
//!
//! e18 arms process-global failpoints (and deliberately panics serving
//! shards), so it cannot share a test process with the rest of the suite:
//! this test runs the `experiments` binary as a subprocess, exactly the
//! way CI's chaos smoke step does, and checks both the exit status and
//! the load-bearing rows of its table.

use std::process::Command;

#[test]
fn e18_quick_battery_passes_in_a_subprocess() {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e18", "--quick"])
        .output()
        .expect("spawn the experiments binary");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "e18 --quick failed\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );

    // The experiment hard-asserts its invariants internally (zero wrong
    // answers, restarts == injected panics, convergence, disarm); here we
    // only pin the visible shape so a silently skipped phase fails loudly.
    assert!(stdout.contains("E18"), "banner missing:\n{stdout}");
    for phase in ["A panic storm", "B watch storm", "C net storm"] {
        assert!(
            stdout.contains(phase),
            "phase row missing ({phase}):\n{stdout}"
        );
    }
    // One storm row per scheme family, each healed.
    assert_eq!(
        stdout.matches("A panic storm").count(),
        4,
        "one panic-storm row per scheme family:\n{stdout}"
    );
    assert_eq!(
        stdout.matches("yes").count(),
        6,
        "every battery row reports recovery:\n{stdout}"
    );
    // The injected shard panics unwind through real worker threads; their
    // traces land on stderr and prove the storm actually fired.
    assert!(
        stderr.contains("injected fault: failpoint 'serve.shard.dispatch'"),
        "expected injected-panic traces on stderr:\n{stderr}"
    );
}
