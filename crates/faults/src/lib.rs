//! `dsketch-faults` — deterministic, process-global fault injection.
//!
//! Robustness claims ("the server keeps answering through a shard panic",
//! "a torn snapshot write never poisons the next cold start") are only as
//! good as the faults they were tested against.  This crate provides the
//! faults: code under test declares **named failpoints** with
//! [`fail_point!`], and a test, an operator (`DSKETCH_FAULTS=...`), or a
//! debug endpoint arms a seeded [`FaultPlan`] that decides — repeatably —
//! which hits of which points trip which [`FaultAction`].
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disarmed.**  A disarmed [`fail_point!`] is one
//!    relaxed load of a process-global atomic (no lock, no allocation, no
//!    string hash).  Production binaries keep their failpoints compiled in;
//!    the chaos battery (`e18`) proves the disarmed counter stays at zero.
//! 2. **Deterministic.**  Whether hit number `i` of point `p` trips is a
//!    pure function of `(plan seed, p, i)` — a SplitMix64 draw over the
//!    FNV-1a hash of the point name — so a failing chaos run replays
//!    exactly from its seed.  "Trip on the k-th hit" is the special case
//!    `after = k − 1, one_in = 1, max = 1`.
//! 3. **Dependency-free.**  `std` only: the crate sits below `store`,
//!    `serve`, and `bench` in the workspace graph and must never create a
//!    cycle or pull a vendored shim into every build.
//!
//! # Actions
//!
//! | action       | effect at the failpoint                                   |
//! |--------------|-----------------------------------------------------------|
//! | `error`      | [`hit`] returns [`Fault::Error`]; the site maps it to its typed error |
//! | `panic`      | [`hit`] panics (named after the point) — exercises supervisors |
//! | `delay:MS`   | [`hit`] sleeps `MS` milliseconds, then returns `None` — exercises deadlines |
//! | `partial:N`  | [`hit`] returns [`Fault::Partial`]; IO wrappers cut the stream after `N` bytes |
//!
//! # Spec grammar
//!
//! The env var `DSKETCH_FAULTS` and the serve layer's `POST /faults`
//! endpoint share one grammar: `;`-separated clauses, each either
//! `seed=N` or `point=action[,modifier...]` with modifiers `one_in=N`
//! (trip a deterministic 1-in-N subset of eligible hits), `after=N` (skip
//! the first N hits), and `max=N` (cap total trips).
//!
//! ```
//! let plan = dsketch_faults::FaultPlan::parse(
//!     "seed=7;store.save.rename=error,one_in=4;net.read.frame=delay:25,after=2,max=3",
//! )
//! .unwrap();
//! dsketch_faults::registry().arm(&plan);
//! assert_eq!(dsketch_faults::registry().armed_points(), 2);
//! dsketch_faults::disarm_all();
//! assert!(!dsketch_faults::armed());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Number of points currently armed in the global registry.  The
/// [`fail_point!`] fast path is one relaxed load of this counter; every
/// arm/disarm stores it under the registry lock.
static ARMED_POINTS: AtomicUsize = AtomicUsize::new(0);

/// `true` when at least one failpoint is armed in the global registry.
/// One relaxed atomic load — this is the whole cost of a disarmed
/// failpoint.
#[inline]
pub fn armed() -> bool {
    ARMED_POINTS.load(Ordering::Relaxed) != 0
}

/// Declare a named failpoint: `fail_point!("store.save.rename")`.
///
/// Expands to a call of [`hit`] — returns `None` when disarmed (the
/// overwhelmingly common case, at the cost of one atomic load) and
/// `Some(`[`Fault`]`)` when an armed plan trips here.  `delay` actions
/// sleep and `panic` actions panic *inside* the macro; the caller only
/// ever sees the faults it has to map to its own error type.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::hit($name)
    };
}

/// What an armed plan does when a point trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Surface as the call site's typed error.
    Error,
    /// Panic at the failpoint (the panic message names the point).
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Cut a wrapped IO stream after this many bytes ([`FaultWriter`] /
    /// [`FaultReader`]); plain call sites treat it like [`FaultAction::Error`].
    Partial(u64),
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Error => write!(f, "error"),
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Delay(ms) => write!(f, "delay:{ms}"),
            FaultAction::Partial(n) => write!(f, "partial:{n}"),
        }
    }
}

/// The fault a call site must handle after [`hit`] returns `Some`.
/// (`Delay` and `Panic` never reach the caller — they happen inside
/// [`hit`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with the site's typed error.
    Error,
    /// Let this many bytes through, then fail (torn write / short read).
    Partial(u64),
}

impl Fault {
    /// Render this fault as an `std::io::Error`, named after the point —
    /// the common mapping for IO-shaped call sites.
    pub fn io_error(&self, point: &str) -> std::io::Error {
        match self {
            Fault::Error => std::io::Error::other(format!("injected fault at '{point}'")),
            Fault::Partial(n) => std::io::Error::other(format!(
                "injected partial-IO fault at '{point}' (cut after {n} bytes)"
            )),
        }
    }
}

/// The trip schedule for one failpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointPlan {
    /// What happens when the point trips.
    pub action: FaultAction,
    /// Trip a deterministic 1-in-N subset of eligible hits (`1` = every
    /// eligible hit; `0` is treated as `1`).
    pub one_in: u64,
    /// Skip the first N hits entirely.
    pub after: u64,
    /// Stop tripping after this many trips (`u64::MAX` = unlimited).
    pub max: u64,
}

impl PointPlan {
    /// A plan that trips `action` on every hit.
    pub fn new(action: FaultAction) -> PointPlan {
        PointPlan {
            action,
            one_in: 1,
            after: 0,
            max: u64::MAX,
        }
    }

    /// Trip exactly once, on the k-th hit (1-based).
    pub fn on_hit(k: u64, action: FaultAction) -> PointPlan {
        PointPlan {
            action,
            one_in: 1,
            after: k.saturating_sub(1),
            max: 1,
        }
    }

    /// Replace the 1-in-N trip rate.
    pub fn one_in(mut self, n: u64) -> PointPlan {
        self.one_in = n;
        self
    }

    /// Skip the first `n` hits.
    pub fn after(mut self, n: u64) -> PointPlan {
        self.after = n;
        self
    }

    /// Cap total trips at `n`.
    pub fn max(mut self, n: u64) -> PointPlan {
        self.max = n;
        self
    }
}

/// A seeded set of [`PointPlan`]s, ready to arm in a [`FaultRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic 1-in-N draws (mixed per point with the
    /// FNV-1a hash of the point name).
    pub seed: u64,
    points: BTreeMap<String, PointPlan>,
}

/// A malformed fault spec (env var or `POST /faults` body); the message
/// names the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// An empty plan with `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            points: BTreeMap::new(),
        }
    }

    /// Add (or replace) the plan for one point.
    pub fn with_point(mut self, name: &str, plan: PointPlan) -> FaultPlan {
        self.points.insert(name.to_string(), plan);
        self
    }

    /// Number of points in the plan.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the plan arms no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Parse the spec grammar (see the module docs):
    /// `seed=7;store.save.rename=error,one_in=4;net.read.frame=delay:25,after=2,max=3`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (name, rest) = clause
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("clause '{clause}' has no '='")))?;
            let (name, rest) = (name.trim(), rest.trim());
            if name == "seed" {
                plan.seed = rest
                    .parse()
                    .map_err(|_| FaultSpecError(format!("seed '{rest}' is not a u64")))?;
                continue;
            }
            if name.is_empty() {
                return Err(FaultSpecError(format!(
                    "clause '{clause}' has no point name"
                )));
            }
            let mut fields = rest.split(',').map(str::trim);
            let action = parse_action(fields.next().unwrap_or(""))?;
            let mut point = PointPlan::new(action);
            for modifier in fields {
                let (key, value) = modifier.split_once('=').ok_or_else(|| {
                    FaultSpecError(format!("modifier '{modifier}' is not key=value"))
                })?;
                let value: u64 = value.trim().parse().map_err(|_| {
                    FaultSpecError(format!("modifier '{modifier}' needs a u64 value"))
                })?;
                match key.trim() {
                    "one_in" => point.one_in = value,
                    "after" => point.after = value,
                    "max" => point.max = value,
                    other => {
                        return Err(FaultSpecError(format!(
                            "unknown modifier '{other}' (known: one_in, after, max)"
                        )))
                    }
                }
            }
            plan.points.insert(name.to_string(), point);
        }
        Ok(plan)
    }
}

fn parse_action(text: &str) -> Result<FaultAction, FaultSpecError> {
    let (head, arg) = match text.split_once(':') {
        Some((head, arg)) => (head.trim(), Some(arg.trim())),
        None => (text, None),
    };
    let number = |label: &str| -> Result<u64, FaultSpecError> {
        arg.ok_or_else(|| FaultSpecError(format!("action '{head}' needs '{head}:{label}'")))?
            .parse()
            .map_err(|_| FaultSpecError(format!("action '{text}' needs a u64 after ':'")))
    };
    match head {
        "error" => Ok(FaultAction::Error),
        "panic" => Ok(FaultAction::Panic),
        "delay" => Ok(FaultAction::Delay(number("MILLIS")?)),
        "partial" => Ok(FaultAction::Partial(number("BYTES")?)),
        other => Err(FaultSpecError(format!(
            "unknown action '{other}' (known: error, panic, delay:MS, partial:N)"
        ))),
    }
}

/// Live state of one armed point.
#[derive(Debug)]
struct PointState {
    plan: PointPlan,
    /// Plan seed mixed with the FNV-1a hash of the point name.
    seed: u64,
    hits: AtomicU64,
    trips: AtomicU64,
}

/// Observable state of one armed point (for `GET /faults` and test
/// assertions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStatus {
    /// The failpoint name.
    pub name: String,
    /// The armed plan.
    pub plan: PointPlan,
    /// Times the point was evaluated while armed.
    pub hits: u64,
    /// Times the point actually tripped.
    pub trips: u64,
}

/// The process-global registry of armed failpoints.  Obtain it with
/// [`registry`]; arm it with [`FaultRegistry::arm`] (or the
/// [`arm_from_spec`] / [`arm_from_env`] conveniences) and clear it with
/// [`FaultRegistry::disarm_all`].
///
/// Arming **replaces** the armed set wholesale — plans do not merge, so a
/// test (or operator) always knows exactly what is armed.  Tests that arm
/// the registry must serialize against each other (it is process-global)
/// and disarm on exit; the workspace keeps all such tests in dedicated
/// integration binaries for that reason.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    points: Mutex<BTreeMap<String, Arc<PointState>>>,
}

impl FaultRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<PointState>>> {
        // A panic while holding this lock is impossible by construction
        // (no user code runs under it), but `panic` *actions* unwind
        // through threads that may later re-enter — recover instead of
        // compounding one injected panic with a poison panic.
        self.points.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm `plan`, replacing whatever was armed before.  Hit and trip
    /// counters start at zero.
    pub fn arm(&self, plan: &FaultPlan) {
        let mut points = self.lock();
        points.clear();
        for (name, point) in &plan.points {
            points.insert(
                name.clone(),
                Arc::new(PointState {
                    plan: *point,
                    seed: plan.seed ^ fnv1a(name.as_bytes()),
                    hits: AtomicU64::new(0),
                    trips: AtomicU64::new(0),
                }),
            );
        }
        ARMED_POINTS.store(points.len(), Ordering::SeqCst);
    }

    /// Disarm every point.  Failpoints return to their zero-cost path.
    pub fn disarm_all(&self) {
        let mut points = self.lock();
        points.clear();
        ARMED_POINTS.store(0, Ordering::SeqCst);
    }

    /// Number of points currently armed.
    pub fn armed_points(&self) -> usize {
        self.lock().len()
    }

    /// Times `point` has tripped since it was armed (0 when not armed).
    pub fn trips(&self, point: &str) -> u64 {
        self.lock()
            .get(point)
            .map_or(0, |state| state.trips.load(Ordering::Relaxed))
    }

    /// Total trips across every armed point.
    pub fn total_trips(&self) -> u64 {
        self.lock()
            .values()
            .map(|state| state.trips.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot every armed point's plan and counters, in name order.
    pub fn status(&self) -> Vec<PointStatus> {
        self.lock()
            .iter()
            .map(|(name, state)| PointStatus {
                name: name.clone(),
                plan: state.plan,
                hits: state.hits.load(Ordering::Relaxed),
                trips: state.trips.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn hit_armed(&self, point: &str) -> Option<Fault> {
        // Clone the Arc out and drop the lock before evaluating: a
        // `panic` action must not unwind while holding the registry lock,
        // and a `delay` action must not stall every other failpoint.
        let state = {
            let points = self.lock();
            Arc::clone(points.get(point)?)
        };
        let hit_index = state.hits.fetch_add(1, Ordering::Relaxed);
        let plan = state.plan;
        if hit_index < plan.after {
            return None;
        }
        let one_in = plan.one_in.max(1);
        if one_in > 1 {
            let draw = splitmix64(state.seed ^ hit_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if !draw.is_multiple_of(one_in) {
                return None;
            }
        }
        // Claim one of the remaining trips, or stand down at the cap.
        if state
            .trips
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |trips| {
                (trips < plan.max).then(|| trips + 1)
            })
            .is_err()
        {
            return None;
        }
        match plan.action {
            FaultAction::Error => Some(Fault::Error),
            FaultAction::Partial(n) => Some(Fault::Partial(n)),
            FaultAction::Delay(millis) => {
                std::thread::sleep(Duration::from_millis(millis));
                None
            }
            FaultAction::Panic => {
                panic!("injected fault: failpoint '{point}' tripped on hit {hit_index}")
            }
        }
    }
}

/// The process-global [`FaultRegistry`].
pub fn registry() -> &'static FaultRegistry {
    static REGISTRY: OnceLock<FaultRegistry> = OnceLock::new();
    REGISTRY.get_or_init(FaultRegistry::default)
}

/// Evaluate the failpoint `point` against the global registry.  Prefer
/// the [`fail_point!`] macro at call sites.
#[inline]
pub fn hit(point: &str) -> Option<Fault> {
    if !armed() {
        return None;
    }
    registry().hit_armed(point)
}

/// Parse `spec` and arm it globally.  Returns the number of armed points.
pub fn arm_from_spec(spec: &str) -> Result<usize, FaultSpecError> {
    let plan = FaultPlan::parse(spec)?;
    registry().arm(&plan);
    Ok(plan.len())
}

/// Arm from the `DSKETCH_FAULTS` environment variable, if set and
/// non-empty.  Returns the number of armed points (0 when the variable is
/// absent — the registry is left untouched in that case).
pub fn arm_from_env() -> Result<usize, FaultSpecError> {
    match std::env::var("DSKETCH_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => arm_from_spec(&spec),
        _ => Ok(0),
    }
}

/// Disarm every point in the global registry.
pub fn disarm_all() {
    registry().disarm_all();
}

/// A `Write` adapter that injects `error` / `partial` faults from `point`
/// into the stream: `partial:N` lets `N` bytes of the offending write
/// through (flushed, so they reach the underlying file — a genuinely torn
/// write), then fails.
#[derive(Debug)]
pub struct FaultWriter<W> {
    inner: W,
    point: &'static str,
}

impl<W: Write> FaultWriter<W> {
    /// Wrap `inner`, injecting faults armed under `point`.
    pub fn new(inner: W, point: &'static str) -> FaultWriter<W> {
        FaultWriter { inner, point }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match hit(self.point) {
            None => self.inner.write(buf),
            Some(Fault::Partial(n)) => {
                let keep = usize::try_from(n).unwrap_or(usize::MAX).min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                self.inner.flush()?;
                Err(Fault::Partial(n).io_error(self.point))
            }
            Some(fault) => Err(fault.io_error(self.point)),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that injects `error` / `partial` faults from `point`:
/// `partial:N` serves at most `N` more bytes, then reports end-of-stream —
/// a short read, exactly what a truncated file or dropped connection
/// produces.
#[derive(Debug)]
pub struct FaultReader<R> {
    inner: R,
    point: &'static str,
    /// Once a partial fault trips, the remaining byte budget.
    remaining: Option<u64>,
}

impl<R: Read> FaultReader<R> {
    /// Wrap `inner`, injecting faults armed under `point`.
    pub fn new(inner: R, point: &'static str) -> FaultReader<R> {
        FaultReader {
            inner,
            point,
            remaining: None,
        }
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining.is_none() {
            match hit(self.point) {
                None => {}
                Some(Fault::Partial(n)) => self.remaining = Some(n),
                Some(fault) => return Err(fault.io_error(self.point)),
            }
        }
        match self.remaining {
            None => self.inner.read(buf),
            Some(0) => Ok(0),
            Some(budget) => {
                let cap = usize::try_from(budget).unwrap_or(usize::MAX).min(buf.len());
                let got = self.inner.read(&mut buf[..cap])?;
                self.remaining = Some(budget - got as u64);
                Ok(got)
            }
        }
    }
}

/// FNV-1a over `bytes` — stable, dependency-free point-name hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer — the workspace's standard deterministic mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global: every test that arms it holds this
    /// lock and disarms before releasing it.
    static SERIAL: Mutex<()> = Mutex::new(());

    struct Armed<'a> {
        _serial: std::sync::MutexGuard<'a, ()>,
    }

    impl<'a> Armed<'a> {
        fn with(plan: &FaultPlan) -> Armed<'a> {
            let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
            registry().arm(plan);
            Armed { _serial: guard }
        }
    }

    impl Drop for Armed<'_> {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    #[test]
    fn disarmed_points_cost_nothing_and_return_none() {
        let _guard = Armed::with(&FaultPlan::new(0)); // empty plan = disarmed
        assert!(!armed());
        assert_eq!(fail_point!("anything.at.all"), None);
        assert_eq!(registry().trips("anything.at.all"), 0);
    }

    #[test]
    fn error_plan_trips_every_hit_and_counts() {
        let plan = FaultPlan::new(1).with_point("unit.point", PointPlan::new(FaultAction::Error));
        let _guard = Armed::with(&plan);
        assert!(armed());
        for _ in 0..5 {
            assert_eq!(fail_point!("unit.point"), Some(Fault::Error));
        }
        assert_eq!(fail_point!("unarmed.point"), None);
        assert_eq!(registry().trips("unit.point"), 5);
        let status = registry().status();
        assert_eq!(status.len(), 1);
        assert_eq!(status[0].hits, 5);
        assert_eq!(status[0].trips, 5);
    }

    #[test]
    fn kth_hit_after_and_max_schedule_exactly() {
        let plan = FaultPlan::new(9)
            .with_point("unit.kth", PointPlan::on_hit(3, FaultAction::Error).max(2));
        let _guard = Armed::with(&plan);
        let outcomes: Vec<bool> = (0..6).map(|_| hit("unit.kth").is_some()).collect();
        // Hits 1–2 skipped (`after = 2`), hits 3–4 trip (`max = 2`), rest pass.
        assert_eq!(outcomes, [false, false, true, true, false, false]);
        assert_eq!(registry().trips("unit.kth"), 2);
    }

    #[test]
    fn one_in_draws_are_deterministic_and_roughly_proportional() {
        let run = |seed: u64| -> Vec<usize> {
            let plan = FaultPlan::new(seed)
                .with_point("unit.ratio", PointPlan::new(FaultAction::Error).one_in(4));
            let _guard = Armed::with(&plan);
            (0..400).filter(|_| hit("unit.ratio").is_some()).collect()
        };
        let first = run(42);
        let again = run(42);
        assert_eq!(first, again, "same seed must replay the same trips");
        assert!(
            (50..=150).contains(&first.len()),
            "1-in-4 of 400 hits should trip near 100, got {}",
            first.len()
        );
        let other = run(43);
        assert_ne!(first, other, "different seeds should differ");
    }

    #[test]
    fn spec_round_trips_through_the_grammar() {
        let plan = FaultPlan::parse(
            "seed=7; store.save.rename=error,one_in=4 ;net.read.frame=delay:25,after=2,max=3;\
             serve.shard.dispatch=panic;store.save.write=partial:100",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.len(), 4);
        let expected = FaultPlan::new(7)
            .with_point(
                "store.save.rename",
                PointPlan::new(FaultAction::Error).one_in(4),
            )
            .with_point(
                "net.read.frame",
                PointPlan::new(FaultAction::Delay(25)).after(2).max(3),
            )
            .with_point("serve.shard.dispatch", PointPlan::new(FaultAction::Panic))
            .with_point(
                "store.save.write",
                PointPlan::new(FaultAction::Partial(100)),
            );
        assert_eq!(plan, expected);
    }

    #[test]
    fn bad_specs_are_typed_errors_naming_the_clause() {
        for (spec, needle) in [
            ("store.save", "no '='"),
            ("seed=banana", "not a u64"),
            ("p=explode", "unknown action"),
            ("p=delay", "delay:MILLIS"),
            ("p=error,when=5", "unknown modifier"),
            ("p=error,one_in", "key=value"),
            ("=error", "no point name"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err().to_string();
            assert!(err.contains(needle), "spec '{spec}' → '{err}'");
        }
    }

    #[test]
    fn fault_writer_cuts_after_the_partial_budget() {
        let plan = FaultPlan::new(0)
            .with_point("unit.writer", PointPlan::on_hit(2, FaultAction::Partial(3)));
        let _guard = Armed::with(&plan);
        let mut sink = Vec::new();
        let mut writer = FaultWriter::new(&mut sink, "unit.writer");
        writer.write_all(b"abcd").unwrap(); // hit 1 passes
        let err = writer.write_all(b"efgh").unwrap_err(); // hit 2 cuts after 3 bytes
        assert!(err.to_string().contains("unit.writer"));
        assert_eq!(sink, b"abcdefg");
    }

    #[test]
    fn fault_reader_serves_the_budget_then_reports_eof() {
        let plan =
            FaultPlan::new(0).with_point("unit.reader", PointPlan::new(FaultAction::Partial(5)));
        let _guard = Armed::with(&plan);
        let mut reader = FaultReader::new(&b"0123456789"[..], "unit.reader");
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"01234", "short read: budget served, then EOF");
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        let plan = FaultPlan::new(0).with_point("unit.panic", PointPlan::new(FaultAction::Panic));
        let _guard = Armed::with(&plan);
        let result = std::panic::catch_unwind(|| hit("unit.panic"));
        let message = *result
            .expect_err("panic action must panic")
            .downcast::<String>()
            .expect("panic payload is the formatted message");
        assert!(message.contains("unit.panic"), "{message}");
        // The trip was recorded before the unwind.
        assert_eq!(registry().trips("unit.panic"), 1);
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let plan = FaultPlan::new(0)
            .with_point("unit.delay", PointPlan::on_hit(1, FaultAction::Delay(30)));
        let _guard = Armed::with(&plan);
        let started = std::time::Instant::now();
        assert_eq!(hit("unit.delay"), None, "delay continues normally");
        assert!(started.elapsed() >= Duration::from_millis(25));
        assert_eq!(registry().trips("unit.delay"), 1);
    }

    #[test]
    fn arm_replaces_and_env_arming_parses() {
        let _guard = Armed::with(
            &FaultPlan::new(0).with_point("unit.old", PointPlan::new(FaultAction::Error)),
        );
        assert_eq!(
            arm_from_spec("unit.new=error,max=1").unwrap(),
            1,
            "arming replaces the previous set"
        );
        assert_eq!(registry().trips("unit.old"), 0);
        assert_eq!(hit("unit.old"), None, "old point is gone");
        assert_eq!(hit("unit.new"), Some(Fault::Error));
        assert_eq!(hit("unit.new"), None, "max=1 respected");
    }
}
