//! Query-serving statistics, mirroring the construction-side accounting.
//!
//! Construction reports a [`dsketch::RunStats`] per build (total plus
//! per-phase breakdown in [`dsketch::BuildOutcome`]); serving reports a
//! [`ServeStats`] per server — the aggregate [`ShardStats`] plus the
//! per-shard breakdown — so experiment tables can put build cost and serve
//! cost side by side.
//!
//! Since the observability refactor the live cells behind these snapshots
//! are instruments in the server's [`MetricsRegistry`]: the internal
//! counter structs hold cheap [`Counter`]/[`Gauge`]/[`Histogram`] handles
//! registered under the `dsketch_serve_*` / `dsketch_net_*` families, and
//! the public snapshot types here are *views* computed from those
//! instruments.  [`ServeStats::from_metrics`] / [`NetStats::from_metrics`]
//! rebuild the same views from one registry snapshot, which is how
//! `GET /stats` guarantees every number in one response was read at one
//! moment.

use dsketch_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// Counters for one query shard (or, via [`ShardStats::absorb`], a sum over
/// shards).  A plain snapshot value, like `RunStats` on the build side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Queries answered (including failed ones).
    pub queries: u64,
    /// Queries answered from the shard's LRU cache.
    pub cache_hits: u64,
    /// Queries that had to consult the oracle.
    pub cache_misses: u64,
    /// Cached entries discarded on touch because they were computed under
    /// a retired generation (lazy invalidation after a hot snapshot swap).
    /// Each invalidation is *also* counted as a cache miss — the query did
    /// consult the oracle — so `cache_hits + cache_misses == queries`
    /// holds across swaps and post-swap misses are not misread as
    /// cold-cache regressions.
    pub cache_invalidations: u64,
    /// Queries that returned an error (unknown node, no common landmark).
    pub errors: u64,
    /// Batches (channel messages) processed; `queries / batches` is the mean
    /// batch size reaching this shard.
    pub batches: u64,
    /// Total time spent answering queries, in nanoseconds (cache lookup plus
    /// oracle estimate; excludes queueing).
    pub busy_nanos: u64,
    /// Largest single-query service time observed, in nanoseconds.
    pub max_latency_nanos: u64,
    /// Worker restarts performed by this shard's supervisor after a panic.
    /// A restarted worker starts with a cold cache; the batch in flight at
    /// crash time answered with `ShardPanicked`.
    pub restarts: u64,
}

impl ShardStats {
    /// Merge another shard's counters into this one by summation (maximum
    /// for `max_latency_nanos`), like `RunStats::absorb` on the build side.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_invalidations += other.cache_invalidations;
        self.errors += other.errors;
        self.batches += other.batches;
        self.busy_nanos += other.busy_nanos;
        self.max_latency_nanos = self.max_latency_nanos.max(other.max_latency_nanos);
        self.restarts += other.restarts;
    }

    /// Fraction of queries answered from cache (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean service time per query in nanoseconds (0 when no queries ran).
    pub fn avg_latency_nanos(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.queries as f64
        }
    }
}

/// A point-in-time snapshot of a running (or shut down) server's counters:
/// the per-shard breakdown plus the aggregate, mirroring how
/// [`dsketch::BuildOutcome`] pairs `stats` with `phase_stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sum over all shards.
    pub totals: ShardStats,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardStats>,
    /// Snapshot generation serving when this snapshot was taken (1 = the
    /// startup oracle; each hot swap increments it).
    pub generation: u64,
    /// Hot snapshot swaps published since startup.
    pub swaps: u64,
}

impl ServeStats {
    /// Number of shards the server ran with.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Largest per-shard query count divided by the mean — 1.0 is a
    /// perfectly balanced load, higher means hotter shards.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.per_shard.len();
        if n == 0 || self.totals.queries == 0 {
            return 1.0;
        }
        let max = self.per_shard.iter().map(|s| s.queries).max().unwrap_or(0);
        let mean = self.totals.queries as f64 / n as f64;
        max as f64 / mean
    }

    /// Rebuild the per-shard view from one registry snapshot — every number
    /// comes from the same [`MetricsSnapshot`], so the derived ratios
    /// (`hit_rate`, queries-per-batch) are internally consistent no matter
    /// how hard the workers are writing concurrently.
    pub(crate) fn from_metrics(snap: &MetricsSnapshot, shards: usize) -> ServeStats {
        let mut per_shard = Vec::with_capacity(shards);
        for shard in 0..shards {
            let labels = format!("shard=\"{shard}\"");
            let latency = snap
                .histogram("dsketch_serve_query_latency_nanos", &labels)
                .cloned()
                .unwrap_or_default();
            per_shard.push(ShardStats {
                queries: snap
                    .counter("dsketch_serve_queries_total", &labels)
                    .unwrap_or(0),
                cache_hits: snap
                    .counter("dsketch_serve_cache_hits_total", &labels)
                    .unwrap_or(0),
                cache_misses: snap
                    .counter("dsketch_serve_cache_misses_total", &labels)
                    .unwrap_or(0),
                cache_invalidations: snap
                    .counter("dsketch_serve_cache_invalidations_total", &labels)
                    .unwrap_or(0),
                errors: snap
                    .counter("dsketch_serve_errors_total", &labels)
                    .unwrap_or(0),
                batches: snap
                    .counter("dsketch_serve_batches_total", &labels)
                    .unwrap_or(0),
                busy_nanos: latency.sum,
                max_latency_nanos: latency.max,
                restarts: snap
                    .counter("dsketch_shard_restarts_total", &labels)
                    .unwrap_or(0),
            });
        }
        let mut totals = ShardStats::default();
        for shard in &per_shard {
            totals.absorb(shard);
        }
        ServeStats {
            totals,
            per_shard,
            generation: snap
                // dsketch-lint: allow(metric-name-style): the generation gauge is a version number — unitless by design
                .gauge("dsketch_serve_generation", "")
                .unwrap_or(1)
                .max(0) as u64,
            swaps: snap.counter("dsketch_swap_total", "").unwrap_or(0),
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries over {} shards: {:.1}% cache hits, {} errors, \
             avg {:.2} µs/query, max {:.2} µs, imbalance {:.2}, generation {} ({} swaps)",
            self.totals.queries,
            self.num_shards(),
            100.0 * self.totals.hit_rate(),
            self.totals.errors,
            self.totals.avg_latency_nanos() / 1_000.0,
            self.totals.max_latency_nanos as f64 / 1_000.0,
            self.load_imbalance(),
            self.generation,
            self.swaps,
        )
    }
}

/// Wire-level counters of the network front end ([`crate::net`]): what the
/// in-process [`ShardStats`] cannot see because it begins at the shard
/// queues — sockets, frames, bytes, timeouts.
///
/// A plain snapshot value like [`ShardStats`]; the live cells are
/// `dsketch_net_*` instruments in the server's registry.  `GET /stats`
/// serves both this and the shard totals in one JSON document, so wire
/// cost and dispatch cost can be read side by side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections the listener accepted.
    pub connections_accepted: u64,
    /// Accepted connections dropped because the worker hand-off queue was
    /// full (backpressure at the front door).
    pub connections_refused: u64,
    /// Connections that reached end of service (clean close, error close,
    /// or timeout close).
    pub connections_closed: u64,
    /// Well-framed request frames read (binary protocol).
    pub frames_in: u64,
    /// Response frames written (binary protocol).
    pub frames_out: u64,
    /// HTTP requests parsed (the hand-rolled `GET /distance` + `GET /stats`
    /// endpoint).
    pub http_requests: u64,
    /// Bytes read from sockets (frame headers + payloads + HTTP requests).
    pub bytes_in: u64,
    /// Bytes written to sockets (frames + HTTP responses).
    pub bytes_out: u64,
    /// Connections closed because a read or write deadline expired (slow,
    /// stalled, or idle peers).
    pub timeouts: u64,
    /// Malformed inputs answered with a typed error (bad magic, bad
    /// version, oversized length prefix, undecodable payload, garbage
    /// HTTP request line).
    pub protocol_errors: u64,
    /// Connections shed at the front door because the accept hand-off
    /// queue was full, answered with a best-effort HTTP
    /// `503 Service Unavailable` + `Retry-After` before closing.  Every
    /// overload is also counted in `connections_refused`.
    pub overloads: u64,
}

impl NetStats {
    /// Rebuild the wire view from one registry snapshot (same consistency
    /// contract as [`ServeStats::from_metrics`]).
    pub(crate) fn from_metrics(snap: &MetricsSnapshot) -> NetStats {
        let read = |name: &str| snap.counter(name, "").unwrap_or(0);
        NetStats {
            connections_accepted: read("dsketch_net_connections_accepted_total"),
            connections_refused: read("dsketch_net_connections_refused_total"),
            connections_closed: read("dsketch_net_connections_closed_total"),
            frames_in: read("dsketch_net_frames_in_total"),
            frames_out: read("dsketch_net_frames_out_total"),
            http_requests: read("dsketch_net_http_requests_total"),
            bytes_in: read("dsketch_net_bytes_in_total"),
            bytes_out: read("dsketch_net_bytes_out_total"),
            timeouts: read("dsketch_net_timeouts_total"),
            protocol_errors: read("dsketch_net_protocol_errors_total"),
            overloads: read("dsketch_net_overload_total"),
        }
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conns accepted ({} refused, {} closed), {} frames in / {} out, \
             {} http requests, {} B in / {} B out, {} timeouts, {} protocol errors, \
             {} overloads",
            self.connections_accepted,
            self.connections_refused,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.http_requests,
            self.bytes_in,
            self.bytes_out,
            self.timeouts,
            self.protocol_errors,
            self.overloads,
        )
    }
}

/// The live instrument handles behind [`NetStats`], written by the accept
/// loop and the connection workers.  Every handle is a registered
/// `dsketch_net_*` series; recording is relaxed-atomic and lock-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetCounters {
    pub connections_accepted: Counter,
    pub connections_refused: Counter,
    pub connections_closed: Counter,
    pub frames_in: Counter,
    pub frames_out: Counter,
    pub http_requests: Counter,
    pub bytes_in: Counter,
    pub bytes_out: Counter,
    pub timeouts: Counter,
    pub protocol_errors: Counter,
    /// Connections shed with a best-effort `503` because the hand-off
    /// queue was full.
    pub overload: Counter,
    /// Full binary request→response round trip, read to flush.
    pub roundtrip: Histogram,
}

impl NetCounters {
    /// Register every wire instrument in `registry` and return the handles.
    pub(crate) fn register(registry: &MetricsRegistry) -> NetCounters {
        NetCounters {
            connections_accepted: registry.counter(
                "dsketch_net_connections_accepted_total",
                "Connections the listener accepted.",
            ),
            connections_refused: registry.counter(
                "dsketch_net_connections_refused_total",
                "Accepted connections dropped because the worker hand-off queue was full.",
            ),
            connections_closed: registry.counter(
                "dsketch_net_connections_closed_total",
                "Connections that reached end of service.",
            ),
            frames_in: registry.counter(
                "dsketch_net_frames_in_total",
                "Well-framed binary request frames read.",
            ),
            frames_out: registry.counter(
                "dsketch_net_frames_out_total",
                "Binary response frames written.",
            ),
            http_requests: registry
                .counter("dsketch_net_http_requests_total", "HTTP requests parsed."),
            bytes_in: registry.counter("dsketch_net_bytes_in_total", "Bytes read from sockets."),
            bytes_out: registry.counter("dsketch_net_bytes_out_total", "Bytes written to sockets."),
            timeouts: registry.counter(
                "dsketch_net_timeouts_total",
                "Connections closed because a read or write deadline expired.",
            ),
            protocol_errors: registry.counter(
                "dsketch_net_protocol_errors_total",
                "Malformed inputs answered with a typed error.",
            ),
            overload: registry.counter(
                "dsketch_net_overload_total",
                "HTTP connections answered 503 because the accept hand-off queue was full.",
            ),
            roundtrip: registry.histogram(
                "dsketch_net_roundtrip_nanos",
                "Binary request round trip: frame read to response flush.",
            ),
        }
    }

    pub(crate) fn snapshot(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.value(),
            connections_refused: self.connections_refused.value(),
            connections_closed: self.connections_closed.value(),
            frames_in: self.frames_in.value(),
            frames_out: self.frames_out.value(),
            http_requests: self.http_requests.value(),
            bytes_in: self.bytes_in.value(),
            bytes_out: self.bytes_out.value(),
            timeouts: self.timeouts.value(),
            protocol_errors: self.protocol_errors.value(),
            overloads: self.overload.value(),
        }
    }
}

/// The live instrument handles one worker thread writes and [`ServeStats`]
/// snapshots read.  Every handle is a registered `dsketch_serve_*` series
/// labeled with the shard index.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardCounters {
    pub queries: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_invalidations: Counter,
    pub errors: Counter,
    pub batches: Counter,
    /// Per-query service time; its sum and max are `busy_nanos` and
    /// `max_latency_nanos` in the snapshot view.
    latency: Histogram,
    /// Batches currently queued (sent but not yet drained by the worker).
    pub queue_entries: Gauge,
    /// Worker restarts performed by this shard's supervisor after a panic.
    pub restarts: Counter,
}

impl ShardCounters {
    /// Register this shard's instruments in `registry` and return the
    /// handles.
    pub(crate) fn register(registry: &MetricsRegistry, shard: usize) -> ShardCounters {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        ShardCounters {
            queries: registry.counter_with(
                "dsketch_serve_queries_total",
                "Queries answered (including failed ones).",
                labels,
            ),
            cache_hits: registry.counter_with(
                "dsketch_serve_cache_hits_total",
                "Queries answered from the shard's LRU cache.",
                labels,
            ),
            cache_misses: registry.counter_with(
                "dsketch_serve_cache_misses_total",
                "Queries that had to consult the oracle.",
                labels,
            ),
            cache_invalidations: registry.counter_with(
                "dsketch_serve_cache_invalidations_total",
                "Cached entries discarded on touch after a snapshot swap.",
                labels,
            ),
            errors: registry.counter_with(
                "dsketch_serve_errors_total",
                "Queries that returned an error.",
                labels,
            ),
            batches: registry.counter_with(
                "dsketch_serve_batches_total",
                "Batches (channel messages) processed.",
                labels,
            ),
            latency: registry.histogram_with(
                "dsketch_serve_query_latency_nanos",
                "Per-query service time: cache lookup plus oracle estimate.",
                labels,
            ),
            queue_entries: registry.gauge_with(
                "dsketch_serve_queue_entries",
                "Batches currently queued for this shard.",
                labels,
            ),
            restarts: registry.counter_with(
                "dsketch_shard_restarts_total",
                "Worker restarts performed by the shard supervisor after a panic.",
                labels,
            ),
        }
    }

    pub(crate) fn snapshot(&self) -> ShardStats {
        let latency = self.latency.snapshot();
        ShardStats {
            queries: self.queries.value(),
            cache_hits: self.cache_hits.value(),
            cache_misses: self.cache_misses.value(),
            cache_invalidations: self.cache_invalidations.value(),
            errors: self.errors.value(),
            batches: self.batches.value(),
            busy_nanos: latency.sum,
            max_latency_nanos: latency.max,
            restarts: self.restarts.value(),
        }
    }

    pub(crate) fn record_latency(&self, nanos: u64) {
        self.latency.record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = ShardStats {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_invalidations: 2,
            errors: 1,
            batches: 2,
            busy_nanos: 1000,
            max_latency_nanos: 400,
            restarts: 1,
        };
        let b = ShardStats {
            queries: 5,
            cache_hits: 5,
            cache_misses: 0,
            cache_invalidations: 1,
            errors: 0,
            batches: 1,
            busy_nanos: 200,
            max_latency_nanos: 900,
            restarts: 2,
        };
        a.absorb(&b);
        assert_eq!(a.queries, 15);
        assert_eq!(a.cache_hits, 9);
        assert_eq!(a.cache_misses, 6);
        assert_eq!(a.cache_invalidations, 3);
        assert_eq!(a.batches, 3);
        assert_eq!(a.max_latency_nanos, 900);
        assert_eq!(a.restarts, 3);
        assert!((a.hit_rate() - 0.6).abs() < 1e-9);
        assert!((a.avg_latency_nanos() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = ShardStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.avg_latency_nanos(), 0.0);
        let serve = ServeStats::default();
        assert_eq!(serve.num_shards(), 0);
        assert_eq!(serve.load_imbalance(), 1.0);
        assert!(serve.to_string().contains("0 queries"));
    }

    #[test]
    fn counters_snapshot_round_trips() {
        let registry = MetricsRegistry::new();
        let counters = ShardCounters::register(&registry, 0);
        counters.queries.add(3);
        counters.record_latency(50);
        counters.record_latency(10);
        let snap = counters.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.busy_nanos, 60);
        assert_eq!(snap.max_latency_nanos, 50);
    }

    #[test]
    fn serve_stats_rebuild_from_one_registry_snapshot() {
        let registry = MetricsRegistry::new();
        let shard0 = ShardCounters::register(&registry, 0);
        let shard1 = ShardCounters::register(&registry, 1);
        shard0.queries.add(4);
        shard0.cache_hits.add(1);
        shard0.cache_misses.add(3);
        shard0.batches.inc();
        shard0.record_latency(100);
        shard1.queries.add(2);
        shard1.cache_misses.add(2);
        shard1.cache_invalidations.inc();
        shard1.errors.inc();
        shard1.batches.inc();
        shard1.record_latency(900);
        let stats = ServeStats::from_metrics(&registry.snapshot(), 2);
        assert_eq!(stats.num_shards(), 2);
        assert_eq!(stats.per_shard[0].queries, 4);
        assert_eq!(stats.per_shard[1].errors, 1);
        assert_eq!(stats.per_shard[1].cache_invalidations, 1);
        assert_eq!(stats.totals.queries, 6);
        assert_eq!(stats.totals.cache_hits + stats.totals.cache_misses, 6);
        assert_eq!(stats.totals.cache_invalidations, 1);
        assert_eq!(stats.totals.busy_nanos, 1000);
        assert_eq!(stats.totals.max_latency_nanos, 900);
        // No swap instruments registered: sensible defaults.
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn net_counters_snapshot_exact_counts() {
        let registry = MetricsRegistry::new();
        let counters = NetCounters::register(&registry);
        counters.connections_accepted.add(3);
        counters.connections_refused.add(1);
        counters.connections_closed.add(2);
        counters.frames_in.add(10);
        counters.frames_out.add(11);
        counters.http_requests.add(4);
        counters.bytes_in.add(1200);
        counters.bytes_out.add(3400);
        counters.timeouts.add(5);
        counters.protocol_errors.add(6);
        counters.overload.add(7);
        let expected = NetStats {
            connections_accepted: 3,
            connections_refused: 1,
            connections_closed: 2,
            frames_in: 10,
            frames_out: 11,
            http_requests: 4,
            bytes_in: 1200,
            bytes_out: 3400,
            timeouts: 5,
            protocol_errors: 6,
            overloads: 7,
        };
        assert_eq!(counters.snapshot(), expected);
        // The registry-snapshot view reads back the same numbers.
        assert_eq!(NetStats::from_metrics(&registry.snapshot()), expected);
        let text = counters.snapshot().to_string();
        assert!(text.contains("3 conns accepted"));
        assert!(text.contains("1 refused"));
        assert!(text.contains("1200 B in / 3400 B out"));
        assert!(text.contains("5 timeouts"));
        assert!(text.contains("6 protocol errors"));
        assert!(text.contains("7 overloads"));
    }

    #[test]
    fn display_reports_the_headline_numbers() {
        let stats = ServeStats {
            totals: ShardStats {
                queries: 100,
                cache_hits: 25,
                cache_misses: 75,
                cache_invalidations: 5,
                errors: 2,
                batches: 10,
                busy_nanos: 100_000,
                max_latency_nanos: 5_000,
                restarts: 0,
            },
            per_shard: vec![ShardStats::default(); 4],
            generation: 3,
            swaps: 2,
        };
        let text = stats.to_string();
        assert!(text.contains("100 queries over 4 shards"));
        assert!(text.contains("25.0% cache hits"));
        assert!(text.contains("2 errors"));
        assert!(text.contains("generation 3 (2 swaps)"));
    }
}
