//! Query-serving statistics, mirroring the construction-side accounting.
//!
//! Construction reports a [`dsketch::RunStats`] per build (total plus
//! per-phase breakdown in [`dsketch::BuildOutcome`]); serving reports a
//! [`ServeStats`] per server — the aggregate [`ShardStats`] plus the
//! per-shard breakdown — so experiment tables can put build cost and serve
//! cost side by side.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one query shard (or, via [`ShardStats::absorb`], a sum over
/// shards).  A plain snapshot value, like `RunStats` on the build side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Queries answered (including failed ones).
    pub queries: u64,
    /// Queries answered from the shard's LRU cache.
    pub cache_hits: u64,
    /// Queries that had to consult the oracle.
    pub cache_misses: u64,
    /// Queries that returned an error (unknown node, no common landmark).
    pub errors: u64,
    /// Batches (channel messages) processed; `queries / batches` is the mean
    /// batch size reaching this shard.
    pub batches: u64,
    /// Total time spent answering queries, in nanoseconds (cache lookup plus
    /// oracle estimate; excludes queueing).
    pub busy_nanos: u64,
    /// Largest single-query service time observed, in nanoseconds.
    pub max_latency_nanos: u64,
}

impl ShardStats {
    /// Merge another shard's counters into this one by summation (maximum
    /// for `max_latency_nanos`), like `RunStats::absorb` on the build side.
    pub fn absorb(&mut self, other: &ShardStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.errors += other.errors;
        self.batches += other.batches;
        self.busy_nanos += other.busy_nanos;
        self.max_latency_nanos = self.max_latency_nanos.max(other.max_latency_nanos);
    }

    /// Fraction of queries answered from cache (0 when no queries ran).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean service time per query in nanoseconds (0 when no queries ran).
    pub fn avg_latency_nanos(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.queries as f64
        }
    }
}

/// A point-in-time snapshot of a running (or shut down) server's counters:
/// the per-shard breakdown plus the aggregate, mirroring how
/// [`dsketch::BuildOutcome`] pairs `stats` with `phase_stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sum over all shards.
    pub totals: ShardStats,
    /// One entry per shard, in shard order.
    pub per_shard: Vec<ShardStats>,
}

impl ServeStats {
    /// Number of shards the server ran with.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Largest per-shard query count divided by the mean — 1.0 is a
    /// perfectly balanced load, higher means hotter shards.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.per_shard.len();
        if n == 0 || self.totals.queries == 0 {
            return 1.0;
        }
        let max = self.per_shard.iter().map(|s| s.queries).max().unwrap_or(0);
        let mean = self.totals.queries as f64 / n as f64;
        max as f64 / mean
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries over {} shards: {:.1}% cache hits, {} errors, \
             avg {:.2} µs/query, max {:.2} µs, imbalance {:.2}",
            self.totals.queries,
            self.num_shards(),
            100.0 * self.totals.hit_rate(),
            self.totals.errors,
            self.totals.avg_latency_nanos() / 1_000.0,
            self.totals.max_latency_nanos as f64 / 1_000.0,
            self.load_imbalance(),
        )
    }
}

/// Wire-level counters of the network front end ([`crate::net`]): what the
/// in-process [`ShardStats`] cannot see because it begins at the shard
/// queues — sockets, frames, bytes, timeouts.
///
/// A plain snapshot value like [`ShardStats`]; the live atomics live in
/// the server's internal counters.  `GET /stats` serves both this and the shard totals in
/// one JSON document, so wire cost and dispatch cost can be read side by
/// side.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections the listener accepted.
    pub connections_accepted: u64,
    /// Accepted connections dropped because the worker hand-off queue was
    /// full (backpressure at the front door).
    pub connections_refused: u64,
    /// Connections that reached end of service (clean close, error close,
    /// or timeout close).
    pub connections_closed: u64,
    /// Well-framed request frames read (binary protocol).
    pub frames_in: u64,
    /// Response frames written (binary protocol).
    pub frames_out: u64,
    /// HTTP requests parsed (the hand-rolled `GET /distance` + `GET /stats`
    /// endpoint).
    pub http_requests: u64,
    /// Bytes read from sockets (frame headers + payloads + HTTP requests).
    pub bytes_in: u64,
    /// Bytes written to sockets (frames + HTTP responses).
    pub bytes_out: u64,
    /// Connections closed because a read or write deadline expired (slow,
    /// stalled, or idle peers).
    pub timeouts: u64,
    /// Malformed inputs answered with a typed error (bad magic, bad
    /// version, oversized length prefix, undecodable payload, garbage
    /// HTTP request line).
    pub protocol_errors: u64,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conns accepted ({} refused, {} closed), {} frames in / {} out, \
             {} http requests, {} B in / {} B out, {} timeouts, {} protocol errors",
            self.connections_accepted,
            self.connections_refused,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.http_requests,
            self.bytes_in,
            self.bytes_out,
            self.timeouts,
            self.protocol_errors,
        )
    }
}

/// The live, shared atomics behind [`NetStats`], written by the accept
/// loop and the connection workers.  Relaxed ordering: monotone counters
/// read only for reporting, like [`ShardCounters`].
#[derive(Debug, Default)]
pub(crate) struct NetCounters {
    pub connections_accepted: AtomicU64,
    pub connections_refused: AtomicU64,
    pub connections_closed: AtomicU64,
    pub frames_in: AtomicU64,
    pub frames_out: AtomicU64,
    pub http_requests: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub timeouts: AtomicU64,
    pub protocol_errors: AtomicU64,
}

impl NetCounters {
    pub(crate) fn snapshot(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            http_requests: self.http_requests.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// The live, shared counters one worker thread writes and [`ServeStats`]
/// snapshots read.  Relaxed ordering is enough: counters are monotone and
/// read only for reporting.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub queries: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub errors: AtomicU64,
    pub batches: AtomicU64,
    pub busy_nanos: AtomicU64,
    pub max_latency_nanos: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn snapshot(&self) -> ShardStats {
        ShardStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            max_latency_nanos: self.max_latency_nanos.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_latency(&self, nanos: u64) {
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_latency_nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = ShardStats {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            errors: 1,
            batches: 2,
            busy_nanos: 1000,
            max_latency_nanos: 400,
        };
        let b = ShardStats {
            queries: 5,
            cache_hits: 5,
            cache_misses: 0,
            errors: 0,
            batches: 1,
            busy_nanos: 200,
            max_latency_nanos: 900,
        };
        a.absorb(&b);
        assert_eq!(a.queries, 15);
        assert_eq!(a.cache_hits, 9);
        assert_eq!(a.cache_misses, 6);
        assert_eq!(a.batches, 3);
        assert_eq!(a.max_latency_nanos, 900);
        assert!((a.hit_rate() - 0.6).abs() < 1e-9);
        assert!((a.avg_latency_nanos() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = ShardStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.avg_latency_nanos(), 0.0);
        let serve = ServeStats::default();
        assert_eq!(serve.num_shards(), 0);
        assert_eq!(serve.load_imbalance(), 1.0);
        assert!(serve.to_string().contains("0 queries"));
    }

    #[test]
    fn counters_snapshot_round_trips() {
        let counters = ShardCounters::default();
        counters.queries.fetch_add(3, Ordering::Relaxed);
        counters.record_latency(50);
        counters.record_latency(10);
        let snap = counters.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.busy_nanos, 60);
        assert_eq!(snap.max_latency_nanos, 50);
    }

    #[test]
    fn net_counters_snapshot_exact_counts() {
        let counters = NetCounters::default();
        counters
            .connections_accepted
            .fetch_add(3, Ordering::Relaxed);
        counters.connections_refused.fetch_add(1, Ordering::Relaxed);
        counters.connections_closed.fetch_add(2, Ordering::Relaxed);
        counters.frames_in.fetch_add(10, Ordering::Relaxed);
        counters.frames_out.fetch_add(11, Ordering::Relaxed);
        counters.http_requests.fetch_add(4, Ordering::Relaxed);
        counters.bytes_in.fetch_add(1200, Ordering::Relaxed);
        counters.bytes_out.fetch_add(3400, Ordering::Relaxed);
        counters.timeouts.fetch_add(5, Ordering::Relaxed);
        counters.protocol_errors.fetch_add(6, Ordering::Relaxed);
        let snap = counters.snapshot();
        assert_eq!(
            snap,
            NetStats {
                connections_accepted: 3,
                connections_refused: 1,
                connections_closed: 2,
                frames_in: 10,
                frames_out: 11,
                http_requests: 4,
                bytes_in: 1200,
                bytes_out: 3400,
                timeouts: 5,
                protocol_errors: 6,
            }
        );
        let text = snap.to_string();
        assert!(text.contains("3 conns accepted"));
        assert!(text.contains("1 refused"));
        assert!(text.contains("1200 B in / 3400 B out"));
        assert!(text.contains("5 timeouts"));
        assert!(text.contains("6 protocol errors"));
    }

    #[test]
    fn display_reports_the_headline_numbers() {
        let stats = ServeStats {
            totals: ShardStats {
                queries: 100,
                cache_hits: 25,
                cache_misses: 75,
                errors: 2,
                batches: 10,
                busy_nanos: 100_000,
                max_latency_nanos: 5_000,
            },
            per_shard: vec![ShardStats::default(); 4],
        };
        let text = stats.to_string();
        assert!(text.contains("100 queries over 4 shards"));
        assert!(text.contains("25.0% cache hits"));
        assert!(text.contains("2 errors"));
    }
}
