//! A fixed-capacity LRU map with index-linked recency order.
//!
//! Each query shard owns one [`LruCache`] outright — shard routing is
//! deterministic per key, so a key lives in exactly one shard's cache and no
//! locking is needed.  The recency list is threaded through a slab of
//! entries by index (no pointers, no unsafe); every operation is `O(1)` plus
//! one hash lookup.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index marking the end of the recency list.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    /// Index of the next-more-recent entry (`NIL` for the head).
    prev: usize,
    /// Index of the next-less-recent entry (`NIL` for the tail).
    next: usize,
}

/// A least-recently-used cache holding at most `capacity` entries.
///
/// A capacity of `0` disables the cache entirely: [`LruCache::get`] always
/// misses and [`LruCache::insert`] is a no-op, so callers can keep one code
/// path for the cached and uncached configurations.
///
/// ```
/// use dsketch_serve::cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // "a" is now most recent
/// cache.insert("c", 3);                  // evicts "b", the LRU entry
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache that will hold at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.entries[idx].value)
    }

    /// Insert or update `key`, marking it most recently used and evicting
    /// the least recently used entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        let idx = if self.map.len() == self.capacity {
            // Reuse the evicted tail slot.
            let idx = self.tail;
            self.unlink(idx);
            self.map.remove(&self.entries[idx].key);
            self.entries[idx].key = key.clone();
            self.entries[idx].value = value;
            idx
        } else {
            self.entries.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Detach entry `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev == NIL {
            if self.head == idx {
                self.head = next;
            }
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            if self.tail == idx {
                self.tail = prev;
            }
        } else {
            self.entries[next].prev = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    /// Attach entry `idx` at the most-recent end.
    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the recency list front to back, checking both link directions.
    fn order<K: Hash + Eq + Clone + std::fmt::Debug, V>(cache: &LruCache<K, V>) -> Vec<K> {
        let mut keys = Vec::new();
        let mut idx = cache.head;
        let mut prev = NIL;
        while idx != NIL {
            assert_eq!(cache.entries[idx].prev, prev);
            keys.push(cache.entries[idx].key.clone());
            prev = idx;
            idx = cache.entries[idx].next;
        }
        assert_eq!(cache.tail, prev);
        assert_eq!(keys.len(), cache.len());
        keys
    }

    #[test]
    fn hit_miss_and_eviction() {
        let mut cache = LruCache::new(3);
        assert!(cache.is_empty());
        for i in 0..3 {
            cache.insert(i, i * 10);
        }
        assert_eq!(order(&cache), vec![2, 1, 0]);
        assert_eq!(cache.get(&0), Some(&0));
        assert_eq!(order(&cache), vec![0, 2, 1]);
        cache.insert(3, 30); // evicts 1, the LRU
        assert_eq!(cache.get(&1), None);
        assert_eq!(order(&cache), vec![3, 0, 2]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.capacity(), 3);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 9);
        assert_eq!(order(&cache), vec!["a", "b"]);
        cache.insert("c", 3); // evicts "b": "a" was refreshed
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&9));
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn capacity_one_always_keeps_latest() {
        let mut cache = LruCache::new(1);
        for i in 0..10 {
            cache.insert(i, i);
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.get(&i), Some(&i));
        }
        assert_eq!(cache.get(&8), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
    }

    #[test]
    fn eviction_reuses_slots() {
        let mut cache = LruCache::new(4);
        for i in 0..1000 {
            cache.insert(i, i);
        }
        assert_eq!(cache.entries.len(), 4, "slab never outgrows capacity");
        assert_eq!(order(&cache), vec![999, 998, 997, 996]);
    }
}
