//! Live snapshot swap: a hand-rolled, dependency-free `ArcSwap`-style
//! cell and the generation tag it publishes.
//!
//! The serving stack was built over one immutable `Arc<dyn
//! DistanceOracle>` fixed at startup; this module makes that binding
//! *replaceable while queries are in flight*.  A [`SwapCell`] holds the
//! current [`Generation`] (oracle + generation number + provenance);
//! readers take a snapshot with one atomic load plus a pin, **never
//! block, and never observe a torn value**; a writer publishes a fully
//! built replacement and the retired generation is dropped exactly once,
//! when the cell's reference and every outstanding reader clone are gone.
//!
//! # How the cell works
//!
//! ```text
//!                    seq: AtomicU64 (monotonic, current = seq % 4)
//!        ┌──────────┬──────────┬──────────┬──────────┐
//!        │ slot 0   │ slot 1   │ slot 2   │ slot 3   │
//!        │ pins ptr │ pins ptr │ pins ptr │ pins ptr │
//!        └──────────┴──────────┴──────────┴──────────┘
//!   reader:  s = seq; pin slot[s%4]; revalidate seq == s;
//!            clone the Arc out of the slot; unpin
//!   writer:  (mutex) wait pins == 0 on slot[(s+1)%4];
//!            ptr.swap(new); seq = s+1; drop the displaced Arc
//! ```
//!
//! The sequence number kills ABA: readers validate the *exact* `u64`
//! they pinned under, so a pin taken against a stale sequence is always
//! detected and retried.  A writer reuses a slot only after the slot has
//! been non-current for `SLOTS − 1` generations *and* its pin count has
//! drained to zero; the SeqCst total order makes the handshake airtight
//! (see the safety comments on [`SwapCell::load`]).  Readers therefore
//! spin only when a swap lands between their load and validation —
//! never on a lock — and writers wait only for readers that pinned the
//! one slot being recycled, generations ago.
//!
//! This is the only module in the crate allowed to use `unsafe`
//! (`#![deny(unsafe_code)]` at the crate root, `#[allow]` here); every
//! unsafe operation carries its proof.

#![allow(unsafe_code)]

use dsketch::{DistanceOracle, SchemeSpec};
use netgraph::GraphFingerprint;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Slot-ring size.  A slot is recycled only after it has been
/// non-current for `SLOTS − 1` consecutive swaps, which gives validated
/// readers three full generations of slack before their slot's pointer
/// can change.
const SLOTS: usize = 4;

/// One published value the serving stack can be switched to: the oracle
/// plus everything a swap has to validate and the stats endpoints report.
pub struct Generation {
    /// Monotonic generation number; the cold-start oracle is generation 1
    /// and every successful swap increments it.
    pub number: u64,
    /// The scheme the oracle was built with, when known (present whenever
    /// the oracle came from a `DSK1` snapshot).  Swaps refuse a snapshot
    /// whose spec differs.
    pub spec: Option<SchemeSpec>,
    /// Fingerprint of the graph the oracle was built from, when known.
    /// Swaps compare node counts; edge/weight drift is the legitimate
    /// graph-evolution case and is allowed through.
    pub fingerprint: Option<GraphFingerprint>,
    /// The serving oracle itself.
    pub oracle: Arc<dyn DistanceOracle>,
}

impl Generation {
    /// A startup generation (number 1) with optional provenance.
    pub fn initial(
        oracle: Arc<dyn DistanceOracle>,
        spec: Option<SchemeSpec>,
        fingerprint: Option<GraphFingerprint>,
    ) -> Generation {
        Generation {
            number: 1,
            spec,
            fingerprint,
            oracle,
        }
    }
}

impl std::fmt::Debug for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation")
            .field("number", &self.number)
            .field("spec", &self.spec)
            .field("fingerprint", &self.fingerprint)
            .field("scheme", &self.oracle.scheme_name())
            .field("num_nodes", &self.oracle.num_nodes())
            .finish()
    }
}

/// Why [`crate::SketchServer::swap_snapshot`] refused to publish a new
/// generation.  Every refusal leaves the live generation untouched.
#[derive(Debug)]
pub enum SwapError {
    /// The snapshot failed the deep semantic verifier (corrupted,
    /// truncated, or contract-violating `DSK1` bytes).
    Verify(dsketch_analysis::AnalysisError),
    /// Reading or decoding the snapshot failed at the store layer.
    Store(dsketch_store::StoreError),
    /// The snapshot holds a different scheme than the one being served.
    SchemeMismatch {
        /// The scheme currently live.
        current: SchemeSpec,
        /// The scheme the snapshot holds.
        offered: SchemeSpec,
    },
    /// The snapshot was built over a graph with a different node count
    /// than the one being served (its fingerprint names a different
    /// node-id universe, so cached routing and clients' ids would break).
    NodeCountMismatch {
        /// Node count currently live.
        current: usize,
        /// Node count the snapshot was built over.
        offered: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Verify(e) => write!(f, "snapshot failed deep verification: {e}"),
            SwapError::Store(e) => write!(f, "snapshot could not be loaded: {e}"),
            SwapError::SchemeMismatch { current, offered } => write!(
                f,
                "snapshot scheme {offered} does not match the serving scheme {current}"
            ),
            SwapError::NodeCountMismatch { current, offered } => write!(
                f,
                "snapshot covers {offered} nodes but the server is serving {current}"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

impl From<dsketch_analysis::AnalysisError> for SwapError {
    fn from(e: dsketch_analysis::AnalysisError) -> Self {
        SwapError::Verify(e)
    }
}

impl From<dsketch_store::StoreError> for SwapError {
    fn from(e: dsketch_store::StoreError) -> Self {
        SwapError::Store(e)
    }
}

/// One slot of the ring: a raw `Arc` pointer plus the count of readers
/// currently copying out of it.
struct Slot<T> {
    pins: AtomicUsize,
    ptr: AtomicPtr<T>,
}

impl<T> Slot<T> {
    fn empty() -> Slot<T> {
        Slot {
            pins: AtomicUsize::new(0),
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// A wait-free-for-readers shared cell holding an `Arc<T>`, replaceable
/// while readers are loading — the crate's hand-rolled, dependency-free
/// `ArcSwap`.
///
/// * [`SwapCell::load`] clones the current `Arc` without blocking: no
///   lock, no syscall, and retries only when a writer published between
///   its two sequence reads (swaps are rare; queries are not).
/// * [`SwapCell::store`] publishes a replacement and drops the value
///   displaced from the recycled slot.  Writers serialize on an internal
///   mutex; the reader path never touches it.
/// * [`SwapCell::version`] is a single atomic load — the fast path for
///   "has anything changed since I last looked?" checks on hot loops.
///
/// Every `Ordering` here is `SeqCst` on purpose: swaps are measured per
/// minute while loads are amortized to one per shard batch, so the cost
/// of the strongest ordering is noise and the correctness argument gets
/// to use one total order.
pub struct SwapCell<T> {
    slots: [Slot<T>; SLOTS],
    /// Monotonic publication counter; the current slot is `seq % SLOTS`.
    /// Starts at 1 so version numbers align with generation numbers.
    seq: AtomicU64,
    writer: Mutex<()>,
    /// The cell owns one strong reference per occupied slot, held as raw
    /// pointers — tie `Send`/`Sync` to `Arc<T>`'s.
    _owns: PhantomData<Arc<T>>,
}

// SAFETY: the cell is a container of `Arc<T>`s accessed under the
// pin/sequence protocol below; it adds no thread affinity of its own, so
// it is exactly as `Send`/`Sync` as `Arc<T>` (enforced by the bounds).
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
// SAFETY: as above — shared access is the whole point of the protocol.
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell holding `initial` as version 1.
    pub fn new(initial: Arc<T>) -> SwapCell<T> {
        let cell = SwapCell {
            slots: std::array::from_fn(|_| Slot::empty()),
            seq: AtomicU64::new(1),
            writer: Mutex::new(()),
            _owns: PhantomData,
        };
        cell.slots[1 % SLOTS]
            .ptr
            .store(Arc::into_raw(initial).cast_mut(), Ordering::SeqCst);
        cell
    }

    /// The current version: 1 for the initial value, +1 per [`store`].
    ///
    /// One atomic load — hot loops call this per batch and only pay for
    /// [`load`](SwapCell::load) when the number moved.
    ///
    /// [`store`]: SwapCell::store
    pub fn version(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Clone out the current value.  Never blocks: the only retry is a
    /// writer publishing between the sequence read and its revalidation.
    pub fn load(&self) -> Arc<T> {
        loop {
            let seq = self.seq.load(Ordering::SeqCst);
            let slot = &self.slots[(seq % SLOTS as u64) as usize];
            slot.pins.fetch_add(1, Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) != seq {
                // A writer published while we pinned; the slot we hold
                // may be (or be about to become) recycled.  Let it go
                // and start over — the next iteration sees the new seq.
                slot.pins.fetch_sub(1, Ordering::SeqCst);
                std::hint::spin_loop();
                continue;
            }
            let ptr = slot.ptr.load(Ordering::SeqCst);
            // SAFETY: `ptr` was produced by `Arc::into_raw` (in `new` or
            // `store`) and the cell still owns that strong reference, so
            // the allocation is live unless a writer recycled this slot.
            // Recycling slot `seq % SLOTS` happens only inside `store`
            // for version `seq + SLOTS`, after (a) every intermediate
            // version `seq+1 … seq+SLOTS−1` was published and (b) this
            // slot's pin count was observed to be zero.  Our pin was
            // acquired *before* the validation load that returned `seq`,
            // which in the SeqCst total order places it before the
            // `seq+1` publication — so any later pin check either sees
            // our pin (and waits) or runs after we unpin below.  While
            // we hold the pin, therefore, neither the pointer nor the
            // strong count it guards can be retired.
            //
            // SAFETY: per the argument above, `ptr` is a live `Arc`
            // allocation while our pin is held, so incrementing the
            // strong count then reconstituting yields a valid clone.
            let value = unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            };
            slot.pins.fetch_sub(1, Ordering::SeqCst);
            return value;
        }
    }

    /// Publish `next` as the new current value and return its version.
    ///
    /// The value displaced from the recycled slot (`SLOTS` publications
    /// old, retired for `SLOTS − 1`) is dropped here — the last reader
    /// clone of *any* generation keeps that generation alive until it is
    /// dropped, so "retire" never frees memory a reader still holds.
    pub fn store(&self, next: Arc<T>) -> u64 {
        // dsketch-lint: allow(no-unwrap-in-hot-path): a poisoned writer lock means a writer panicked mid-swap — propagate
        let _writer = self.writer.lock().expect("swap writer lock poisoned");
        let seq = self.seq.load(Ordering::SeqCst);
        let incoming = &self.slots[((seq + 1) % SLOTS as u64) as usize];
        // Wait out readers still pinning the slot being recycled.  Such a
        // reader pinned against a sequence ≥ SLOTS−1 publications stale,
        // so it is about to fail validation and unpin; this wait is a few
        // loads, not a lock readers can contend on.
        let mut spins = 0u32;
        while incoming.pins.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        let fresh = Arc::into_raw(next).cast_mut();
        let displaced = incoming.ptr.swap(fresh, Ordering::SeqCst);
        self.seq.store(seq + 1, Ordering::SeqCst);
        if !displaced.is_null() {
            // `displaced` is the strong reference the cell took via
            // `Arc::into_raw` when that generation was published.  It
            // stopped being current `SLOTS − 1` publications ago, no
            // reader has been able to pin-and-validate this slot since
            // (validation compares exact sequence numbers), and the wait
            // above saw the pin count at zero.  Reader clones hold their
            // own strong counts and keep the value alive past this drop.
            //
            // SAFETY: reconstituting the `Arc` therefore releases the
            // cell's sole remaining reference, exactly once.
            drop(unsafe { Arc::from_raw(displaced) });
        }
        seq + 1
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.ptr.swap(std::ptr::null_mut(), Ordering::SeqCst);
            if !ptr.is_null() {
                // SAFETY: `&mut self` proves no reader or writer is
                // active, and each occupied slot holds exactly the one
                // strong reference the cell took with `Arc::into_raw`.
                drop(unsafe { Arc::from_raw(ptr) });
            }
        }
    }
}

impl<T> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapCell")
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    /// A payload that counts its drops, so tests can pin down "dropped
    /// exactly once, and only after the last reader let go".
    struct DropProbe {
        id: u64,
        drops: Arc<Counter>,
    }

    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_returns_the_stored_value_and_versions_are_monotonic() {
        let cell = SwapCell::new(Arc::new(10u64));
        assert_eq!(cell.version(), 1);
        assert_eq!(*cell.load(), 10);
        for value in 11..40u64 {
            let version = cell.store(Arc::new(value));
            assert_eq!(version, value - 9, "one version per store");
            assert_eq!(cell.version(), version);
            assert_eq!(*cell.load(), value, "load sees the latest store");
        }
    }

    #[test]
    fn every_generation_drops_exactly_once() {
        let drops = Arc::new(Counter::new(0));
        let make = |id: u64| {
            Arc::new(DropProbe {
                id,
                drops: Arc::clone(&drops),
            })
        };
        let mut held = Vec::new();
        {
            let cell = SwapCell::new(make(1));
            for id in 2..=10u64 {
                held.push(cell.load());
                cell.store(make(id));
            }
            // 10 generations exist; the cell retires all but the newest
            // SLOTS of them, but reader clones in `held` keep their
            // generations alive regardless.
            assert_eq!(held.iter().map(|g| g.id).min().unwrap(), 1);
            let alive_in_cell = SLOTS as u64;
            assert!(drops.load(Ordering::SeqCst) <= 10 - alive_in_cell);
            // Dropping the reader clones must not double-free retired
            // generations the cell also released.
            held.clear();
        }
        // Cell and clones gone: all 10 payloads dropped exactly once.
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn reader_clones_keep_retired_generations_alive() {
        let drops = Arc::new(Counter::new(0));
        let cell = SwapCell::new(Arc::new(DropProbe {
            id: 1,
            drops: Arc::clone(&drops),
        }));
        let pinned = cell.load();
        assert!(Arc::strong_count(&pinned) >= 2, "cell + reader clone");
        // Push generation 1 fully out of the ring.
        for id in 2..=(SLOTS as u64 + 2) {
            cell.store(Arc::new(DropProbe {
                id,
                drops: Arc::clone(&drops),
            }));
        }
        // Generation 1 was displaced from its slot, but our clone holds it.
        assert_eq!(pinned.id, 1);
        assert_eq!(Arc::strong_count(&pinned), 1, "cell reference released");
        let dropped_before = drops.load(Ordering::SeqCst);
        drop(pinned);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            dropped_before + 1,
            "last clone drop frees generation 1 exactly once"
        );
    }

    #[test]
    fn concurrent_loads_and_stores_never_yield_torn_or_stale_beyond_window() {
        let cell = Arc::new(SwapCell::new(Arc::new(1u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    // Loop-with-exit-at-bottom so every reader performs at
                    // least one load even on a single-core box where the
                    // writer finishes before readers are first scheduled.
                    loop {
                        let value = *cell.load();
                        assert!(value >= last, "reads must be monotonic per thread");
                        last = value;
                        loads += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    loads
                })
            })
            .collect();
        for value in 2..500u64 {
            cell.store(Arc::new(value));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }
        assert_eq!(*cell.load(), 499);
        assert_eq!(cell.version(), 499);
    }
}
