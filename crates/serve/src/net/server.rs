//! The network front end: a TCP listener over the sharded query router.
//!
//! ```text
//!                 TcpListener (accept loop thread, nonblocking poll)
//!                      │ accepted sockets
//!                      ▼
//!            [bounded hand-off queue]      ← full ⇒ connection refused
//!        ┌───────────┬─┴─────────────┐
//!        ▼           ▼               ▼
//!    worker 0    worker 1   …   worker W−1     connection workers
//!    sniff 4 bytes: "NETQ" ⇒ binary frames, else ⇒ HTTP/1.1
//!        │           │               │
//!        └───────────┴───────┬───────┘
//!                            ▼
//!                  SketchServer (shard router)   the PR-2 in-process layer
//! ```
//!
//! Each worker owns one connection at a time and speaks request–response:
//! one frame in, one frame out.  Backpressure is layered — the hand-off
//! queue bounds waiting connections, the shard queues bound dispatched
//! batches, and [`NetConfig::max_batch_pairs`] bounds how much work one
//! frame may demand.
//!
//! # Timeouts and shutdown
//!
//! A single deadline ([`NetConfig::read_timeout`]) covers reading one
//! complete frame *and* doubles as the idle timeout: a connection that
//! sends nothing, dribbles bytes, or stops mid-frame is closed when the
//! deadline expires, so no peer can pin a worker.  Writes carry the same
//! deadline.
//!
//! [`NetServer::shutdown`] runs the graceful drain:
//!
//! ```text
//! running ──flag──▶ draining ──join──▶ closed
//!   accept loop stops, listener closes   (late connects: ECONNREFUSED)
//!   idle connections close at once       (abort flag between frames)
//!   in-flight frames complete + answer   (drain, then close)
//!   shard router shuts down last         (final counters returned)
//! ```

use super::http;
use super::protocol::{
    NetError, Request, Response, WireError, WireErrorCode, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
    REQUEST_MAGIC,
};
use super::wire::{self, ReadOutcome};
use crate::server::{ServeClient, ServeConfig, SketchServer};
use crate::stats::{NetCounters, NetStats, ServeStats};
use dsketch::{DistanceOracle, SchemeSpec, SketchError};
use dsketch_obs::{prometheus, MetricsRegistry, StdoutSink, Tracer};
use netgraph::{Distance, GraphFingerprint, NodeId};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and timeouts of the network front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Connection worker threads.  Each serves one connection at a time,
    /// so this is the concurrent-connection bound.  Must be ≥ 1.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker.  A full
    /// queue refuses further connections instead of buffering without
    /// limit.
    pub pending_connections: usize,
    /// Deadline for reading one complete frame (or HTTP request head);
    /// also the idle timeout between frames and the write deadline.
    pub read_timeout: Duration,
    /// Largest number of pairs one batch frame may carry; larger batches
    /// are answered with a typed [`WireErrorCode::BatchTooLarge`] error.
    pub max_batch_pairs: usize,
    /// Largest frame payload accepted, in bytes.  An oversized length
    /// prefix is rejected before any allocation.
    pub max_payload: u32,
    /// Mirror every sampled trace event to stdout as one JSON line (the
    /// `--log-json` flag).  Sampling itself is
    /// [`ServeConfig::trace_sample`].
    pub log_json: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 4,
            pending_connections: 32,
            read_timeout: Duration::from_secs(5),
            max_batch_pairs: 1 << 16,
            max_payload: DEFAULT_MAX_PAYLOAD,
            log_json: false,
        }
    }
}

impl NetConfig {
    /// Replace the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replace the pending-connection bound.
    pub fn with_pending_connections(mut self, pending: usize) -> Self {
        self.pending_connections = pending;
        self
    }

    /// Replace the read/idle/write deadline.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Replace the per-frame batch-size bound.
    pub fn with_max_batch_pairs(mut self, pairs: usize) -> Self {
        self.max_batch_pairs = pairs;
        self
    }

    /// Mirror sampled trace events to stdout as JSON lines.
    pub fn with_log_json(mut self, log_json: bool) -> Self {
        self.log_json = log_json;
        self
    }

    fn validate(&self) -> Result<(), SketchError> {
        if self.workers == 0 {
            return Err(SketchError::InvalidParameters(
                "NetConfig::workers must be >= 1".to_string(),
            ));
        }
        if self.read_timeout.is_zero() {
            return Err(SketchError::InvalidParameters(
                "NetConfig::read_timeout must be nonzero".to_string(),
            ));
        }
        if self.max_batch_pairs == 0 {
            return Err(SketchError::InvalidParameters(
                "NetConfig::max_batch_pairs must be >= 1".to_string(),
            ));
        }
        // A payload bound below one query pair (8 bytes) could answer
        // nothing but pings.
        if (self.max_payload as usize) < 8 {
            return Err(SketchError::InvalidParameters(
                "NetConfig::max_payload must be >= 8 bytes".to_string(),
            ));
        }
        Ok(())
    }
}

/// Why [`NetServer::start`] failed.
#[derive(Debug)]
pub enum NetStartError {
    /// The serve or net configuration was invalid.
    Config(SketchError),
    /// Binding or configuring the TCP listener failed.
    Bind(std::io::Error),
}

impl std::fmt::Display for NetStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetStartError::Config(e) => write!(f, "invalid configuration: {e}"),
            NetStartError::Bind(e) => write!(f, "binding the listener failed: {e}"),
        }
    }
}

impl std::error::Error for NetStartError {}

impl From<SketchError> for NetStartError {
    fn from(e: SketchError) -> Self {
        NetStartError::Config(e)
    }
}

/// Final counters returned by [`NetServer::shutdown`]: the shard router's
/// dispatch accounting plus the wire-level accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// In-process dispatch counters (queries, cache, service latency).
    pub serve: ServeStats,
    /// Wire counters (connections, frames, bytes, timeouts).
    pub net: NetStats,
}

impl std::fmt::Display for NetServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\nwire: {}", self.serve, self.net)
    }
}

/// Descriptive metadata about what a [`NetServer`] serves, reported by
/// `GET /stats`: the parsed [`SchemeSpec`](dsketch::SchemeSpec) string and
/// the graph fingerprint the sketches were built from.  Both default to
/// empty (reported as `""`) when the caller has nothing to say.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMeta {
    /// The serving scheme spec, e.g. `"tz:3"` (empty when unknown).
    pub spec: String,
    /// The source graph fingerprint's display form (empty when unknown).
    pub fingerprint: String,
}

impl ServeMeta {
    /// Build from the two display strings.
    pub fn new(spec: impl Into<String>, fingerprint: impl Into<String>) -> ServeMeta {
        ServeMeta {
            spec: spec.into(),
            fingerprint: fingerprint.into(),
        }
    }
}

/// Everything a connection worker needs: its own shard-router client, the
/// shared counters, the shutdown flag, and the oracle metadata the stats
/// document reports.
pub(super) struct WorkerCtx {
    server: Arc<SketchServer>,
    client: ServeClient,
    counters: Arc<NetCounters>,
    shutdown: Arc<AtomicBool>,
    config: NetConfig,
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    meta: Arc<ServeMeta>,
    started_at: Instant,
}

/// The TCP front end over a [`SketchServer`].
///
/// Start one with [`NetServer::start`]; it serves the binary `NETQ`/`NETR`
/// protocol and the hand-rolled HTTP endpoint on one port (the first four
/// bytes of each connection select the protocol).  Stop it with
/// [`NetServer::shutdown`] for the graceful drain, or drop it for the same
/// sequence without the final counters.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    server: Option<Arc<SketchServer>>,
    counters: Arc<NetCounters>,
    config: NetConfig,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7421"`, port `0` for ephemeral) and
    /// serve `oracle` through a fresh shard router.
    pub fn start(
        oracle: Arc<dyn DistanceOracle>,
        serve_config: ServeConfig,
        net_config: NetConfig,
        addr: &str,
    ) -> Result<NetServer, NetStartError> {
        NetServer::start_with_meta(oracle, serve_config, net_config, addr, ServeMeta::default())
    }

    /// [`NetServer::start`] plus the descriptive [`ServeMeta`] reported by
    /// `GET /stats`.
    pub fn start_with_meta(
        oracle: Arc<dyn DistanceOracle>,
        serve_config: ServeConfig,
        net_config: NetConfig,
        addr: &str,
        meta: ServeMeta,
    ) -> Result<NetServer, NetStartError> {
        NetServer::start_with_origin(oracle, serve_config, net_config, addr, meta, None)
    }

    /// [`NetServer::start_with_meta`] plus the oracle's typed provenance
    /// (scheme + graph fingerprint), which arms the swap compatibility
    /// gates — [`SketchServer::swap_snapshot`] refuses a snapshot whose
    /// scheme differs from `origin`'s.
    pub fn start_with_origin(
        oracle: Arc<dyn DistanceOracle>,
        serve_config: ServeConfig,
        net_config: NetConfig,
        addr: &str,
        meta: ServeMeta,
        origin: Option<(SchemeSpec, GraphFingerprint)>,
    ) -> Result<NetServer, NetStartError> {
        net_config.validate()?;
        let registry = Arc::new(MetricsRegistry::new());
        let mut tracer = Tracer::one_in(serve_config.trace_sample);
        if net_config.log_json {
            tracer = tracer.with_sink(Arc::new(StdoutSink));
        }
        let tracer = Arc::new(tracer);
        let server = Arc::new(SketchServer::start_with_origin(
            oracle,
            serve_config,
            Arc::clone(&registry),
            Arc::clone(&tracer),
            origin,
        )?);
        let listener = TcpListener::bind(addr).map_err(NetStartError::Bind)?;
        listener
            .set_nonblocking(true)
            .map_err(NetStartError::Bind)?;
        let local_addr = listener.local_addr().map_err(NetStartError::Bind)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::register(&registry));
        let meta = Arc::new(meta);
        let started_at = Instant::now();
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(net_config.pending_connections);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(net_config.workers);
        for worker in 0..net_config.workers {
            let ctx = WorkerCtx {
                server: Arc::clone(&server),
                client: server.client(),
                counters: Arc::clone(&counters),
                shutdown: Arc::clone(&shutdown),
                config: net_config,
                registry: Arc::clone(&registry),
                tracer: Arc::clone(&tracer),
                meta: Arc::clone(&meta),
                started_at,
            };
            let rx = Arc::clone(&conn_rx);
            workers.push(dsketch::parallel::spawn_named(
                &format!("dsketch-net-worker-{worker}"),
                move || run_conn_worker(rx, ctx),
            ));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = dsketch::parallel::spawn_named("dsketch-net-accept", move || {
            run_accept_loop(listener, conn_tx, accept_shutdown, accept_counters)
        });

        Ok(NetServer {
            addr: local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            server: Some(server),
            counters,
            config: net_config,
        })
    }

    /// The bound socket address (with the real port when `0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The network sizing the server was started with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Snapshot the shard router's dispatch counters.
    pub fn serve_stats(&self) -> ServeStats {
        self.server.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Snapshot the wire-level counters.
    pub fn net_stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Gracefully drain and stop: refuse new connections, let in-flight
    /// frames complete and be answered, close every connection, stop the
    /// shard router, and return the final counters.
    pub fn shutdown(mut self) -> NetServerStats {
        self.stop_net();
        let net = self.counters.snapshot();
        let serve = match self.server.take() {
            Some(server) => match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                Err(server) => server.stats(),
            },
            None => ServeStats::default(),
        };
        NetServerStats { serve, net }
    }

    /// Raise the shutdown flag and join the accept loop and workers.
    fn stop_net(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept_thread.take() {
            // dsketch-lint: allow(no-unwrap-in-hot-path): join propagates an accept-loop panic — there is no error to type
            accept.join().expect("net accept loop panicked");
        }
        for worker in self.workers.drain(..) {
            // dsketch-lint: allow(no-unwrap-in-hot-path): join propagates a worker panic — there is no error to type
            worker.join().expect("net connection worker panicked");
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_net();
        // Dropping the SketchServer Arc (now unique) joins the shards.
        self.server.take();
    }
}

/// The accept loop: poll-accept until shutdown, handing sockets to the
/// workers through the bounded queue.  Exiting drops the listener, so
/// late connects are refused at the TCP level.
fn run_accept_loop(
    listener: TcpListener,
    conn_tx: mpsc::SyncSender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counters.connections_accepted.inc();
                // The failpoint forces the Full path so the overload
                // answer can be exercised without actually saturating the
                // hand-off queue.
                let handoff = if dsketch_faults::fail_point!("net.accept.handoff").is_some() {
                    Err(TrySendError::Full(stream))
                } else {
                    conn_tx.try_send(stream)
                };
                match handoff {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        counters.connections_refused.inc();
                        counters.overload.inc();
                        shed_overload(stream);
                    }
                    Err(TrySendError::Disconnected(stream)) => {
                        drop(stream);
                        break;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // conn_tx drops here: workers drain what is queued, then exit.
}

/// Best-effort overload answer for a connection shed at the front door: a
/// complete HTTP `503` with a `Retry-After` hint, written with a short
/// deadline and ignored on failure.  HTTP clients get an actionable
/// response instead of a bare RST; binary clients fail their frame read
/// exactly as a plain drop would have made them.
fn shed_overload(stream: TcpStream) {
    const BODY: &str = "{\"error\":\"overloaded\",\"detail\":\"accept queue full; retry shortly\"}";
    let response = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{}",
        BODY.len(),
        BODY
    );
    let _ = wire::write_all_deadline(&stream, response.as_bytes(), Duration::from_millis(200));
    drop(stream);
}

/// One connection worker: take sockets from the shared queue until the
/// queue closes (accept loop gone) and it is drained.
fn run_conn_worker(rx: Arc<Mutex<Receiver<TcpStream>>>, ctx: WorkerCtx) {
    loop {
        let next = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                // A poisoned queue means another worker panicked; stop.
                Err(_) => break,
            };
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(stream, &ctx),
            Err(_) => break,
        }
    }
}

/// Serve one connection to completion: sniff the protocol from the first
/// four bytes, then run the matching session loop.
fn handle_connection(stream: TcpStream, ctx: &WorkerCtx) {
    let _ = stream.set_nodelay(true);
    let deadline = Instant::now() + ctx.config.read_timeout;
    match wire::peek_exact(&stream, 4, deadline, Some(&ctx.shutdown)) {
        Ok(Some(prefix)) if prefix == REQUEST_MAGIC => binary_session(&stream, ctx),
        Ok(Some(_)) => http::http_session(&stream, ctx),
        Ok(None) => {
            // Closed before speaking, or shutdown raised while idle.
        }
        Err(NetError::Timeout) => {
            ctx.counters.timeouts.inc();
        }
        Err(_) => {}
    }
    ctx.counters.connections_closed.inc();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The binary request–response loop: one `NETQ` frame in, one `NETR`
/// frame out, until clean close, deadline, framing damage, or shutdown.
fn binary_session(stream: &TcpStream, ctx: &WorkerCtx) {
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            // Between frames: nothing in flight, close immediately.
            break;
        }
        let deadline = Instant::now() + ctx.config.read_timeout;
        match wire::read_frame(
            stream,
            REQUEST_MAGIC,
            ctx.config.max_payload,
            deadline,
            Some(&ctx.shutdown),
        ) {
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Frame(header, payload)) => {
                let roundtrip = Instant::now();
                ctx.counters.frames_in.inc();
                ctx.counters
                    .bytes_in
                    .add((HEADER_LEN + payload.len()) as u64);
                match Request::decode(header.kind, &payload) {
                    Ok(request) => {
                        let response = answer_request(request, ctx);
                        if !write_response(stream, &response, ctx) {
                            break;
                        }
                    }
                    Err(e) => {
                        // The header (and so the framing) was fine — reply
                        // with a typed error and keep the connection.
                        ctx.counters.protocol_errors.inc();
                        let error =
                            Response::Error(WireError::new(WireErrorCode::BadFrame, e.to_string()));
                        if !write_response(stream, &error, ctx) {
                            break;
                        }
                    }
                }
                ctx.counters
                    .roundtrip
                    .record(roundtrip.elapsed().as_nanos() as u64);
            }
            Err(NetError::Timeout) => {
                ctx.counters.timeouts.inc();
                break;
            }
            Err(
                e @ (NetError::BadMagic { .. }
                | NetError::UnsupportedVersion { .. }
                | NetError::NonZeroReserved { .. }
                | NetError::FrameTooLarge { .. }),
            ) => {
                // Framing is poisoned: answer once with a typed error so
                // the peer learns why, then close.
                ctx.counters.protocol_errors.inc();
                let error = Response::Error(WireError::new(WireErrorCode::BadFrame, e.to_string()));
                let _ = write_response(stream, &error, ctx);
                break;
            }
            Err(NetError::Truncated { .. }) => {
                ctx.counters.protocol_errors.inc();
                break;
            }
            Err(_) => break,
        }
    }
}

/// Dispatch one decoded request through the shard router.
fn answer_request(request: Request, ctx: &WorkerCtx) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Query { u, v } => match ctx.client.query(u, v) {
            Ok(distance) => Response::Distance(distance),
            Err(e) => Response::Error(WireError::from_sketch(&e)),
        },
        Request::QueryBatch { pairs } => {
            if pairs.len() > ctx.config.max_batch_pairs {
                return Response::Error(WireError::new(
                    WireErrorCode::BatchTooLarge,
                    format!(
                        "batch of {} pairs exceeds the {}-pair bound",
                        pairs.len(),
                        ctx.config.max_batch_pairs
                    ),
                ));
            }
            Response::Batch(
                ctx.client
                    .query_batch(&pairs)
                    .into_iter()
                    .map(|r| r.map_err(|e| WireError::from_sketch(&e)))
                    .collect(),
            )
        }
        Request::Stats => Response::Stats(stats_json(ctx)),
        Request::Swap { path } => match ctx.server.swap_snapshot(&path) {
            Ok(generation) => Response::Swapped(generation),
            Err(e) => Response::Error(WireError::new(WireErrorCode::SwapRefused, e.to_string())),
        },
    }
}

/// Write one response frame; `false` means the connection is unusable.
fn write_response(stream: &TcpStream, response: &Response, ctx: &WorkerCtx) -> bool {
    let frame = response.to_frame();
    match wire::write_all_deadline(stream, &frame, ctx.config.read_timeout) {
        Ok(written) => {
            ctx.counters.frames_out.inc();
            ctx.counters.bytes_out.add(written as u64);
            true
        }
        Err(NetError::Timeout) => {
            ctx.counters.timeouts.inc();
            false
        }
        Err(_) => false,
    }
}

/// The stats document served by `GET /stats` and the binary stats frame:
/// oracle metadata, shard-router totals, and wire counters in one JSON
/// object (hand-rolled — every value is a number or a short JSON string).
///
/// Every number comes from **one** registry snapshot, so the `derived`
/// ratios are computed from exactly the values reported beside them —
/// under concurrent load the document can never claim, say, more cache
/// hits than queries.
pub(crate) fn stats_json(ctx: &WorkerCtx) -> String {
    let snap = ctx.registry.snapshot();
    let serve = ServeStats::from_metrics(&snap, ctx.server.num_shards());
    let net = NetStats::from_metrics(&snap);
    // Oracle metadata comes from the *current* generation, so a hot swap
    // is reflected in the very next stats document.
    let generation = ctx.server.current_generation();
    let stretch = match generation.oracle.stretch_bound() {
        Some(bound) => bound.to_string(),
        None => "null".to_string(),
    };
    let spec = match generation.spec {
        Some(spec) => spec.to_string(),
        None => ctx.meta.spec.clone(),
    };
    let fingerprint = match generation.fingerprint {
        Some(fingerprint) => fingerprint.to_string(),
        None => ctx.meta.fingerprint.clone(),
    };
    let frames_per_connection = if net.connections_accepted == 0 {
        0.0
    } else {
        net.frames_in as f64 / net.connections_accepted as f64
    };
    format!(
        concat!(
            "{{\"scheme\":\"{}\",\"spec\":\"{}\",\"graph\":\"{}\",",
            "\"num_nodes\":{},\"stretch_bound\":{},\"uptime_seconds\":{:.3},",
            "\"generation\":{},\"swaps\":{},",
            "\"serve\":{{\"queries\":{},\"cache_hits\":{},\"cache_misses\":{},",
            "\"cache_invalidations\":{},",
            "\"errors\":{},\"batches\":{},\"busy_nanos\":{},\"max_latency_nanos\":{},",
            "\"restarts\":{},\"shards\":{}}},",
            "\"net\":{{\"connections_accepted\":{},\"connections_refused\":{},",
            "\"connections_closed\":{},\"frames_in\":{},\"frames_out\":{},",
            "\"http_requests\":{},\"bytes_in\":{},\"bytes_out\":{},",
            "\"timeouts\":{},\"protocol_errors\":{},\"overloads\":{}}},",
            "\"derived\":{{\"hit_rate\":{:.6},\"frames_per_connection\":{:.3}}}}}"
        ),
        generation.oracle.scheme_name(),
        http::json_escape(&spec),
        http::json_escape(&fingerprint),
        generation.oracle.num_nodes(),
        stretch,
        ctx.started_at.elapsed().as_secs_f64(),
        serve.generation,
        serve.swaps,
        serve.totals.queries,
        serve.totals.cache_hits,
        serve.totals.cache_misses,
        serve.totals.cache_invalidations,
        serve.totals.errors,
        serve.totals.batches,
        serve.totals.busy_nanos,
        serve.totals.max_latency_nanos,
        serve.totals.restarts,
        serve.num_shards(),
        net.connections_accepted,
        net.connections_refused,
        net.connections_closed,
        net.frames_in,
        net.frames_out,
        net.http_requests,
        net.bytes_in,
        net.bytes_out,
        net.timeouts,
        net.protocol_errors,
        net.overloads,
        serve.totals.hit_rate(),
        frames_per_connection,
    )
}

/// Accessors `http.rs` needs on the worker context without exposing the
/// struct fields outside the module tree.
impl WorkerCtx {
    pub(super) fn query(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        self.client.query(u, v)
    }

    pub(super) fn scheme_name(&self) -> &'static str {
        self.server.current_generation().oracle.scheme_name()
    }

    /// Hot-swap the serving snapshot (the `POST /swap` and binary swap
    /// paths); returns the new generation number.
    pub(super) fn swap_snapshot(&self, path: &str) -> Result<u64, crate::swap::SwapError> {
        self.server.swap_snapshot(path)
    }

    pub(super) fn read_timeout(&self) -> Duration {
        self.config.read_timeout
    }

    pub(super) fn counters(&self) -> &NetCounters {
        &self.counters
    }

    pub(super) fn shutdown_flag(&self) -> &AtomicBool {
        &self.shutdown
    }

    pub(super) fn stats_document(&self) -> String {
        stats_json(self)
    }

    /// The Prometheus text document for `GET /metrics`: the process-global
    /// registry (build, graph, store instruments) plus this server's own
    /// (shard and wire instruments).
    pub(super) fn metrics_document(&self) -> String {
        prometheus::encode(&[&dsketch_obs::global().snapshot(), &self.registry.snapshot()])
    }

    /// The most recent `n` sampled trace events, oldest first.
    pub(super) fn trace_recent(&self, n: usize) -> Vec<String> {
        self.tracer.recent(n)
    }
}
