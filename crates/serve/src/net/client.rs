//! A blocking client for the binary `NETQ`/`NETR` protocol.
//!
//! One [`NetClient`] owns one TCP connection and speaks strict
//! request–response, mirroring the server's session loop.  The loadgen
//! binary opens one client per simulated connection; tests use it to
//! compare wire answers against the in-process oracle byte for byte.

use super::protocol::{
    NetError, Request, Response, WireError, DEFAULT_MAX_PAYLOAD, RESPONSE_MAGIC,
};
use super::wire::{self, ReadOutcome};
use netgraph::{Distance, NodeId};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A connected wire client.
pub struct NetClient {
    stream: TcpStream,
    timeout: Duration,
}

impl NetClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:7421"`) with a single timeout
    /// governing connect, each whole-frame read, and each write.
    pub fn connect(addr: &str, timeout: Duration) -> Result<NetClient, NetError> {
        let mut last = NetError::Io(std::io::ErrorKind::AddrNotAvailable);
        for addr in
            std::net::ToSocketAddrs::to_socket_addrs(addr).map_err(|e| NetError::Io(e.kind()))?
        {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(NetClient { stream, timeout });
                }
                Err(e) => last = NetError::Io(e.kind()),
            }
        }
        Err(last)
    }

    /// [`NetClient::connect`] with bounded retry: keep trying until
    /// `deadline` has elapsed, sleeping between attempts with capped
    /// exponential backoff and decorrelated jitter (seeded from `addr`,
    /// so concurrent clients desynchronize deterministically).
    ///
    /// This is the right call for racing a server that is still binding
    /// its listener (CI smoke tests, loadgen against a just-spawned
    /// server): a refused or timed-out connect is retried instead of
    /// surfacing, and only the attempt that exhausts the deadline returns
    /// its error.  `timeout` governs each individual connect attempt and
    /// becomes the connected client's frame deadline.
    pub fn connect_with_retry(
        addr: &str,
        timeout: Duration,
        deadline: Duration,
    ) -> Result<NetClient, NetError> {
        let started = Instant::now();
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut jitter = addr.bytes().fold(0x9E37_79B9_7F4A_7C15u64, |acc, b| {
            (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        });
        let mut attempt = 0u32;
        loop {
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                return NetClient::connect(addr, timeout);
            }
            match NetClient::connect(addr, timeout.min(remaining.max(base))) {
                Ok(client) => return Ok(client),
                Err(_) => {
                    let raw = base
                        .saturating_mul(2u32.saturating_pow(attempt.min(16)))
                        .min(cap);
                    // splitmix64 step for the jitter draw.
                    jitter = jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = jitter;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    let nanos = u64::try_from(raw.as_nanos()).unwrap_or(u64::MAX);
                    let sleep = Duration::from_nanos(nanos / 2 + z % (nanos / 2 + 1))
                        .min(deadline.saturating_sub(started.elapsed()));
                    std::thread::sleep(sleep);
                    attempt += 1;
                }
            }
        }
    }

    /// Replace the per-operation deadline (connect kept its own).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Send one request frame and wait for its response frame.
    pub fn round_trip(&mut self, request: &Request) -> Result<Response, NetError> {
        wire::write_all_deadline(&self.stream, &request.to_frame(), self.timeout)?;
        let deadline = Instant::now() + self.timeout;
        match wire::read_frame(
            &self.stream,
            RESPONSE_MAGIC,
            DEFAULT_MAX_PAYLOAD,
            deadline,
            None,
        )? {
            ReadOutcome::Frame(header, payload) => Response::decode(header.kind, &payload),
            ReadOutcome::Closed => Err(NetError::Truncated { read: 0, needed: 1 }),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// One distance query.  A typed server-side failure (unknown node, no
    /// common landmark) arrives as `Ok(Err(_))`; transport problems as
    /// `Err(_)`.
    pub fn query(&mut self, u: NodeId, v: NodeId) -> Result<Result<Distance, WireError>, NetError> {
        match self.round_trip(&Request::Query { u, v })? {
            Response::Distance(d) => Ok(Ok(d)),
            Response::Error(e) => Ok(Err(e)),
            other => Err(unexpected("distance", &other)),
        }
    }

    /// A batched query; the server answers in input order, one slot per
    /// pair.
    #[allow(clippy::type_complexity)]
    pub fn query_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Result<Distance, WireError>>, NetError> {
        match self.round_trip(&Request::QueryBatch {
            pairs: pairs.to_vec(),
        })? {
            Response::Batch(results) => Ok(results),
            Response::Error(e) => Err(NetError::Server(e)),
            other => Err(unexpected("batch", &other)),
        }
    }

    /// Ask the server to hot-swap its serving snapshot for the `DSK1`
    /// file at `path` (a path on the *server's* filesystem).  Returns the
    /// new generation number on success; a refused swap (corrupt file,
    /// scheme or node-count mismatch) arrives as
    /// [`NetError::Server`] with code `swap-refused`.
    pub fn swap(&mut self, path: &str) -> Result<u64, NetError> {
        match self.round_trip(&Request::Swap {
            path: path.to_string(),
        })? {
            Response::Swapped(generation) => Ok(generation),
            Response::Error(e) => Err(NetError::Server(e)),
            other => Err(unexpected("swapped", &other)),
        }
    }

    /// Fetch the server's stats JSON document.
    pub fn stats_json(&mut self) -> Result<String, NetError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// The underlying stream (tests use this to misbehave on purpose).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

fn unexpected(expected: &'static str, got: &Response) -> NetError {
    NetError::UnexpectedResponse {
        expected,
        got: got.kind_name(),
    }
}
