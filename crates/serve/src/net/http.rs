//! A minimal hand-parsed HTTP/1.1 endpoint sharing the shard router.
//!
//! Query routes are `GET`; the one mutating route is `POST`.  Every
//! route answers JSON (or Prometheus text) and closes the connection
//! (`Connection: close`; one request per connection keeps the
//! worker-per-connection model honest):
//!
//! * `GET /distance?u=<id>&v=<id>` — one distance estimate,
//!   `{"u":…,"v":…,"distance":…,"scheme":"…"}` on success.
//! * `GET /stats` — the same JSON counters document the binary stats
//!   frame carries.
//! * `POST /swap?snapshot=<path>` — hot-swap the serving oracle to the
//!   `DSK1` snapshot at `<path>` (percent-encoded, on the server's
//!   filesystem); `{"generation":N}` on success, a `409` with error
//!   class `swap-refused` when the snapshot fails verification or
//!   compatibility gates.
//! * `GET /faults` — the armed failpoints: names, plans, hit and trip
//!   counts (`{"armed_points":0,…}` in normal operation).
//! * `POST /faults?spec=<spec>` — arm the deterministic fault plan in
//!   `<spec>` (percent-encoded `DSKETCH_FAULTS` grammar), replacing
//!   whatever was armed; `POST /faults?disarm=all` disarms everything.
//!
//! Errors map onto conventional status codes: an unparsable request line
//! or missing/garbled parameters is `400`, an unknown node is `404`, a
//! pair with no common landmark is `422`, a refused swap is `409`, a
//! method the path does not support is `405`, an unknown path is `404`,
//! an oversized request head is `431`, and anything else server-side is
//! `500`.  Every error body is
//! `{"error":"<kebab-case class>","detail":"…"}`.
//!
//! The parser is deliberately tiny: request line + headers up to
//! `\r\n\r\n` (bounded at 8 KiB), no bodies, no chunked encoding, no
//! keep-alive.  It exists so `curl` and dashboards can hit the server
//! without a client binary — the binary protocol is the real interface.

use super::protocol::WireErrorCode;
use super::server::WorkerCtx;
use super::wire;
use crate::stats::NetCounters;
use dsketch::SketchError;
use netgraph::NodeId;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Serve one HTTP exchange on a freshly sniffed connection, then return
/// (the caller closes the socket).
pub(super) fn http_session(stream: &TcpStream, ctx: &WorkerCtx) {
    let counters = ctx.counters();
    let head = match read_request_head(stream, ctx, counters) {
        Some(head) => head,
        None => return,
    };
    let reply = match parse_request_line(&head) {
        Ok((method, target)) => {
            counters.http_requests.inc();
            route(&method, &target, ctx)
        }
        Err(reply) => {
            counters.protocol_errors.inc();
            reply
        }
    };
    write_reply(stream, &reply, ctx, counters);
}

/// Read until the blank line ending the request head, the size bound, the
/// deadline, or EOF.  Returns `None` when nothing useful arrived (the
/// reply, if any, has already been written).
fn read_request_head(
    stream: &TcpStream,
    ctx: &WorkerCtx,
    counters: &NetCounters,
) -> Option<Vec<u8>> {
    let deadline = Instant::now() + ctx.read_timeout();
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Some(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            counters.protocol_errors.inc();
            let reply = error_reply(431, "request-too-large", "request head exceeds 8 KiB");
            write_reply(stream, &reply, ctx, counters);
            return None;
        }
        let now = Instant::now();
        if now >= deadline {
            counters.timeouts.inc();
            return None;
        }
        let slice = (deadline - now)
            .min(std::time::Duration::from_millis(50))
            .max(std::time::Duration::from_millis(1));
        if stream.set_read_timeout(Some(slice)).is_err() {
            return None;
        }
        match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => {
                // EOF before a complete head: a garbage or truncated
                // request.  Anything counts once as a protocol error.
                counters.protocol_errors.inc();
                return None;
            }
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.shutdown_flag().load(Ordering::Relaxed) && head.is_empty() {
                    return None;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Pull the method and request target out of the first line, or produce
/// the full error reply for a malformed one.
fn parse_request_line(head: &[u8]) -> Result<(String, String), String> {
    let text = std::str::from_utf8(head)
        .map_err(|_| error_reply(400, "bad-request", "request line is not UTF-8"))?;
    let line = text
        .lines()
        .next()
        .ok_or_else(|| error_reply(400, "bad-request", "empty request"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| error_reply(400, "bad-request", "missing method"))?;
    let target = parts
        .next()
        .ok_or_else(|| error_reply(400, "bad-request", "missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| error_reply(400, "bad-request", "missing HTTP version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(error_reply(400, "bad-request", "malformed request line"));
    }
    if method != "GET" && method != "POST" {
        return Err(error_reply(
            405,
            "method-not-allowed",
            "only GET and POST are supported",
        ));
    }
    Ok((method.to_string(), target.to_string()))
}

/// Dispatch a parsed method + request target to its route.
fn route(method: &str, target: &str, ctx: &WorkerCtx) -> String {
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    match (method, path) {
        ("GET", "/distance") => distance_route(query, ctx),
        ("GET", "/stats") => json_reply(200, &ctx.stats_document()),
        ("GET", "/metrics") => text_reply(200, &ctx.metrics_document()),
        ("GET", "/trace") => trace_route(query, ctx),
        ("POST", "/swap") => swap_route(query, ctx),
        ("GET", "/faults") => json_reply(200, &faults_status_json()),
        ("POST", "/faults") => faults_route(query),
        ("POST", "/distance" | "/stats" | "/metrics" | "/trace") => error_reply(
            405,
            "method-not-allowed",
            format!("{path} is read-only: use GET"),
        ),
        ("GET", "/swap") => error_reply(
            405,
            "method-not-allowed",
            "/swap mutates the server: use POST",
        ),
        _ => error_reply(
            404,
            "not-found",
            "unknown path (try /distance, /stats, /metrics, /trace, /faults, or POST /swap)",
        ),
    }
}

/// The `GET /faults` body: every armed failpoint with its plan and
/// counters, plus the two headline numbers the chaos battery and the CI
/// `faults-disarmed` assert key on.
fn faults_status_json() -> String {
    let registry = dsketch_faults::registry();
    let points: Vec<String> = registry
        .status()
        .into_iter()
        .map(|p| {
            format!(
                "{{\"point\":\"{}\",\"action\":\"{}\",\"one_in\":{},\"after\":{},\
                 \"max\":{},\"hits\":{},\"trips\":{}}}",
                json_escape(&p.name),
                p.plan.action,
                p.plan.one_in,
                p.plan.after,
                p.plan.max,
                p.hits,
                p.trips
            )
        })
        .collect();
    format!(
        "{{\"armed_points\":{},\"total_trips\":{},\"points\":[{}]}}",
        registry.armed_points(),
        registry.total_trips(),
        points.join(",")
    )
}

/// `POST /faults?spec=<percent-encoded spec>` — arm a deterministic fault
/// plan (replacing whatever was armed); `POST /faults?disarm=all` disarms
/// everything.  Success answers the same status document as `GET /faults`.
fn faults_route(query: &str) -> String {
    let mut spec = None;
    let mut disarm = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => return error_reply(400, "bad-request", "parameters must be key=value"),
        };
        match key {
            "spec" => {
                spec = match percent_decode(value) {
                    Some(spec) => Some(spec),
                    None => {
                        return error_reply(
                            400,
                            "bad-request",
                            "spec= is not valid percent-encoded UTF-8",
                        )
                    }
                };
            }
            "disarm" if value == "all" => disarm = true,
            "disarm" => {
                return error_reply(400, "bad-request", "disarm=all is the only disarm form")
            }
            _ => return error_reply(400, "bad-request", format!("unknown parameter '{key}'")),
        }
    }
    match (spec, disarm) {
        (Some(_), true) => error_reply(400, "bad-request", "spec= and disarm=all are exclusive"),
        (Some(spec), false) => match dsketch_faults::arm_from_spec(&spec) {
            Ok(_) => json_reply(200, &faults_status_json()),
            Err(e) => error_reply(400, "bad-fault-spec", e.to_string()),
        },
        (None, true) => {
            dsketch_faults::disarm_all();
            json_reply(200, &faults_status_json())
        }
        (None, false) => error_reply(400, "bad-request", "spec=<spec> or disarm=all is required"),
    }
}

/// `POST /swap?snapshot=<percent-encoded path>` — hot-swap the serving
/// oracle.  Success answers `{"generation":N}`; a refused swap answers
/// `409` with error class `swap-refused` and leaves the live generation
/// untouched.
fn swap_route(query: &str, ctx: &WorkerCtx) -> String {
    let mut snapshot = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => return error_reply(400, "bad-request", "parameters must be key=value"),
        };
        if key != "snapshot" {
            return error_reply(400, "bad-request", format!("unknown parameter '{key}'"));
        }
        snapshot = match percent_decode(value) {
            Some(path) => Some(path),
            None => {
                return error_reply(
                    400,
                    "bad-request",
                    "snapshot= is not valid percent-encoded UTF-8",
                )
            }
        };
    }
    let path = match snapshot {
        Some(path) if !path.is_empty() => path,
        _ => return error_reply(400, "bad-request", "snapshot=<path> is required"),
    };
    match ctx.swap_snapshot(&path) {
        Ok(generation) => json_reply(200, &format!("{{\"generation\":{generation}}}")),
        Err(e) => error_reply(409, "swap-refused", e.to_string()),
    }
}

/// Decode `%XX` escapes (the query-string subset: no `+`-for-space, since
/// filesystem paths legitimately contain `+`).  `None` on a dangling or
/// non-hex escape, or when the decoded bytes are not UTF-8.
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let high = (hex[0] as char).to_digit(16)?;
            let low = (hex[1] as char).to_digit(16)?;
            out.push((high * 16 + low) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// `GET /trace?n=K` — the last K (default 32) sampled trace events as a
/// JSON array.  Each event is already a JSON document, so the body is just
/// the events joined inside brackets.
fn trace_route(query: &str, ctx: &WorkerCtx) -> String {
    let mut n = 32usize;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => return error_reply(400, "bad-request", "parameters must be key=value"),
        };
        if key != "n" {
            return error_reply(400, "bad-request", format!("unknown parameter '{key}'"));
        }
        n = match value.parse() {
            Ok(count) => count,
            Err(_) => {
                return error_reply(
                    400,
                    "bad-request",
                    format!("'{value}' is not an event count (expected a usize)"),
                )
            }
        };
    }
    json_reply(200, &format!("[{}]", ctx.trace_recent(n).join(",")))
}

/// `GET /distance?u=..&v=..`
fn distance_route(query: &str, ctx: &WorkerCtx) -> String {
    let (mut u, mut v) = (None, None);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = match pair.split_once('=') {
            Some(kv) => kv,
            None => return error_reply(400, "bad-request", "parameters must be key=value"),
        };
        let parsed: u32 = match value.parse() {
            Ok(id) => id,
            Err(_) => {
                return error_reply(
                    400,
                    "bad-request",
                    format!("'{value}' is not a node id (expected a u32)"),
                )
            }
        };
        match key {
            "u" => u = Some(NodeId(parsed)),
            "v" => v = Some(NodeId(parsed)),
            _ => return error_reply(400, "bad-request", format!("unknown parameter '{key}'")),
        }
    }
    let (u, v) = match (u, v) {
        (Some(u), Some(v)) => (u, v),
        _ => return error_reply(400, "bad-request", "both u= and v= are required"),
    };
    match ctx.query(u, v) {
        Ok(distance) => json_reply(
            200,
            &format!(
                "{{\"u\":{},\"v\":{},\"distance\":{},\"scheme\":\"{}\"}}",
                u.0,
                v.0,
                distance,
                ctx.scheme_name()
            ),
        ),
        Err(e) => {
            let (status, code) = match &e {
                SketchError::UnknownNode(_) => (404, WireErrorCode::UnknownNode),
                SketchError::NoCommonLandmark { .. } => (422, WireErrorCode::NoCommonLandmark),
                SketchError::ShardPanicked { .. } => (503, WireErrorCode::ShardPanicked),
                _ => (500, WireErrorCode::Internal),
            };
            error_reply(status, code.name(), e.to_string())
        }
    }
}

/// Build a complete HTTP response with a JSON body.
fn json_reply(status: u16, body: &str) -> String {
    reply_with_type(status, "application/json", body)
}

/// Build a complete HTTP response with a Prometheus text-format body.
fn text_reply(status: u16, body: &str) -> String {
    reply_with_type(status, "text/plain; version=0.0.4", body)
}

fn reply_with_type(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Build an error response with the standard `{"error":…,"detail":…}` body.
fn error_reply(status: u16, code: &str, detail: impl AsRef<str>) -> String {
    json_reply(
        status,
        &format!(
            "{{\"error\":\"{code}\",\"detail\":\"{}\"}}",
            json_escape(detail.as_ref())
        ),
    )
}

/// Escape a detail string for embedding in a JSON string literal.
pub(super) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write a reply, charging the byte counters.
fn write_reply(stream: &TcpStream, reply: &str, ctx: &WorkerCtx, counters: &NetCounters) {
    match wire::write_all_deadline(stream, reply.as_bytes(), ctx.read_timeout()) {
        Ok(written) => {
            counters.bytes_out.add(written as u64);
        }
        Err(super::protocol::NetError::Timeout) => {
            counters.timeouts.inc();
        }
        Err(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects() {
        assert_eq!(
            parse_request_line(b"GET /stats HTTP/1.1\r\n\r\n"),
            Ok(("GET".to_string(), "/stats".to_string()))
        );
        assert_eq!(
            parse_request_line(b"GET /distance?u=1&v=2 HTTP/1.0\r\nhost: x\r\n\r\n"),
            Ok(("GET".to_string(), "/distance?u=1&v=2".to_string()))
        );
        // POST parses (the swap route needs it); route() rejects POSTs to
        // read-only paths with a 405 instead.
        assert_eq!(
            parse_request_line(b"POST /swap?snapshot=%2Ftmp%2Fa.dsk1 HTTP/1.1\r\n\r\n"),
            Ok((
                "POST".to_string(),
                "/swap?snapshot=%2Ftmp%2Fa.dsk1".to_string()
            ))
        );
        assert!(parse_request_line(b"DELETE /stats HTTP/1.1\r\n\r\n")
            .unwrap_err()
            .starts_with("HTTP/1.1 405"));
        assert!(parse_request_line(b"\r\n\r\n")
            .unwrap_err()
            .starts_with("HTTP/1.1 400"));
        assert!(parse_request_line(b"GET /stats SPDY/9\r\n\r\n")
            .unwrap_err()
            .starts_with("HTTP/1.1 400"));
        assert!(parse_request_line(b"\xff\xfe garbage")
            .unwrap_err()
            .starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn percent_decoding_round_trips_paths() {
        assert_eq!(percent_decode("plain.dsk1"), Some("plain.dsk1".to_string()));
        assert_eq!(
            percent_decode("%2Ftmp%2Fnext%20gen.dsk1"),
            Some("/tmp/next gen.dsk1".to_string())
        );
        assert_eq!(
            percent_decode("a+b"),
            Some("a+b".to_string()),
            "no +-for-space"
        );
        assert_eq!(percent_decode("%2"), None, "dangling escape");
        assert_eq!(percent_decode("%zz"), None, "non-hex escape");
        assert_eq!(percent_decode("%ff"), None, "not UTF-8");
    }

    #[test]
    fn replies_carry_content_length_and_close() {
        let reply = json_reply(200, "{\"ok\":true}");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(reply.contains("content-length: 11\r\n"));
        assert!(reply.contains("connection: close\r\n"));
        assert!(reply.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_bodies_are_escaped_json() {
        let reply = error_reply(400, "bad-request", "a \"quoted\"\nthing");
        assert!(reply.contains("\\\"quoted\\\"\\n"));
        assert!(json_escape("\u{1}").contains("\\u0001"));
    }
}
