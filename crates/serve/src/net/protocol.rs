//! The `NETQ`/`NETR` length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//!  offset  size  field
//!  ──────  ────  ─────────────────────────────────────────────
//!       0     4  magic        "NETQ" (request) / "NETR" (reply)
//!       4     1  version      currently 1
//!       5     1  kind         frame type (see below)
//!       6     2  reserved     must be zero (LE u16)
//!       8     4  payload len  LE u32, bounded by `max_payload`
//!      12     …  payload      SketchCodec-encoded body
//! ```
//!
//! Request kinds (`NETQ`): `0` ping, `1` single query (two `NodeId`s),
//! `2` batched query (length-prefixed pair list), `3` stats, `4` swap
//! (length-prefixed snapshot path).  Response kinds (`NETR`): `0` pong,
//! `1` distance (`u64`), `2` batch (per-pair ok/error results), `3` stats
//! (length-prefixed JSON text), `4` swapped (the new generation number),
//! `15` typed error.  Payload encodings reuse [`dsketch::codec`] — the same
//! little-endian, length-prefixed, bounds-checked decoder the `DSK1`
//! snapshot format is built on, so a truncated or corrupted payload fails
//! with a typed [`CodecError`], never a panic.
//!
//! Framing errors (bad magic, unsupported version, nonzero reserved
//! bytes, oversized length prefix) poison the stream — after one the
//! receiver can no longer find the next frame boundary, so the server
//! replies with a typed error frame and closes.  Payload errors (unknown
//! kind, codec failure) leave framing intact: the server replies with a
//! typed error frame and keeps the connection.

use dsketch::codec::{CodecError, Decoder, Encoder};
use dsketch::SketchError;
use netgraph::{Distance, NodeId};

/// Frame magic for client→server request frames.
pub const REQUEST_MAGIC: [u8; 4] = *b"NETQ";

/// Frame magic for server→client response frames.
pub const RESPONSE_MAGIC: [u8; 4] = *b"NETR";

/// Version byte carried by every frame.  Bumped on any layout change.
pub const NET_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Default bound on a frame's payload length (1 MiB).  A length prefix
/// beyond the bound is rejected before any allocation.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Errors arising while reading, writing, or interpreting frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The four magic bytes were not the expected `NETQ`/`NETR`.
    BadMagic {
        /// The bytes actually read.
        got: [u8; 4],
    },
    /// The version byte names a protocol revision this build cannot speak.
    UnsupportedVersion {
        /// The version actually read.
        got: u8,
    },
    /// The reserved header bytes were not zero (a corrupted or misaligned
    /// header).
    NonZeroReserved {
        /// The value actually read.
        got: u16,
    },
    /// The frame kind byte names no known frame type.
    UnknownFrameKind {
        /// The kind actually read.
        got: u8,
    },
    /// The payload length prefix exceeds the configured bound.
    FrameTooLarge {
        /// The length the header claimed.
        len: u32,
        /// The configured bound.
        max: u32,
    },
    /// The peer closed the connection in the middle of a frame.
    Truncated {
        /// Bytes read before the stream ended.
        read: usize,
        /// Bytes the frame needed.
        needed: usize,
    },
    /// The payload failed to decode.
    Codec(CodecError),
    /// The read or write deadline expired before the frame completed.
    Timeout,
    /// An I/O error other than timeout or clean close.
    Io(std::io::ErrorKind),
    /// The peer replied with a frame that is valid but not the kind the
    /// caller was waiting for.
    UnexpectedResponse {
        /// What the caller expected.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The server answered the whole request with a typed error frame
    /// (e.g. a batch over the pair bound, or a malformed request echo).
    Server(WireError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            NetError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {NET_VERSION})"
                )
            }
            NetError::NonZeroReserved { got } => {
                write!(f, "reserved header bytes must be zero, got {got:#06x}")
            }
            NetError::UnknownFrameKind { got } => write!(f, "unknown frame kind {got}"),
            NetError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte bound"
                )
            }
            NetError::Truncated { read, needed } => {
                write!(f, "connection closed mid-frame: {read} of {needed} bytes")
            }
            NetError::Codec(e) => write!(f, "payload decode failed: {e}"),
            NetError::Timeout => write!(f, "read deadline expired mid-frame"),
            NetError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            NetError::UnexpectedResponse { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
            NetError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// Typed error payload carried by error frames and per-pair batch slots.
///
/// The codes mirror [`SketchError`] (so a wire client can distinguish an
/// unknown node from a disconnected pair) plus the protocol-level failures
/// a server reports before it ever reaches the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: WireErrorCode,
    /// Human-readable detail (UTF-8; bounded by the frame size).
    pub detail: String,
}

/// The error classes a [`WireError`] can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorCode {
    /// A queried node is outside the sketch set ([`SketchError::UnknownNode`]).
    UnknownNode,
    /// The two labels share no landmark ([`SketchError::NoCommonLandmark`]).
    NoCommonLandmark,
    /// The request frame was malformed (framing or payload decode failure).
    BadFrame,
    /// A batch request exceeded the server's pair bound.
    BatchTooLarge,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown,
    /// Any other server-side failure.
    Internal,
    /// A snapshot swap was refused: the snapshot failed deep verification
    /// or did not match the serving scheme / node count.  The live
    /// generation is untouched.
    SwapRefused,
    /// A query shard panicked with this batch in flight
    /// ([`SketchError::ShardPanicked`]).  The supervisor restarts the
    /// shard, so an immediate retry is expected to succeed.
    ShardPanicked,
}

impl WireErrorCode {
    /// Stable kebab-case name (used in HTTP error JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            WireErrorCode::UnknownNode => "unknown-node",
            WireErrorCode::NoCommonLandmark => "no-common-landmark",
            WireErrorCode::BadFrame => "bad-frame",
            WireErrorCode::BatchTooLarge => "batch-too-large",
            WireErrorCode::ShuttingDown => "shutting-down",
            WireErrorCode::Internal => "internal",
            WireErrorCode::SwapRefused => "swap-refused",
            WireErrorCode::ShardPanicked => "shard-panicked",
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            WireErrorCode::UnknownNode => 1,
            WireErrorCode::NoCommonLandmark => 2,
            WireErrorCode::BadFrame => 3,
            WireErrorCode::BatchTooLarge => 4,
            WireErrorCode::ShuttingDown => 5,
            WireErrorCode::Internal => 6,
            WireErrorCode::SwapRefused => 7,
            WireErrorCode::ShardPanicked => 8,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            1 => Ok(WireErrorCode::UnknownNode),
            2 => Ok(WireErrorCode::NoCommonLandmark),
            3 => Ok(WireErrorCode::BadFrame),
            4 => Ok(WireErrorCode::BatchTooLarge),
            5 => Ok(WireErrorCode::ShuttingDown),
            6 => Ok(WireErrorCode::Internal),
            7 => Ok(WireErrorCode::SwapRefused),
            8 => Ok(WireErrorCode::ShardPanicked),
            other => Err(CodecError::Invalid {
                context: "WireErrorCode",
                message: format!("unknown error code byte {other}"),
            }),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code.name(), self.detail)
    }
}

impl WireError {
    /// Build a wire error with the given code and detail text.
    pub fn new(code: WireErrorCode, detail: impl Into<String>) -> Self {
        WireError {
            code,
            detail: detail.into(),
        }
    }

    /// The wire form of an oracle-side [`SketchError`].  Query errors keep
    /// their class; construction-side errors (which a serving oracle never
    /// produces) collapse to [`WireErrorCode::Internal`].
    pub fn from_sketch(e: &SketchError) -> Self {
        let code = match e {
            SketchError::UnknownNode(_) => WireErrorCode::UnknownNode,
            SketchError::NoCommonLandmark { .. } => WireErrorCode::NoCommonLandmark,
            SketchError::ShardPanicked { .. } => WireErrorCode::ShardPanicked,
            _ => WireErrorCode::Internal,
        };
        WireError::new(code, e.to_string())
    }

    fn encode(&self, out: &mut Encoder) {
        out.put_u8(self.code.to_byte());
        out.put_byte_string(self.detail.as_bytes());
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let code = WireErrorCode::from_byte(input.u8("WireError.code")?)?;
        let detail_bytes = input.byte_string("WireError.detail")?;
        let detail = String::from_utf8(detail_bytes).map_err(|e| CodecError::Invalid {
            context: "WireError.detail",
            message: format!("detail is not UTF-8: {e}"),
        })?;
        Ok(WireError { code, detail })
    }
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// One distance query.
    Query {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// A batch of distance queries, answered in input order.
    QueryBatch {
        /// The query pairs.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// Ask for the server's counters as JSON.
    Stats,
    /// Ask the server to hot-swap its serving oracle to the snapshot at
    /// `path` (a path on the *server's* filesystem).  Answered with
    /// [`Response::Swapped`] or a [`WireErrorCode::SwapRefused`] error.
    Swap {
        /// Snapshot path on the server host.
        path: String,
    },
}

impl Request {
    /// The frame kind byte for this request.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Ping => 0,
            Request::Query { .. } => 1,
            Request::QueryBatch { .. } => 2,
            Request::Stats => 3,
            Request::Swap { .. } => 4,
        }
    }

    /// Short name of the request kind (for errors and logs).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Query { .. } => "query",
            Request::QueryBatch { .. } => "query-batch",
            Request::Stats => "stats",
            Request::Swap { .. } => "swap",
        }
    }

    /// Encode this request as one complete `NETQ` frame (header + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Encoder::new();
        match self {
            Request::Ping | Request::Stats => {}
            Request::Query { u, v } => {
                payload.put_u32(u.0);
                payload.put_u32(v.0);
            }
            Request::QueryBatch { pairs } => {
                payload.put_usize(pairs.len());
                for &(u, v) in pairs {
                    payload.put_u32(u.0);
                    payload.put_u32(v.0);
                }
            }
            Request::Swap { path } => payload.put_byte_string(path.as_bytes()),
        }
        frame_bytes(REQUEST_MAGIC, self.kind(), payload.as_bytes())
    }

    /// Decode a request from its kind byte and payload bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, NetError> {
        let mut input = Decoder::new(payload);
        let request = match kind {
            0 => Request::Ping,
            1 => Request::Query {
                u: NodeId(input.u32("Query.u")?),
                v: NodeId(input.u32("Query.v")?),
            },
            2 => {
                let count = input.len_prefix(8, "QueryBatch.count")?;
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let u = NodeId(input.u32("QueryBatch.u")?);
                    let v = NodeId(input.u32("QueryBatch.v")?);
                    pairs.push((u, v));
                }
                Request::QueryBatch { pairs }
            }
            3 => Request::Stats,
            4 => {
                let path_bytes = input.byte_string("Swap.path")?;
                let path = String::from_utf8(path_bytes).map_err(|e| {
                    NetError::Codec(CodecError::Invalid {
                        context: "Swap.path",
                        message: format!("path is not UTF-8: {e}"),
                    })
                })?;
                Request::Swap { path }
            }
            other => return Err(NetError::UnknownFrameKind { got: other }),
        };
        input.finish()?;
        Ok(request)
    }
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Successful single-query answer.
    Distance(Distance),
    /// Batched answers, one slot per input pair, in input order.
    Batch(Vec<Result<Distance, WireError>>),
    /// Server counters as JSON text (same document `GET /stats` serves).
    Stats(String),
    /// Reply to [`Request::Swap`]: the generation number now serving.
    Swapped(u64),
    /// The request failed as a whole.
    Error(WireError),
}

impl Response {
    /// The frame kind byte for this response.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Pong => 0,
            Response::Distance(_) => 1,
            Response::Batch(_) => 2,
            Response::Stats(_) => 3,
            Response::Swapped(_) => 4,
            Response::Error(_) => 15,
        }
    }

    /// Short name of the response kind (for errors and logs).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Distance(_) => "distance",
            Response::Batch(_) => "batch",
            Response::Stats(_) => "stats",
            Response::Swapped(_) => "swapped",
            Response::Error(_) => "error",
        }
    }

    /// Encode this response as one complete `NETR` frame (header + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Encoder::new();
        match self {
            Response::Pong => {}
            Response::Distance(d) => payload.put_u64(*d),
            Response::Batch(results) => {
                payload.put_usize(results.len());
                for result in results {
                    match result {
                        Ok(d) => {
                            payload.put_u8(0);
                            payload.put_u64(*d);
                        }
                        Err(e) => {
                            payload.put_u8(1);
                            e.encode(&mut payload);
                        }
                    }
                }
            }
            Response::Stats(json) => payload.put_byte_string(json.as_bytes()),
            Response::Swapped(generation) => payload.put_u64(*generation),
            Response::Error(e) => e.encode(&mut payload),
        }
        frame_bytes(RESPONSE_MAGIC, self.kind(), payload.as_bytes())
    }

    /// Decode a response from its kind byte and payload bytes.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, NetError> {
        let mut input = Decoder::new(payload);
        let response = match kind {
            0 => Response::Pong,
            1 => Response::Distance(input.u64("Distance")?),
            2 => {
                let count = input.len_prefix(1, "Batch.count")?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    match input.u8("Batch.tag")? {
                        0 => results.push(Ok(input.u64("Batch.distance")?)),
                        1 => results.push(Err(WireError::decode(&mut input)?)),
                        other => {
                            return Err(NetError::Codec(CodecError::Invalid {
                                context: "Batch.tag",
                                message: format!("result tag must be 0 or 1, got {other}"),
                            }))
                        }
                    }
                }
                Response::Batch(results)
            }
            3 => {
                let bytes = input.byte_string("Stats.json")?;
                let json = String::from_utf8(bytes).map_err(|e| {
                    NetError::Codec(CodecError::Invalid {
                        context: "Stats.json",
                        message: format!("stats payload is not UTF-8: {e}"),
                    })
                })?;
                Response::Stats(json)
            }
            4 => Response::Swapped(input.u64("Swapped.generation")?),
            15 => Response::Error(WireError::decode(&mut input)?),
            other => return Err(NetError::UnknownFrameKind { got: other }),
        };
        input.finish()?;
        Ok(response)
    }
}

/// Assemble one complete frame: 12-byte header plus payload.
///
/// `payload` must fit a `u32` length; callers build payloads bounded far
/// below that (the server clamps batch sizes, the client clamps nothing
/// larger than a batch).
pub fn frame_bytes(magic: [u8; 4], kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&magic);
    frame.push(NET_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&0u16.to_le_bytes());
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame kind byte (interpretation depends on the magic).
    pub kind: u8,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// Validate a 12-byte header against the expected magic and payload bound.
pub fn parse_header(
    bytes: &[u8; HEADER_LEN],
    expect_magic: [u8; 4],
    max_payload: u32,
) -> Result<FrameHeader, NetError> {
    let got = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if got != expect_magic {
        return Err(NetError::BadMagic { got });
    }
    if bytes[4] != NET_VERSION {
        return Err(NetError::UnsupportedVersion { got: bytes[4] });
    }
    let reserved = u16::from_le_bytes([bytes[6], bytes[7]]);
    if reserved != 0 {
        return Err(NetError::NonZeroReserved { got: reserved });
    }
    let payload_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if payload_len > max_payload {
        return Err(NetError::FrameTooLarge {
            len: payload_len,
            max: max_payload,
        });
    }
    Ok(FrameHeader {
        kind: bytes[5],
        payload_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let frame = request.to_frame();
        let header = parse_header(
            frame[..HEADER_LEN].try_into().expect("12-byte header"),
            REQUEST_MAGIC,
            DEFAULT_MAX_PAYLOAD,
        )
        .expect("valid header");
        assert_eq!(header.payload_len as usize, frame.len() - HEADER_LEN);
        let decoded = Request::decode(header.kind, &frame[HEADER_LEN..]).expect("decodes");
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let frame = response.to_frame();
        let header = parse_header(
            frame[..HEADER_LEN].try_into().expect("12-byte header"),
            RESPONSE_MAGIC,
            DEFAULT_MAX_PAYLOAD,
        )
        .expect("valid header");
        assert_eq!(header.payload_len as usize, frame.len() - HEADER_LEN);
        let decoded = Response::decode(header.kind, &frame[HEADER_LEN..]).expect("decodes");
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Query {
            u: NodeId(7),
            v: NodeId(u32::MAX),
        });
        round_trip_request(Request::QueryBatch { pairs: vec![] });
        round_trip_request(Request::QueryBatch {
            pairs: vec![(NodeId(0), NodeId(1)), (NodeId(9), NodeId(9))],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Swap {
            path: "/var/lib/dsketch/next.dsk1".to_string(),
        });
        round_trip_request(Request::Swap {
            path: String::new(),
        });
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::Distance(0));
        round_trip_response(Response::Distance(u64::MAX));
        round_trip_response(Response::Batch(vec![]));
        round_trip_response(Response::Batch(vec![
            Ok(42),
            Err(WireError::new(
                WireErrorCode::UnknownNode,
                "unknown node v9",
            )),
            Ok(0),
        ]));
        round_trip_response(Response::Stats("{\"queries\": 3}".to_string()));
        round_trip_response(Response::Swapped(1));
        round_trip_response(Response::Swapped(u64::MAX));
        round_trip_response(Response::Error(WireError::new(
            WireErrorCode::BadFrame,
            "unknown frame kind 200",
        )));
    }

    #[test]
    fn header_rejections_are_typed() {
        let mut good: [u8; HEADER_LEN] = [0; HEADER_LEN];
        good[..4].copy_from_slice(&REQUEST_MAGIC);
        good[4] = NET_VERSION;
        assert!(parse_header(&good, REQUEST_MAGIC, 1024).is_ok());

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(
            parse_header(&bad_magic, REQUEST_MAGIC, 1024),
            Err(NetError::BadMagic { .. })
        ));

        let mut bad_version = good;
        bad_version[4] = 9;
        assert!(matches!(
            parse_header(&bad_version, REQUEST_MAGIC, 1024),
            Err(NetError::UnsupportedVersion { got: 9 })
        ));

        let mut bad_reserved = good;
        bad_reserved[6] = 1;
        assert!(matches!(
            parse_header(&bad_reserved, REQUEST_MAGIC, 1024),
            Err(NetError::NonZeroReserved { got: 1 })
        ));

        let mut oversized = good;
        oversized[8..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_header(&oversized, REQUEST_MAGIC, 1024),
            Err(NetError::FrameTooLarge { max: 1024, .. })
        ));
    }

    #[test]
    fn truncated_payloads_fail_with_codec_errors_not_panics() {
        let frames = [
            Request::Query {
                u: NodeId(1),
                v: NodeId(2),
            }
            .to_frame(),
            Request::QueryBatch {
                pairs: vec![(NodeId(3), NodeId(4)), (NodeId(5), NodeId(6))],
            }
            .to_frame(),
        ];
        for frame in frames {
            let kind = frame[5];
            let payload = &frame[HEADER_LEN..];
            for cut in 0..payload.len() {
                let result = Request::decode(kind, &payload[..cut]);
                assert!(result.is_err(), "cut at {cut} must not decode");
            }
        }
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let frame = Request::Ping.to_frame();
        assert!(matches!(
            Request::decode(frame[5], &[0u8]),
            Err(NetError::Codec(CodecError::TrailingBytes { .. }))
        ));
    }

    #[test]
    fn sketch_errors_map_to_wire_codes() {
        let unknown = WireError::from_sketch(&SketchError::UnknownNode(NodeId(9)));
        assert_eq!(unknown.code, WireErrorCode::UnknownNode);
        assert!(unknown.detail.contains("v9"));
        let landmark = WireError::from_sketch(&SketchError::NoCommonLandmark {
            u: NodeId(1),
            v: NodeId(2),
        });
        assert_eq!(landmark.code, WireErrorCode::NoCommonLandmark);
        let internal = WireError::from_sketch(&SketchError::InvalidParameters("k".into()));
        assert_eq!(internal.code, WireErrorCode::Internal);
        assert!(internal.to_string().contains("internal"));
        let panicked = WireError::from_sketch(&SketchError::ShardPanicked { shard: 3 });
        assert_eq!(panicked.code, WireErrorCode::ShardPanicked);
        assert!(panicked.detail.contains("shard 3"));
    }

    #[test]
    fn error_code_names_are_stable() {
        for code in [
            WireErrorCode::UnknownNode,
            WireErrorCode::NoCommonLandmark,
            WireErrorCode::BadFrame,
            WireErrorCode::BatchTooLarge,
            WireErrorCode::ShuttingDown,
            WireErrorCode::Internal,
            WireErrorCode::SwapRefused,
            WireErrorCode::ShardPanicked,
        ] {
            assert_eq!(WireErrorCode::from_byte(code.to_byte()), Ok(code));
            assert!(!code.name().is_empty());
        }
        assert_eq!(WireErrorCode::SwapRefused.name(), "swap-refused");
        assert_eq!(WireErrorCode::ShardPanicked.name(), "shard-panicked");
        assert!(WireErrorCode::from_byte(0).is_err());
        assert!(WireErrorCode::from_byte(200).is_err());
    }
}
