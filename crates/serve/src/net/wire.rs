//! Deadline-aware frame I/O over a [`TcpStream`].
//!
//! Both ends of the protocol read frames the same way: a hard wall-clock
//! deadline covers the *whole* frame, not each `read(2)` call.  A client
//! that dribbles one byte at a time still has to deliver a complete frame
//! before the deadline — otherwise the read fails with
//! [`NetError::Timeout`] and the connection is closed, so a slow or
//! stalled peer can never pin a worker thread for longer than the
//! configured timeout.
//!
//! Reads poll in short slices (≤ 50 ms) so the server can additionally
//! observe its shutdown flag *between* frames: an idle connection is
//! released promptly on shutdown, while a frame already in progress is
//! read to completion (drained) before the connection closes.

use super::protocol::{parse_header, FrameHeader, NetError, HEADER_LEN};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Upper bound of one poll slice: how often a blocked read re-checks the
/// deadline and the abort flag.
const POLL_SLICE: Duration = Duration::from_millis(50);

/// The outcome of waiting for one frame.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete frame arrived.
    Frame(FrameHeader, Vec<u8>),
    /// The peer closed the connection cleanly before sending any byte of a
    /// new frame, or the abort flag was raised while the line was idle.
    Closed,
}

/// Block until `buf` is full, the deadline expires, the peer closes, or
/// (when nothing has been consumed yet) the abort flag is raised.
///
/// `consumed_any` reports whether earlier bytes of the same frame were
/// already read: a clean EOF is only "closed" at a frame boundary —
/// mid-frame it is [`NetError::Truncated`].
fn read_full(
    stream: &TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    abort: Option<&AtomicBool>,
    consumed_any: bool,
    needed_total: usize,
    read_so_far: usize,
) -> Result<Option<()>, NetError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if !consumed_any && filled == 0 {
            if let Some(flag) = abort {
                if flag.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::Timeout);
        }
        let slice = (deadline - now)
            .min(POLL_SLICE)
            .max(Duration::from_millis(1));
        stream
            .set_read_timeout(Some(slice))
            .map_err(|e| NetError::Io(e.kind()))?;
        match (&mut (&*stream)).read(&mut buf[filled..]) {
            Ok(0) => {
                if consumed_any || filled > 0 {
                    return Err(NetError::Truncated {
                        read: read_so_far + filled,
                        needed: needed_total,
                    });
                }
                return Ok(None);
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
    Ok(Some(()))
}

/// Read one complete frame (header + payload) before `deadline`.
///
/// `abort` (the server's shutdown flag) is only honored while the line is
/// idle — once the first byte of a frame has arrived, the frame is read to
/// completion so in-flight requests drain during shutdown.
pub(crate) fn read_frame(
    stream: &TcpStream,
    expect_magic: [u8; 4],
    max_payload: u32,
    deadline: Instant,
    abort: Option<&AtomicBool>,
) -> Result<ReadOutcome, NetError> {
    match dsketch_faults::fail_point!("net.read.frame") {
        None => {}
        Some(dsketch_faults::Fault::Partial(n)) => {
            // Simulate a connection torn mid-frame: `n` bytes arrived.
            return Err(NetError::Truncated {
                read: usize::try_from(n).unwrap_or(usize::MAX),
                needed: HEADER_LEN,
            });
        }
        Some(dsketch_faults::Fault::Error) => {
            return Err(NetError::Io(std::io::ErrorKind::ConnectionReset));
        }
    }
    let mut header_bytes = [0u8; HEADER_LEN];
    let total_guess = HEADER_LEN; // refined once the header is parsed
    match read_full(
        stream,
        &mut header_bytes,
        deadline,
        abort,
        false,
        total_guess,
        0,
    )? {
        Some(()) => {}
        None => return Ok(ReadOutcome::Closed),
    }
    let header = parse_header(&header_bytes, expect_magic, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    let needed = HEADER_LEN + payload.len();
    match read_full(
        stream,
        &mut payload,
        deadline,
        abort,
        true,
        needed,
        HEADER_LEN,
    )? {
        Some(()) => Ok(ReadOutcome::Frame(header, payload)),
        // Unreachable: with `consumed_any = true` a closed peer is
        // reported as `Truncated`, not as `None`.
        None => Ok(ReadOutcome::Closed),
    }
}

/// Peek at the first `want` bytes of the stream without consuming them,
/// waiting until they arrive, the deadline expires, the peer closes, or
/// the abort flag is raised while no byte has arrived yet.
///
/// Returns the peeked bytes, or `None` when the connection closed (or was
/// aborted) before `want` bytes existed.
pub(crate) fn peek_exact(
    stream: &TcpStream,
    want: usize,
    deadline: Instant,
    abort: Option<&AtomicBool>,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut buf = vec![0u8; want];
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::Timeout);
        }
        let slice = (deadline - now)
            .min(POLL_SLICE)
            .max(Duration::from_millis(1));
        stream
            .set_read_timeout(Some(slice))
            .map_err(|e| NetError::Io(e.kind()))?;
        match stream.peek(&mut buf) {
            Ok(n) if n >= want => return Ok(Some(buf)),
            Ok(0) => return Ok(None),
            Ok(_) => {
                // A prefix exists but not the whole sniff window yet; an
                // abort only applies while we could still walk away from
                // the connection without having committed to a protocol.
                if let Some(flag) = abort {
                    if flag.load(Ordering::Relaxed) {
                        return Ok(None);
                    }
                }
                // Loop again; peek is level-triggered, so wait a slice to
                // avoid spinning on the same partial prefix.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(flag) = abort {
                    if flag.load(Ordering::Relaxed) {
                        return Ok(None);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
}

/// Write all of `bytes` with a write deadline, returning the byte count.
///
/// A peer that stops reading (full socket buffer) trips the write timeout
/// and the connection is dropped — the sending worker is never pinned.
pub(crate) fn write_all_deadline(
    stream: &TcpStream,
    bytes: &[u8],
    timeout: Duration,
) -> Result<usize, NetError> {
    if dsketch_faults::fail_point!("net.write.frame").is_some() {
        // Simulate a peer whose socket vanished before the response went
        // out; partial and error actions collapse to the same broken pipe.
        return Err(NetError::Io(std::io::ErrorKind::BrokenPipe));
    }
    stream
        .set_write_timeout(Some(timeout.max(Duration::from_millis(1))))
        .map_err(|e| NetError::Io(e.kind()))?;
    let deadline = Instant::now() + timeout;
    let mut written = 0usize;
    while written < bytes.len() {
        if Instant::now() >= deadline {
            return Err(NetError::Timeout);
        }
        match (&mut (&*stream)).write(&bytes[written..]) {
            Ok(0) => {
                return Err(NetError::Io(std::io::ErrorKind::WriteZero));
            }
            Ok(n) => written += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(NetError::Timeout);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
    Ok(written)
}
