//! `dsketch-net`: the network-facing front end over the shard router.
//!
//! This module turns the in-process [`crate::SketchServer`] into a TCP
//! service without any dependency beyond `std::net`.  One listener serves
//! two protocols, selected by peeking the first four bytes of each
//! connection:
//!
//! * the length-prefixed binary `NETQ`/`NETR` protocol ([`protocol`]) —
//!   the efficient interface [`NetClient`] and the loadgen speak, and
//! * a hand-parsed HTTP/1.1 endpoint (`GET /distance?u=..&v=..`,
//!   `GET /stats`) for `curl` and dashboards.
//!
//! See [`NetServer`] for the threading model, timeout policy, and the
//! graceful-shutdown state machine; see [`protocol`] for the frame layout
//! and error taxonomy.

mod client;
mod http;
pub mod protocol;
mod server;
mod wire;

pub use client::NetClient;
pub use protocol::{NetError, Request, Response, WireError, WireErrorCode};
pub use server::{NetConfig, NetServer, NetServerStats, NetStartError, ServeMeta};
