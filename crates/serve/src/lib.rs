//! `dsketch-serve` — a sharded, cached query-serving layer over any
//! [`DistanceOracle`].
//!
//! The paper's economics (Section 2.1) are: pay `O(k n^{1/k} S log n)`
//! CONGEST rounds *once* to build sketches, then answer every distance query
//! from two small labels with **no further communication**.  This crate is
//! the second half of that bargain turned into a serving system: it takes
//! any built oracle — every sketch family behind one trait — and serves
//! heavy concurrent query traffic from it.
//!
//! # Architecture
//!
//! * **Sharding** — [`SketchServer::start`] spawns `shards` worker threads.
//!   Each query pair `(u, v)` is routed to a fixed shard by a mixed hash, so
//!   work spreads across cores while every pair has one home shard.
//! * **Shared labels, private caches** — the oracle is immutable label data
//!   behind an `Arc` (the [`DistanceOracle`] trait requires `Send + Sync`),
//!   shared by all shards.  Each shard owns a fixed-capacity
//!   [`LruCache`](cache::LruCache) of recent results; deterministic routing
//!   means no entry is duplicated and no lock is taken on the hot path.
//! * **Bounded queues** — each shard's request channel holds at most
//!   `queue_depth` batches; when queries outpace the workers, clients block
//!   instead of buffering without limit (backpressure, not collapse).
//! * **Batching** — [`ServeClient::query_batch`] ships all pairs bound for
//!   one shard in a single channel message and reassembles answers in input
//!   order, amortizing the round-trip; [`ServeClient::query`] is the
//!   one-pair special case.
//! * **Counters** — [`SketchServer::stats`] snapshots per-shard and
//!   aggregate [`ServeStats`] (queries, cache hits/misses, errors, service
//!   latency) at any time, mirroring how the construction side reports
//!   `RunStats` per build.
//! * **Network front end** — [`net::NetServer`] binds a `TcpListener` over
//!   the same router and serves a length-prefixed binary protocol plus a
//!   minimal HTTP/1.1 endpoint on one port, with whole-frame read
//!   deadlines and a graceful drain on shutdown (see [`net`]).
//! * **Cold start from disk** — [`SketchServer::from_snapshot`] boots a
//!   server straight from a `dsketch-store` snapshot (`DSK1` file), so a
//!   restarted or standby server skips the CONGEST construction entirely
//!   and is serving as soon as the labels are read and checksummed.
//! * **Hot snapshot swap** — [`SketchServer::swap_snapshot`] replaces the
//!   serving oracle *while queries are in flight*: the new snapshot is
//!   deep-verified and published through a lock-free [`SwapCell`] as a new
//!   [`Generation`]; readers never block, stale cache entries are lazily
//!   invalidated, and the retired oracle is dropped when its last reader
//!   lets go (see [`swap`]).
//!
//! # Example
//!
//! ```
//! use dsketch::prelude::*;
//! use dsketch_serve::{ServeConfig, SketchServer};
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//! use netgraph::NodeId;
//! use std::sync::Arc;
//!
//! // Build any scheme (here Thorup–Zwick, k = 2), then serve it.
//! let graph = erdos_renyi(48, 0.15, GeneratorConfig::uniform(5, 1, 20));
//! let outcome = SketchBuilder::thorup_zwick(2).seed(7).build(&graph).unwrap();
//! let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
//!
//! let server = SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).unwrap();
//! let client = server.client();
//!
//! // Single and batched queries agree with the oracle itself.
//! let direct = oracle.estimate(NodeId(0), NodeId(1)).unwrap();
//! assert_eq!(client.query(NodeId(0), NodeId(1)).unwrap(), direct);
//! let batch = client.query_batch(&[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
//! assert_eq!(*batch[0].as_ref().unwrap(), direct);
//!
//! drop(client); // drop clients before shutdown so the shards can exit
//! let stats = server.shutdown();
//! assert_eq!(stats.totals.queries, 3);
//! assert_eq!(stats.totals.cache_hits, 1); // the repeated (0, 1) pair
//! println!("{stats}");
//! ```
//!
//! The `dsketch-serve` binary (in `crates/bench`, which owns the workload
//! generators) wires this into an end-to-end traffic replay:
//!
//! ```text
//! cargo run --release -p dsketch-bench --bin dsketch-serve -- \
//!     --scheme tz:3 --nodes 512 --queries 100000 --shards 4
//! ```

// `deny` (not `forbid`) so the one module implementing the lock-free swap
// cell can opt in with its per-operation safety proofs; everything else in
// the crate stays safe code.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod net;
mod server;
mod stats;
pub mod swap;

pub use net::{NetClient, NetConfig, NetServer, NetServerStats, NetStartError, ServeMeta};
pub use server::{ServeClient, ServeConfig, SketchServer};
pub use stats::{NetStats, ServeStats, ShardStats};
pub use swap::{Generation, SwapCell, SwapError};

// Re-exported so downstream code can name the trait and error type without
// an extra dsketch import.
pub use dsketch::{DistanceOracle, SketchError};
