//! The sharded query server: worker threads, bounded queues, shard routing.
//!
//! One [`SketchServer`] owns `shards` worker threads.  Every worker holds a
//! clone of one [`SwapCell`] handle publishing the current [`Generation`]
//! (the labels are immutable per generation, so sharing is free), its own
//! bounded request queue, and its own [`LruCache`] — routing is
//! deterministic per query pair, so each pair lives in exactly one shard's
//! cache and workers never take a lock on the hot path.
//!
//! ```text
//!                  ServeClient (one per caller thread)
//!                    │  shard_of(u, v) routes each pair
//!        ┌───────────┼───────────────┐
//!        ▼           ▼               ▼
//!   [queue 0]    [queue 1]  …   [queue S−1]     bounded sync channels
//!        │           │               │
//!   worker 0     worker 1       worker S−1      one thread per shard
//!   LRU cache    LRU cache      LRU cache       private, generation-tagged
//!        └───────────┴───────┬───────┘
//!                            ▼
//!           SwapCell<Generation> → Arc<dyn DistanceOracle>
//!               shared, read-only labels — hot-swappable
//! ```
//!
//! [`SketchServer::swap_snapshot`] publishes a new generation while the
//! workers keep answering: each worker probes the cell's version once per
//! batch (one atomic load) and reloads its `Arc<Generation>` only when a
//! swap landed.  Cache entries are tagged with the generation that produced
//! them and lazily discarded on touch after a swap — no flush pause, no
//! stop-the-world.
//!
//! Each worker runs under a per-shard supervisor thread
//! (`dsketch-serve-sup-{shard}`): a panicking worker is joined, counted in
//! `dsketch_shard_restarts_total`, and respawned with a fresh cache, while
//! the shard's queue (held alive by the supervisor) keeps its backlog.  The
//! batch that was in flight answers with
//! [`SketchError::ShardPanicked`] instead of tearing the caller down.

use crate::cache::LruCache;
use crate::stats::{ServeStats, ShardCounters};
use crate::swap::{Generation, SwapCell, SwapError};
use dsketch::{DistanceOracle, SchemeSpec, SketchError};
use dsketch_obs::{Counter, Gauge, MetricsRegistry, TraceEvent, Tracer};
use netgraph::{Distance, GraphFingerprint, NodeId};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing of a [`SketchServer`]: shard count, queue depth, cache capacity,
/// trace sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker shards (threads).  Must be ≥ 1.
    pub shards: usize,
    /// Bound of each shard's request queue, in batches.  Must be ≥ 1; a
    /// full queue applies backpressure to clients instead of buffering
    /// without limit.
    pub queue_depth: usize,
    /// Capacity of each shard's LRU result cache, in entries.  `0` disables
    /// caching (every query consults the oracle).
    pub cache_capacity: usize,
    /// Sample every N-th query into the server's [`Tracer`] (a structured
    /// JSON event per sampled query).  `0` disables tracing.
    pub trace_sample: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_depth: 64,
            cache_capacity: 4096,
            trace_sample: 0,
        }
    }
}

impl ServeConfig {
    /// Replace the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Replace the per-shard queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Replace the per-shard cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sample every `n`-th query into the server's tracer (`0` disables).
    pub fn with_trace_sample(mut self, n: u64) -> Self {
        self.trace_sample = n;
        self
    }

    fn validate(&self) -> Result<(), SketchError> {
        if self.shards == 0 {
            return Err(SketchError::InvalidParameters(
                "ServeConfig::shards must be >= 1".to_string(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(SketchError::InvalidParameters(
                "ServeConfig::queue_depth must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// One batch of work for one shard: the pairs to answer, each tagged with
/// its index in the client's original batch, and the channel to reply on.
/// The reply carries the generation number the shard answered under, so
/// callers can attribute every answer to the snapshot that produced it.
struct Job {
    pairs: Vec<(usize, NodeId, NodeId)>,
    reply: Sender<ShardReply>,
}

/// What a shard sends back for one [`Job`]: the generation number it
/// answered under, plus each pair's result tagged with its original index.
type ShardReply = (u64, Vec<(usize, Result<Distance, SketchError>)>);

/// Distance estimates are symmetric (`estimate(u, v) == estimate(v, u)` for
/// every oracle), so `(u, v)` and `(v, u)` are the same logical query: both
/// routing and result caching use the canonically ordered pair, which makes
/// the two orientations land on one shard and share one cache entry.  (The
/// oracle itself is still called with the original order, so error values —
/// which name the queried nodes — come back exactly as a direct call would
/// return them.)
fn canonical(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if v < u {
        (v, u)
    } else {
        (u, v)
    }
}

/// The shard a pair is routed to: a SplitMix64 finalizer over the
/// [`canonical`] pair, reduced modulo the shard count.  Deterministic, so
/// repeated queries for the same pair (in either orientation) always land
/// on the same shard (and therefore the same cache), and well mixed, so hot
/// nodes still spread across shards by their partner node.
fn shard_of(u: NodeId, v: NodeId, shards: usize) -> usize {
    let (u, v) = canonical(u, v);
    let mut z = ((u.0 as u64) << 32 | v.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// The supervisor loop for one shard: spawn the worker, join it, and on a
/// panic restart it with a fresh cache (counted in
/// `dsketch_shard_restarts_total`).  The supervisor's `Arc` keeps the shard's
/// `Receiver` alive across restarts, so queued batches survive a crash —
/// only the batch that was in flight when the worker died loses its reply
/// (the client observes the dropped reply sender and answers those pairs
/// with [`SketchError::ShardPanicked`]).  A worker that returns normally
/// means every sender is gone: orderly shutdown, and the supervisor exits.
fn supervise_shard(
    shard: usize,
    cell: Arc<SwapCell<Generation>>,
    rx: Arc<Mutex<Receiver<Job>>>,
    counters: ShardCounters,
    tracer: Arc<Tracer>,
    cache_capacity: usize,
) {
    loop {
        let worker_cell = Arc::clone(&cell);
        let worker_rx = Arc::clone(&rx);
        let worker_counters = counters.clone();
        let worker_tracer = Arc::clone(&tracer);
        let worker = dsketch::parallel::spawn_named(&format!("dsketch-serve-{shard}"), move || {
            run_worker(
                shard,
                worker_cell,
                worker_rx,
                worker_counters,
                worker_tracer,
                cache_capacity,
            )
        });
        match worker.join() {
            Ok(()) => break,
            Err(_panic) => {
                counters.restarts.inc();
            }
        }
    }
}

/// The worker loop: drain batches, answer each pair cache-first, reply.
///
/// Generation handling: the worker keeps one `Arc<Generation>` and probes
/// [`SwapCell::version`] once per batch — a single atomic load — reloading
/// only when a swap was published.  Cache values are tagged with the
/// generation that computed them; an entry whose tag does not match the
/// current generation is discarded on touch (counted as an invalidation
/// *and* a miss, so `hits + misses == queries` stays true across swaps).
///
/// The receiver arrives behind a mutex because the supervisor hands the
/// same channel to each worker incarnation; there is exactly one live
/// worker per shard, so the lock is uncontended.  It is taken only for the
/// blocking `recv` and released before the batch is processed, so a panic
/// mid-batch never poisons it (and a poisoned lock from a panic elsewhere
/// is recovered — the protected `Receiver` has no invariants to corrupt).
fn run_worker(
    shard: usize,
    cell: Arc<SwapCell<Generation>>,
    rx: Arc<Mutex<Receiver<Job>>>,
    counters: ShardCounters,
    tracer: Arc<Tracer>,
    cache_capacity: usize,
) {
    let mut cache: LruCache<(NodeId, NodeId), (u64, Distance)> = LruCache::new(cache_capacity);
    let mut current = cell.load();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.recv() {
                Ok(job) => job,
                Err(_) => break, // every sender gone: orderly shutdown
            }
        };
        counters.queue_entries.sub(1);
        counters.batches.inc();
        match dsketch_faults::fail_point!("serve.shard.dispatch") {
            None => {}
            Some(_fault) => {
                // An injected dispatch fault sheds the batch without a
                // reply: the client sees the dropped reply sender and
                // answers the affected pairs with `ShardPanicked`, the
                // same contract as a real worker crash.  (A `panic`
                // action never reaches this arm — it unwinds inside the
                // failpoint and exercises the supervisor for real.)
                drop(job);
                continue;
            }
        }
        if cell.version() != current.number {
            current = cell.load();
        }
        let generation = current.number;
        let mut results = Vec::with_capacity(job.pairs.len());
        for &(index, u, v) in &job.pairs {
            let start = Instant::now();
            let key = canonical(u, v);
            let cached = match cache.get(&key) {
                Some(&(tag, distance)) if tag == generation => Some(distance),
                Some(_) => {
                    // Stale entry from a retired generation: lazily
                    // invalidated right here, on touch, instead of by a
                    // stop-the-world flush at swap time.
                    counters.cache_invalidations.inc();
                    None
                }
                None => None,
            };
            let (result, cache_hit) = match cached {
                Some(distance) => {
                    counters.cache_hits.inc();
                    (Ok(distance), true)
                }
                None => {
                    counters.cache_misses.inc();
                    let result = current.oracle.estimate(u, v);
                    if let Ok(distance) = result {
                        cache.insert(key, (generation, distance));
                    }
                    (result, false)
                }
            };
            let nanos = start.elapsed().as_nanos() as u64;
            counters.record_latency(nanos);
            counters.queries.inc();
            if result.is_err() {
                counters.errors.inc();
            }
            if tracer.sample() {
                tracer.emit(
                    TraceEvent::new("query")
                        .num("shard", shard as u64)
                        .num("generation", generation)
                        .num("u", u64::from(u.0))
                        .num("v", u64::from(v.0))
                        .text("cache", if cache_hit { "hit" } else { "miss" })
                        .num("nanos", nanos)
                        .flag("ok", result.is_ok()),
                );
            }
            results.push((index, result));
        }
        // A client that has gone away is not an error; drop the reply.
        let _ = job.reply.send((generation, results));
    }
}

/// A sharded, cached query server over any [`DistanceOracle`].
///
/// Start one with [`SketchServer::start`], hand each querying thread a
/// [`ServeClient`] from [`SketchServer::client`], and read counters at any
/// time with [`SketchServer::stats`].  Dropping the server (or calling
/// [`SketchServer::shutdown`]) closes the queues and joins the workers;
/// outstanding clients keep their shards alive until they are dropped too,
/// so drop clients first.
pub struct SketchServer {
    cell: Arc<SwapCell<Generation>>,
    /// Serializes swap publication so generation numbers and cell versions
    /// advance in lock step.  Never touched by the query path.
    swap_lock: Mutex<()>,
    senders: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Vec<ShardCounters>,
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    config: ServeConfig,
    generation_gauge: Gauge,
    swaps: Counter,
}

impl SketchServer {
    /// Spawn the worker shards over `oracle`, with a fresh per-server
    /// [`MetricsRegistry`] and a tracer honoring
    /// [`ServeConfig::trace_sample`].
    ///
    /// Fails with [`SketchError::InvalidParameters`] when the config asks
    /// for zero shards or a zero queue depth.
    pub fn start(
        oracle: Arc<dyn DistanceOracle>,
        config: ServeConfig,
    ) -> Result<SketchServer, SketchError> {
        let tracer = Arc::new(Tracer::one_in(config.trace_sample));
        SketchServer::start_with_obs(oracle, config, Arc::new(MetricsRegistry::new()), tracer)
    }

    /// [`SketchServer::start`] with caller-supplied observability: the
    /// shard instruments register in `registry` (so a front end can expose
    /// them next to its own wire instruments) and sampled query events go
    /// to `tracer`.
    pub fn start_with_obs(
        oracle: Arc<dyn DistanceOracle>,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Arc<Tracer>,
    ) -> Result<SketchServer, SketchError> {
        SketchServer::start_with_origin(oracle, config, registry, tracer, None)
    }

    /// [`SketchServer::start_with_obs`] with the oracle's provenance
    /// attached: when `origin` names the scheme and graph fingerprint the
    /// oracle was built from (known whenever it came from a `DSK1`
    /// snapshot), [`SketchServer::swap_snapshot`] can refuse incompatible
    /// replacements with a typed error instead of serving wrong answers.
    pub fn start_with_origin(
        oracle: Arc<dyn DistanceOracle>,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Arc<Tracer>,
        origin: Option<(SchemeSpec, GraphFingerprint)>,
    ) -> Result<SketchServer, SketchError> {
        config.validate()?;
        let (spec, fingerprint) = match origin {
            Some((spec, fingerprint)) => (Some(spec), Some(fingerprint)),
            None => (None, None),
        };
        let cell = Arc::new(SwapCell::new(Arc::new(Generation::initial(
            oracle,
            spec,
            fingerprint,
        ))));
        let generation_gauge = registry.gauge(
            // dsketch-lint: allow(metric-name-style): the generation gauge is a version number — unitless by design
            "dsketch_serve_generation",
            "Snapshot generation currently serving (1 = startup oracle).",
        );
        generation_gauge.set(1);
        let swaps = registry.counter(
            "dsketch_swap_total",
            "Snapshot swaps published since startup.",
        );
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut counters = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
            let rx = Arc::new(Mutex::new(rx));
            let shard_counters = ShardCounters::register(&registry, shard);
            let worker_cell = Arc::clone(&cell);
            let worker_counters = shard_counters.clone();
            let worker_tracer = Arc::clone(&tracer);
            let cache_capacity = config.cache_capacity;
            workers.push(dsketch::parallel::spawn_named(
                &format!("dsketch-serve-sup-{shard}"),
                move || {
                    supervise_shard(
                        shard,
                        worker_cell,
                        rx,
                        worker_counters,
                        worker_tracer,
                        cache_capacity,
                    )
                },
            ));
            senders.push(tx);
            counters.push(shard_counters);
        }
        Ok(SketchServer {
            cell,
            swap_lock: Mutex::new(()),
            senders,
            workers,
            counters,
            registry,
            tracer,
            config,
            generation_gauge,
            swaps,
        })
    }

    /// Cold-start a server from a `DSK1` sketch snapshot on disk, without
    /// running the builder at all: load the snapshot (CRC-verified),
    /// materialize the section bytes straight into the frozen
    /// [`FlatSketchSet`](dsketch::flat::FlatSketchSet) CSR layout — no
    /// `BTreeMap`-backed sketch is ever constructed — and spawn the shards
    /// over it.
    ///
    /// This is the warm-standby / instant-restart path: the expensive
    /// CONGEST construction was paid by whoever wrote the snapshot
    /// (`dsketch-store build` or [`dsketch_store::build_and_save`]), and a
    /// restarted server is back to serving in the time it takes to read
    /// and checksum the file.
    ///
    /// Corrupted, truncated, or version-incompatible snapshots fail with
    /// the typed [`StoreError`](dsketch_store::StoreError); an invalid
    /// `config` fails with [`StoreError::Sketch`](dsketch_store::StoreError::Sketch).
    /// A server started this way knows its origin (scheme + graph
    /// fingerprint from the snapshot header), so later
    /// [`SketchServer::swap_snapshot`] calls can refuse incompatible
    /// replacements.
    pub fn from_snapshot<P: AsRef<std::path::Path>>(
        path: P,
        config: ServeConfig,
    ) -> Result<SketchServer, dsketch_store::StoreError> {
        let bytes = std::fs::read(path).map_err(dsketch_store::StoreError::Io)?;
        let raw = dsketch_store::SnapshotReader::new(&bytes[..]).read()?;
        let origin = (raw.spec(), raw.fingerprint());
        let oracle: Arc<dyn DistanceOracle> =
            Arc::from(dsketch_store::read_frozen_oracle(&bytes[..])?);
        let tracer = Arc::new(Tracer::one_in(config.trace_sample));
        Ok(SketchServer::start_with_origin(
            oracle,
            config,
            Arc::new(MetricsRegistry::new()),
            tracer,
            Some(origin),
        )?)
    }

    /// Hot-swap the serving oracle to the snapshot at `path`, without
    /// pausing queries.  Returns the new generation number.
    ///
    /// The snapshot is read once and must clear three gates before
    /// anything is published:
    ///
    /// 1. **Deep verification** — the full `DSK1` semantic verifier
    ///    ([`dsketch_analysis::verify_snapshot_bytes`]); corrupted or
    ///    contract-violating bytes fail with [`SwapError::Verify`].
    /// 2. **Scheme match** — when the live generation knows its
    ///    [`SchemeSpec`], a snapshot built with a different scheme fails
    ///    with [`SwapError::SchemeMismatch`] (clients reasoning about the
    ///    stretch bound must not have it change under them).
    /// 3. **Node-count match** — a snapshot whose graph fingerprint names
    ///    a different node count fails with
    ///    [`SwapError::NodeCountMismatch`] (the node-id universe clients
    ///    hold would silently shift).  Edge/weight drift at the same node
    ///    count is the legitimate graph-evolution case and is accepted.
    ///
    /// Every refusal leaves the live generation untouched — in-flight and
    /// follow-up queries keep answering from the old oracle.  On success
    /// the new [`Generation`] is published through the [`SwapCell`]:
    /// readers pick it up at their next batch, per-shard cache entries
    /// from older generations are lazily invalidated on touch, and the
    /// retired oracle is dropped when its last in-flight reader finishes.
    pub fn swap_snapshot<P: AsRef<std::path::Path>>(&self, path: P) -> Result<u64, SwapError> {
        let bytes = std::fs::read(path).map_err(|e| SwapError::Store(e.into()))?;
        dsketch_analysis::verify_snapshot_bytes(&bytes)?;
        let raw = dsketch_store::SnapshotReader::new(&bytes[..]).read()?;
        let (spec, fingerprint) = (raw.spec(), raw.fingerprint());
        let oracle: Arc<dyn DistanceOracle> =
            Arc::from(dsketch_store::read_frozen_oracle(&bytes[..])?);
        // Serialize publication: concurrent swappers validate against a
        // stable current generation and numbers advance without gaps.
        // dsketch-lint: allow(no-unwrap-in-hot-path): a poisoned swap lock means a swapper panicked — propagate
        let _publish = self.swap_lock.lock().expect("swap lock poisoned");
        let current = self.cell.load();
        if let Some(current_spec) = current.spec {
            if current_spec != spec {
                return Err(SwapError::SchemeMismatch {
                    current: current_spec,
                    offered: spec,
                });
            }
        }
        if oracle.num_nodes() != current.oracle.num_nodes() {
            return Err(SwapError::NodeCountMismatch {
                current: current.oracle.num_nodes(),
                offered: oracle.num_nodes(),
            });
        }
        let next = Generation {
            number: current.number + 1,
            spec: Some(spec),
            fingerprint: Some(fingerprint),
            oracle,
        };
        let version = self.cell.store(Arc::new(next));
        debug_assert_eq!(version, current.number + 1);
        self.generation_gauge.set(version as i64);
        self.swaps.inc();
        Ok(version)
    }

    /// The generation currently serving (oracle + provenance).  One atomic
    /// load plus a pin; never blocks.
    pub fn current_generation(&self) -> Arc<Generation> {
        self.cell.load()
    }

    /// The current generation number (1 = startup oracle).  A single
    /// atomic load — cheaper than [`SketchServer::current_generation`]
    /// when only the number is needed.
    pub fn generation(&self) -> u64 {
        self.cell.version()
    }

    /// The sizing the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The registry holding this server's `dsketch_serve_*` instruments.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The tracer receiving this server's sampled query events.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.counters.len()
    }

    /// A handle for submitting queries.  Clients are cheap (one channel
    /// sender per shard), `Send`, and independent: give each querying thread
    /// its own.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            senders: self.senders.clone(),
            queue_entries: self
                .counters
                .iter()
                .map(|c| c.queue_entries.clone())
                .collect(),
        }
    }

    /// Snapshot the per-shard and aggregate counters.
    pub fn stats(&self) -> ServeStats {
        let per_shard: Vec<_> = self.counters.iter().map(|c| c.snapshot()).collect();
        let mut totals = crate::stats::ShardStats::default();
        for shard in &per_shard {
            totals.absorb(shard);
        }
        ServeStats {
            totals,
            per_shard,
            generation: self.cell.version(),
            swaps: self.swaps.value(),
        }
    }

    /// Close the queues, join all workers, and return the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.join_workers();
        self.stats()
    }

    fn join_workers(&mut self) {
        self.senders.clear(); // workers exit when every sender is gone
        for supervisor in self.workers.drain(..) {
            // dsketch-lint: allow(no-unwrap-in-hot-path): supervisors absorb worker panics; a supervisor panic is a server bug — propagate
            supervisor.join().expect("shard supervisor panicked");
        }
    }
}

impl Drop for SketchServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// A client handle: routes queries to shards and waits for the answers.
///
/// Obtained from [`SketchServer::client`].  A client is `Send` but not
/// `Sync`; clone one per thread instead of sharing one behind a reference.
#[derive(Clone)]
pub struct ServeClient {
    senders: Vec<SyncSender<Job>>,
    /// Per-shard queue-depth gauges: incremented on send, decremented by
    /// the worker when it drains the batch.
    queue_entries: Vec<Gauge>,
}

impl ServeClient {
    /// Answer one query through its shard.
    ///
    /// Equivalent to a one-element [`ServeClient::query_batch`]; the result
    /// is exactly what [`DistanceOracle::estimate`] returns for `(u, v)`.
    pub fn query(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        self.query_tagged(u, v).0
    }

    /// [`ServeClient::query`] plus the generation number the answering
    /// shard was serving — during a hot swap this attributes the answer to
    /// the exact snapshot that produced it.
    pub fn query_tagged(&self, u: NodeId, v: NodeId) -> (Result<Distance, SketchError>, u64) {
        self.query_batch_tagged(&[(u, v)])
            .pop()
            // dsketch-lint: allow(no-unwrap-in-hot-path): a one-pair batch returns exactly one result by construction
            .expect("one result")
    }

    /// Answer a batch of queries, fanning out to every shard involved and
    /// reassembling the answers in input order.
    ///
    /// Batching amortizes the channel round-trip: all pairs for one shard
    /// travel in one message, and different shards answer concurrently.
    pub fn query_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Distance, SketchError>> {
        self.query_batch_tagged(pairs)
            .into_iter()
            .map(|(result, _generation)| result)
            .collect()
    }

    /// [`ServeClient::query_batch`] with each answer tagged with the
    /// generation number that served it.  Mid-swap, a batch spanning
    /// several shards can legitimately mix tags: each shard picks up the
    /// new generation at its own batch boundary.
    pub fn query_batch_tagged(
        &self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<(Result<Distance, SketchError>, u64)> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let shards = self.senders.len();
        let mut per_shard: Vec<Vec<(usize, NodeId, NodeId)>> = vec![Vec::new(); shards];
        for (index, &(u, v)) in pairs.iter().enumerate() {
            per_shard[shard_of(u, v, shards)].push((index, u, v));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut jobs_sent = 0usize;
        for (shard, shard_pairs) in per_shard.into_iter().enumerate() {
            if shard_pairs.is_empty() {
                continue;
            }
            self.queue_entries[shard].add(1);
            self.senders[shard]
                .send(Job {
                    pairs: shard_pairs,
                    reply: reply_tx.clone(),
                })
                // dsketch-lint: allow(no-unwrap-in-hot-path): a closed queue means the shard thread died mid-query — propagate its panic
                .expect("query shard terminated");
            jobs_sent += 1;
        }
        drop(reply_tx);
        let mut results: Vec<Option<(Result<Distance, SketchError>, u64)>> =
            vec![None; pairs.len()];
        for _ in 0..jobs_sent {
            let (generation, batch) = match reply_rx.recv() {
                Ok(reply) => reply,
                // Every reply sender is gone with answers still
                // outstanding: a shard panicked (or shed its batch) with
                // this batch in flight.  The supervisor restarts it; the
                // unanswered slots are filled with a typed error below so
                // the caller can retry instead of crashing with us.
                Err(_) => break,
            };
            for (index, result) in batch {
                results[index] = Some((result, generation));
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    let (u, v) = pairs[index];
                    (
                        Err(SketchError::ShardPanicked {
                            shard: shard_of(u, v, shards),
                        }),
                        0,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsketch::{SchemeSpec, SketchBuilder};
    use netgraph::generators::{erdos_renyi, GeneratorConfig};

    fn oracle() -> Arc<dyn DistanceOracle> {
        let graph = erdos_renyi(40, 0.2, GeneratorConfig::uniform(3, 1, 9));
        let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
            .seed(5)
            .build(&graph)
            .unwrap();
        Arc::from(outcome.sketches)
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for u in 0..20u32 {
                for v in 0..20u32 {
                    let s = shard_of(NodeId(u), NodeId(v), shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(NodeId(u), NodeId(v), shards));
                }
            }
        }
    }

    #[test]
    fn routing_spreads_pairs_across_shards() {
        let shards = 4;
        let mut per_shard = vec![0usize; shards];
        for u in 0..40u32 {
            for v in 0..40u32 {
                per_shard[shard_of(NodeId(u), NodeId(v), shards)] += 1;
            }
        }
        for &count in &per_shard {
            // 1600 pairs over 4 shards: each shard should be near 400.
            assert!((200..=600).contains(&count), "imbalanced: {per_shard:?}");
        }
    }

    #[test]
    fn symmetric_pairs_share_a_shard_and_a_cache_entry() {
        // Routing: both orientations of every pair land on the same shard.
        for shards in [1, 3, 4, 8] {
            for u in 0..25u32 {
                for v in 0..25u32 {
                    assert_eq!(
                        shard_of(NodeId(u), NodeId(v), shards),
                        shard_of(NodeId(v), NodeId(u), shards),
                        "({u}, {v}) and ({v}, {u}) must be cached on one shard"
                    );
                }
            }
        }

        // Caching: (u, v) then (v, u) is one miss then one hit, and the two
        // orientations answer identically.
        let oracle = oracle();
        let server = SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).unwrap();
        let client = server.client();
        let forward = client.query(NodeId(2), NodeId(9)).unwrap();
        let reversed = client.query(NodeId(9), NodeId(2)).unwrap();
        assert_eq!(forward, reversed);
        let mid = server.stats();
        assert_eq!(mid.totals.cache_misses, 1, "first orientation misses");
        assert_eq!(mid.totals.cache_hits, 1, "reversed orientation hits");

        // A batch mixing both orientations of fresh pairs: exactly one miss
        // per unordered pair.
        let pairs: Vec<(NodeId, NodeId)> = (10..20u32)
            .flat_map(|u| [(NodeId(u), NodeId(u + 5)), (NodeId(u + 5), NodeId(u))])
            .collect();
        for result in client.query_batch(&pairs) {
            result.unwrap();
        }
        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.totals.queries, 22);
        assert_eq!(stats.totals.cache_misses, 11, "one miss per unordered pair");
        assert_eq!(stats.totals.cache_hits, 11);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let oracle = oracle();
        assert!(
            SketchServer::start(Arc::clone(&oracle), ServeConfig::default().with_shards(0))
                .is_err()
        );
        assert!(SketchServer::start(oracle, ServeConfig::default().with_queue_depth(0)).is_err());
    }

    #[test]
    fn server_answers_like_the_oracle_and_counts_queries() {
        let oracle = oracle();
        let server = SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).unwrap();
        assert_eq!(server.num_shards(), 4);
        let client = server.client();
        for u in 0..10u32 {
            for v in 0..10u32 {
                assert_eq!(
                    client.query(NodeId(u), NodeId(v)),
                    oracle.estimate(NodeId(u), NodeId(v))
                );
            }
        }
        // Unknown nodes come back as errors, not panics, and are counted.
        assert!(matches!(
            client.query(NodeId(999), NodeId(0)),
            Err(SketchError::UnknownNode(NodeId(999)))
        ));
        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.totals.queries, 101);
        assert_eq!(stats.totals.errors, 1);
        assert_eq!(
            stats.totals.cache_hits + stats.totals.cache_misses,
            stats.totals.queries
        );
        assert_eq!(stats.num_shards(), 4);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let server = SketchServer::start(oracle(), ServeConfig::default()).unwrap();
        let client = server.client();
        assert!(client.query_batch(&[]).is_empty());
        drop(client);
        assert_eq!(server.shutdown().totals.queries, 0);
    }

    #[test]
    fn sampled_tracing_emits_exactly_ceil_q_over_n_events() {
        let server = SketchServer::start(
            oracle(),
            ServeConfig::default().with_shards(1).with_trace_sample(8),
        )
        .unwrap();
        let client = server.client();
        for u in 0..20u32 {
            let _ = client.query(NodeId(u % 10), NodeId((u + 1) % 10));
        }
        drop(client);
        let events = server.tracer().recent(usize::MAX);
        assert_eq!(events.len(), 3, "20 queries at 1-in-8 sample 3 events");
        assert!(events.iter().all(|e| e.contains("\"event\":\"query\"")));
        assert!(events[0].contains("\"cache\":\"miss\""));
    }

    #[test]
    fn server_metrics_appear_in_the_registry() {
        let server = SketchServer::start(oracle(), ServeConfig::default()).unwrap();
        let client = server.client();
        for u in 0..10u32 {
            client.query(NodeId(u), NodeId(u + 1)).unwrap();
        }
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter_sum("dsketch_serve_queries_total"), 10);
        assert_eq!(
            snap.histogram_total("dsketch_serve_query_latency_nanos")
                .count(),
            10,
            "one latency observation per query"
        );
        // All batches drained: the queue gauges read zero.
        for shard in 0..server.num_shards() {
            let labels = format!("shard=\"{shard}\"");
            assert_eq!(snap.gauge("dsketch_serve_queue_entries", &labels), Some(0));
        }
    }

    #[test]
    fn stats_can_be_read_while_running() {
        let server = SketchServer::start(oracle(), ServeConfig::default()).unwrap();
        let client = server.client();
        client.query(NodeId(0), NodeId(1)).unwrap();
        let mid = server.stats();
        assert_eq!(mid.totals.queries, 1);
        client.query(NodeId(0), NodeId(1)).unwrap();
        let later = server.stats();
        assert_eq!(later.totals.queries, 2);
        assert_eq!(later.totals.cache_hits, 1, "repeat query hits the cache");
    }
}
