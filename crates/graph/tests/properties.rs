//! Property-based tests over the graph substrate.
//!
//! These check metric and structural invariants that the sketch layer relies
//! on: symmetry of the CSR representation, the triangle inequality of exact
//! distances, the D ≤ S relation between diameters, and the determinism of
//! the seeded generators.

use netgraph::apsp::DistanceTable;
use netgraph::diameter::diameters;
use netgraph::generators::{
    erdos_renyi, grid, preferential_attachment, random_tree, ring, GeneratorConfig,
};
use netgraph::shortest_path::{dijkstra, multi_source_dijkstra};
use netgraph::{Graph, GraphBuilder, NodeId, INFINITY};
use proptest::prelude::*;

/// Strategy: a connected random graph with 4..=40 nodes, weighted 1..=20.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..=40, 0u64..10_000, 1usize..4).prop_map(|(n, seed, family)| match family {
        0 => erdos_renyi(n, 0.2, GeneratorConfig::uniform(seed, 1, 20)),
        1 => random_tree(n, GeneratorConfig::uniform(seed, 1, 20)),
        2 => ring(n.max(3), GeneratorConfig::uniform(seed, 1, 20)),
        _ => preferential_attachment(n.max(4), 2, GeneratorConfig::uniform(seed, 1, 20)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_adjacency_is_symmetric(g in arb_graph()) {
        for u in g.nodes() {
            for e in g.neighbors(u) {
                prop_assert_eq!(g.edge_weight(e.to, u), Some(e.weight));
            }
        }
    }

    #[test]
    fn exact_distances_satisfy_triangle_inequality(g in arb_graph()) {
        let table = DistanceTable::exact(&g);
        prop_assume!(table.is_connected());
        let n = g.num_nodes();
        // Sample a handful of triples rather than all n^3.
        for a in 0..n.min(8) {
            for b in 0..n.min(8) {
                for c in 0..n.min(8) {
                    let (a, b, c) = (NodeId::from_index(a), NodeId::from_index(b), NodeId::from_index(c));
                    prop_assert!(
                        table.distance(a, c) <= table.distance(a, b) + table.distance(b, c)
                    );
                }
            }
        }
    }

    #[test]
    fn distances_are_symmetric_and_zero_on_diagonal(g in arb_graph()) {
        let table = DistanceTable::exact(&g);
        for u in g.nodes() {
            prop_assert_eq!(table.distance(u, u), 0);
            for v in g.nodes() {
                prop_assert_eq!(table.distance(u, v), table.distance(v, u));
            }
        }
    }

    #[test]
    fn hop_diameter_never_exceeds_sp_diameter(g in arb_graph()) {
        let d = diameters(&g);
        prop_assume!(d.hop_diameter != usize::MAX);
        prop_assert!(d.hop_diameter <= d.shortest_path_diameter);
        prop_assert!(d.shortest_path_diameter < g.num_nodes());
    }

    #[test]
    fn dijkstra_distance_bounded_by_any_edge_path(g in arb_graph()) {
        // d(u, v) <= w(u, x) + d(x, v) for every edge (u, x): single-step
        // Bellman relaxation is a fixed point of Dijkstra's output.
        let src = NodeId(0);
        let tree = dijkstra(&g, src);
        for u in g.nodes() {
            if tree.dist[u.index()] == INFINITY { continue; }
            for e in g.neighbors(u) {
                if tree.dist[e.to.index()] == INFINITY { continue; }
                prop_assert!(tree.dist[e.to.index()] <= tree.dist[u.index()] + e.weight);
                prop_assert!(tree.dist[u.index()] <= tree.dist[e.to.index()] + e.weight);
            }
        }
    }

    #[test]
    fn multi_source_is_min_of_single_sources(g in arb_graph()) {
        let n = g.num_nodes();
        let sources = vec![NodeId(0), NodeId::from_index(n / 2), NodeId::from_index(n - 1)];
        let multi = multi_source_dijkstra(&g, &sources);
        let singles: Vec<_> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
        for v in g.nodes() {
            let expected = singles.iter().map(|t| t.distance(v)).min().unwrap();
            prop_assert_eq!(multi.distance(v), expected);
        }
    }

    #[test]
    fn path_reconstruction_has_correct_total_weight(g in arb_graph()) {
        let src = NodeId(0);
        let tree = dijkstra(&g, src);
        for v in g.nodes() {
            if let Some(path) = tree.path_to(v) {
                prop_assert_eq!(path[0], src);
                prop_assert_eq!(*path.last().unwrap(), v);
                let mut total = 0u64;
                for pair in path.windows(2) {
                    let w = g.edge_weight(pair[0], pair[1]);
                    prop_assert!(w.is_some());
                    total += w.unwrap();
                }
                prop_assert_eq!(total, tree.distance(v));
            }
        }
    }

    #[test]
    fn builder_dedup_is_idempotent(edges in prop::collection::vec((0u32..12, 0u32..12, 1u64..50), 0..60)) {
        let mut b1 = GraphBuilder::new(12);
        let mut b2 = GraphBuilder::new(12);
        for &(u, v, w) in &edges {
            b1.add_edge(NodeId(u), NodeId(v), w);
            // b2 gets every edge twice; the built graphs must be identical.
            b2.add_edge(NodeId(u), NodeId(v), w);
            b2.add_edge(NodeId(v), NodeId(u), w);
        }
        let g1 = b1.build();
        let g2 = b2.build();
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
        prop_assert_eq!(
            g1.undirected_edges().collect::<Vec<_>>(),
            g2.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..5000, n in 8usize..40) {
        let a = erdos_renyi(n, 0.15, GeneratorConfig::uniform(seed, 1, 9));
        let b = erdos_renyi(n, 0.15, GeneratorConfig::uniform(seed, 1, 9));
        prop_assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_distance_is_at_least_manhattan_times_min_weight(rows in 2usize..6, cols in 2usize..6, seed in 0u64..100) {
        let g = grid(rows, cols, GeneratorConfig::uniform(seed, 1, 5));
        let table = DistanceTable::exact(&g);
        let idx = |r: usize, c: usize| NodeId::from_index(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                let manhattan = r + c;
                prop_assert!(table.distance(idx(0, 0), idx(r, c)) >= manhattan as u64);
                prop_assert!(table.distance(idx(0, 0), idx(r, c)) <= 5 * manhattan as u64);
            }
        }
    }
}
