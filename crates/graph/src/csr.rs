//! Compressed-sparse-row (CSR) storage for weighted undirected graphs.
//!
//! The CONGEST simulator iterates over node adjacencies every round, so the
//! representation is optimized for cache-friendly sequential scans: all
//! adjacency entries live in two parallel `Vec`s (`targets`, `weights`) and a
//! node's neighborhood is the contiguous slice `offsets[u]..offsets[u + 1]`.

use crate::{Weight, INFINITY};
use std::fmt;

/// Dense node identifier in `0..n`.
///
/// A thin newtype so that node indices cannot be silently confused with
/// counts, weights, or positions in unrelated arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A reference to one directed half of an undirected edge, as seen from the
/// node whose adjacency list it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// The neighbor this edge leads to.
    pub to: NodeId,
    /// The edge weight.
    pub weight: Weight,
}

/// Immutable weighted undirected graph in CSR form.
///
/// Both directed halves of every undirected edge are stored, so
/// `neighbors(u)` contains `v` if and only if `neighbors(v)` contains `u`,
/// with the same weight.  Construction goes through [`crate::GraphBuilder`],
/// which enforces this symmetry.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
    num_undirected_edges: usize,
}

impl Graph {
    /// Build directly from CSR arrays.  Intended for use by
    /// [`crate::GraphBuilder`]; panics if the arrays are inconsistent.
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<Weight>,
        num_undirected_edges: usize,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(*offsets.last().unwrap(), targets.len());
        assert_eq!(targets.len(), weights.len());
        Graph {
            offsets,
            targets,
            weights,
            num_undirected_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_undirected_edges
    }

    /// Total number of directed adjacency entries (= `2 |E|`).
    #[inline]
    pub fn num_directed_entries(&self) -> usize {
        self.targets.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Degree of `u` (number of incident undirected edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Neighbor slice of `u` as `(targets, weights)` parallel slices.
    #[inline]
    pub fn neighbor_slices(&self, u: NodeId) -> (&[NodeId], &[Weight]) {
        let lo = self.offsets[u.index()];
        let hi = self.offsets[u.index() + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Iterator over the edges incident to `u`.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let (t, w) = self.neighbor_slices(u);
        t.iter()
            .zip(w.iter())
            .map(|(&to, &weight)| EdgeRef { to, weight })
    }

    /// The weight of edge `(u, v)` if it exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u).find(|e| e.to == v).map(|e| e.weight)
    }

    /// Returns `true` if `(u, v)` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterator over every undirected edge exactly once, as `(u, v, w)` with
    /// `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |e| u < e.to)
                .map(move |e| (u, e.to, e.weight))
        })
    }

    /// Maximum edge weight in the graph (0 for an edgeless graph).
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Minimum edge weight in the graph ([`INFINITY`] for an edgeless graph).
    pub fn min_weight(&self) -> Weight {
        self.weights.iter().copied().min().unwrap_or(INFINITY)
    }

    /// Sum of all undirected edge weights.
    pub fn total_weight(&self) -> u128 {
        // Each undirected edge appears twice in `weights`.
        self.weights.iter().map(|&w| w as u128).sum::<u128>() / 2
    }

    /// A conservative upper bound on any finite shortest-path distance:
    /// the sum of all edge weights plus one.  Useful as a "practically
    /// infinite" but still finite radius.
    pub fn weight_upper_bound(&self) -> Weight {
        let total = self.total_weight();
        if total >= (u64::MAX as u128) {
            u64::MAX - 1
        } else {
            total as u64 + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 2);
        b.add_edge(NodeId(2), NodeId(0), 3);
        b.build()
    }

    #[test]
    fn csr_basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_entries(), 6);
    }

    #[test]
    fn degrees_and_neighbors_are_symmetric() {
        let g = triangle();
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
            for e in g.neighbors(u) {
                assert_eq!(g.edge_weight(e.to, u), Some(e.weight));
            }
        }
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(2));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(2)), Some(3));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn undirected_edges_listed_once() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn weight_stats() {
        let g = triangle();
        assert_eq!(g.max_weight(), 3);
        assert_eq!(g.min_weight(), 1);
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.weight_upper_bound(), 7);
    }

    #[test]
    fn node_id_display_and_index() {
        let u = NodeId(7);
        assert_eq!(u.index(), 7);
        assert_eq!(NodeId::from_index(7), u);
        assert_eq!(format!("{u}"), "v7");
    }
}
