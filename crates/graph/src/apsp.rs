//! Ground-truth distance tables: all-pairs (dense) and sampled-pairs modes.
//!
//! The stretch evaluation in the experiment harness compares sketch estimates
//! against exact distances.  For small graphs we materialize the full
//! `n × n` table; for larger graphs we evaluate a uniformly sampled set of
//! pairs, which is an unbiased estimator of average stretch and a lower bound
//! probe for worst-case stretch.

use crate::csr::{Graph, NodeId};
use crate::shortest_path::multi_source_dijkstra;
use crate::{Distance, INFINITY};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Dense all-pairs distance table.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    n: usize,
    dist: Vec<Distance>,
}

impl DistanceTable {
    /// Compute the exact all-pairs table by running Dijkstra from every node.
    ///
    /// Memory is `n^2` words; intended for graphs up to a few thousand nodes
    /// (the scale of the experiment harness).
    pub fn exact(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut dist = vec![INFINITY; n * n];
        for u in graph.nodes() {
            let tree = multi_source_dijkstra(graph, &[u]);
            dist[u.index() * n..(u.index() + 1) * n].copy_from_slice(&tree.dist);
        }
        DistanceTable { n, dist }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Exact distance between `u` and `v`.
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> Distance {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Row of distances from `u`.
    pub fn row(&self, u: NodeId) -> &[Distance] {
        &self.dist[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// True if every pair is at finite distance (graph is connected).
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|&d| d != INFINITY)
    }

    /// Iterator over all unordered pairs `(u, v)` with `u < v` and their
    /// exact distances.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, Distance)> + '_ {
        (0..self.n).flat_map(move |u| {
            ((u + 1)..self.n).map(move |v| {
                (
                    NodeId::from_index(u),
                    NodeId::from_index(v),
                    self.dist[u * self.n + v],
                )
            })
        })
    }

    /// For node `u`, the number of nodes strictly closer to `u` than `v` is.
    ///
    /// This is the quantity that decides whether `v` is ε-far from `u`
    /// (Section 4 of the paper): `v` is ε-far from `u` iff
    /// `|{w : d(u,w) < d(u,v)}| ≥ ε n`.
    pub fn rank_of(&self, u: NodeId, v: NodeId) -> usize {
        let duv = self.distance(u, v);
        self.row(u).iter().filter(|&&d| d < duv).count()
    }

    /// True if `v` is ε-far from `u` per the paper's definition.
    pub fn is_eps_far(&self, u: NodeId, v: NodeId, eps: f64) -> bool {
        let threshold = (eps * self.n as f64).ceil() as usize;
        self.rank_of(u, v) >= threshold
    }
}

/// A set of sampled query pairs with their exact distances.
#[derive(Debug, Clone)]
pub struct SampledPairs {
    /// `(u, v, d(u, v))` triples with `u != v`.
    pub pairs: Vec<(NodeId, NodeId, Distance)>,
}

impl SampledPairs {
    /// Sample `count` pairs uniformly (with replacement over pairs, without
    /// `u == v`), computing their exact distances with per-source Dijkstra.
    ///
    /// Sources are batched so each distinct `u` runs Dijkstra once.
    pub fn uniform(graph: &Graph, count: usize, seed: u64) -> Self {
        let n = graph.num_nodes();
        if n < 2 || count == 0 {
            return SampledPairs { pairs: Vec::new() };
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let all: Vec<NodeId> = graph.nodes().collect();

        // Draw pairs.
        let mut raw: Vec<(NodeId, NodeId)> = Vec::with_capacity(count);
        while raw.len() < count {
            let u = *all.choose(&mut rng).expect("n >= 2");
            let v = *all.choose(&mut rng).expect("n >= 2");
            if u != v {
                raw.push((u, v));
            }
        }

        // Group by source.
        let mut by_source: std::collections::BTreeMap<NodeId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (u, v) in raw {
            by_source.entry(u).or_default().push(v);
        }

        let mut pairs = Vec::with_capacity(count);
        for (u, targets) in by_source {
            let tree = multi_source_dijkstra(graph, &[u]);
            for v in targets {
                pairs.push((u, v, tree.distance(v)));
            }
        }
        SampledPairs { pairs }
    }

    /// Number of sampled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs were sampled.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path5() -> Graph {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge_idx(i, i + 1, (i + 1) as u64);
        }
        b.build()
    }

    #[test]
    fn exact_table_matches_manual_distances() {
        let g = path5();
        let t = DistanceTable::exact(&g);
        // weights 1,2,3,4 along the path
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 10);
        assert_eq!(t.distance(NodeId(1), NodeId(3)), 5);
        assert_eq!(t.distance(NodeId(2), NodeId(2)), 0);
        assert!(t.is_connected());
        assert_eq!(t.num_nodes(), 5);
    }

    #[test]
    fn table_is_symmetric() {
        let g = path5();
        let t = DistanceTable::exact(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(t.distance(u, v), t.distance(v, u));
            }
        }
    }

    #[test]
    fn pairs_iterator_counts_all_unordered_pairs() {
        let g = path5();
        let t = DistanceTable::exact(&g);
        let pairs: Vec<_> = t.pairs().collect();
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn rank_and_eps_far() {
        let g = path5();
        let t = DistanceTable::exact(&g);
        // From node 0 distances are [0,1,3,6,10]; rank of node 4 is 4.
        assert_eq!(t.rank_of(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.rank_of(NodeId(0), NodeId(1)), 1);
        assert!(t.is_eps_far(NodeId(0), NodeId(4), 0.5)); // 4 >= ceil(2.5)=3
        assert!(!t.is_eps_far(NodeId(0), NodeId(1), 0.5)); // 1 < 3
    }

    #[test]
    fn disconnected_table_reports_infinity() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 1);
        let g = b.build();
        let t = DistanceTable::exact(&g);
        assert!(!t.is_connected());
        assert_eq!(t.distance(NodeId(0), NodeId(2)), INFINITY);
    }

    #[test]
    fn sampled_pairs_match_exact_table() {
        let g = path5();
        let t = DistanceTable::exact(&g);
        let s = SampledPairs::uniform(&g, 20, 7);
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
        for &(u, v, d) in &s.pairs {
            assert_ne!(u, v);
            assert_eq!(d, t.distance(u, v));
        }
    }

    #[test]
    fn sampled_pairs_edge_cases() {
        let g = GraphBuilder::new(1).build();
        assert!(SampledPairs::uniform(&g, 5, 1).is_empty());
        let g2 = path5();
        assert!(SampledPairs::uniform(&g2, 0, 1).is_empty());
    }
}
