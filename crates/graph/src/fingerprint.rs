//! Structural graph fingerprints for snapshot validation.
//!
//! A sketch snapshot is only meaningful for the exact graph it was built
//! on: labels answer `estimate(u, v)` by node id, so loading them against a
//! different topology silently produces garbage distances.  The persistence
//! layer therefore stamps every snapshot with a [`GraphFingerprint`] — node
//! count, edge count, and an order-sensitive checksum over every undirected
//! edge `(u, v, w)` — and refuses to serve a snapshot against a graph whose
//! fingerprint differs.
//!
//! The checksum is FNV-1a over the canonical edge enumeration
//! ([`Graph::undirected_edges`], which yields each edge once as `u < v` in
//! sorted order), so two graphs compare equal exactly when they have the
//! same node count and the same weighted edge set.  It is a corruption /
//! mix-up detector, not a cryptographic commitment.

use crate::csr::Graph;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A compact structural identity of a graph: `(n, m, edge checksum)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphFingerprint {
    /// Number of nodes `n`.
    pub nodes: u64,
    /// Number of undirected edges `m`.
    pub edges: u64,
    /// FNV-1a checksum over the canonical `(u, v, w)` edge enumeration.
    pub weight_checksum: u64,
}

impl GraphFingerprint {
    /// Fingerprint a graph.  Equivalent to [`Graph::fingerprint`].
    pub fn of(graph: &Graph) -> Self {
        let mut hash = FNV_OFFSET;
        let mut absorb = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        absorb(graph.num_nodes() as u64);
        for (u, v, w) in graph.undirected_edges() {
            absorb(u.0 as u64);
            absorb(v.0 as u64);
            absorb(w);
        }
        GraphFingerprint {
            nodes: graph.num_nodes() as u64,
            edges: graph.num_edges() as u64,
            weight_checksum: hash,
        }
    }
}

impl std::fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} checksum={:016x}",
            self.nodes, self.edges, self.weight_checksum
        )
    }
}

impl Graph {
    /// The structural fingerprint of this graph: node count, edge count, and
    /// a checksum over every `(u, v, w)` edge.
    ///
    /// Two graphs have equal fingerprints exactly when they have the same
    /// node count and identical weighted edge sets (up to the FNV collision
    /// probability); the sketch persistence layer uses this to refuse
    /// serving a snapshot against the wrong graph.
    pub fn fingerprint(&self) -> GraphFingerprint {
        GraphFingerprint::of(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::csr::NodeId;
    use crate::generators::{erdos_renyi, GeneratorConfig};
    use crate::GraphBuilder;

    #[test]
    fn identical_graphs_have_identical_fingerprints() {
        let a = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
        let b = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seed_changes_the_fingerprint() {
        let a = erdos_renyi(64, 0.1, GeneratorConfig::uniform(7, 1, 20));
        let b = erdos_renyi(64, 0.1, GeneratorConfig::uniform(8, 1, 20));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn weight_change_alone_is_detected() {
        let mut a = GraphBuilder::new(3);
        a.add_edge(NodeId(0), NodeId(1), 1);
        a.add_edge(NodeId(1), NodeId(2), 2);
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1);
        b.add_edge(NodeId(1), NodeId(2), 3);
        let (fa, fb) = (a.build().fingerprint(), b.build().fingerprint());
        assert_eq!(fa.nodes, fb.nodes);
        assert_eq!(fa.edges, fb.edges);
        assert_ne!(fa.weight_checksum, fb.weight_checksum);
    }

    #[test]
    fn isolated_vertices_change_the_fingerprint() {
        // Same edge set, different node count: a padded graph must not
        // fingerprint equal to the unpadded one.
        let mut a = GraphBuilder::new(2);
        a.add_edge(NodeId(0), NodeId(1), 4);
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 4);
        assert_ne!(a.build().fingerprint(), b.build().fingerprint());
    }

    #[test]
    fn display_is_compact() {
        let g = erdos_renyi(16, 0.2, GeneratorConfig::unit(1));
        let text = g.fingerprint().to_string();
        assert!(text.contains("n=16"), "{text}");
        assert!(text.contains("checksum="), "{text}");
    }
}
