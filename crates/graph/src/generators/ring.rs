//! Ring topologies: the adversarial high-`S` case (`S = Θ(n)`).
//!
//! Rings matter for this paper because the round complexity of every
//! construction scales linearly in the shortest-path diameter `S`; a ring is
//! the simplest family where `S` grows linearly with `n`, so it exposes the
//! `S` term in Theorem 1.1 that expander-like graphs hide.

use super::GeneratorConfig;
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Simple cycle on `n ≥ 3` nodes.
pub fn ring(n: usize, config: GeneratorConfig) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut rng = config.rng();
    let mut builder = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        builder.add_edge_idx(i, (i + 1) % n, config.weights.sample(&mut rng));
    }
    builder.build()
}

/// Ring plus `num_chords` random chords.
///
/// With unit weights a few chords collapse the hop diameter while — if the
/// chords are given large weights — the *shortest-path* diameter stays
/// `Θ(n)`.  This is exactly the `D ≪ S` regime discussed in Section 2.1,
/// where sketch-based queries beat on-demand Bellman–Ford most decisively.
pub fn ring_with_chords(
    n: usize,
    num_chords: usize,
    chord_weight: crate::Weight,
    config: GeneratorConfig,
) -> Graph {
    assert!(n >= 4, "ring_with_chords needs at least 4 nodes");
    let mut rng = config.rng();
    let mut builder = GraphBuilder::with_capacity(n, n + num_chords);
    for i in 0..n {
        builder.add_edge_idx(i, (i + 1) % n, config.weights.sample(&mut rng));
    }
    let mut placed = 0;
    let mut attempts = 0;
    while placed < num_chords && attempts < num_chords * 20 + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        // Skip self-loops and existing ring edges.
        if u == v || (u + 1) % n == v || (v + 1) % n == u {
            continue;
        }
        builder.add_edge_idx(u, v, chord_weight);
        placed += 1;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameters;
    use crate::generators::is_connected;

    #[test]
    fn ring_structure() {
        let g = ring(8, GeneratorConfig::unit(1));
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 8);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(is_connected(&g));
        assert_eq!(diameters(&g).hop_diameter, 4);
    }

    #[test]
    fn ring_diameter_scales_linearly() {
        let g = ring(40, GeneratorConfig::unit(1));
        assert_eq!(diameters(&g).shortest_path_diameter, 20);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        ring(2, GeneratorConfig::unit(1));
    }

    #[test]
    fn chords_shrink_hop_diameter_but_not_sp_diameter() {
        // Unit ring edges, very heavy chords: D drops, S stays n/2.
        let n = 32;
        let plain = ring(n, GeneratorConfig::unit(7));
        let chorded = ring_with_chords(n, 16, 10_000, GeneratorConfig::unit(7));
        let dp = diameters(&plain);
        let dc = diameters(&chorded);
        assert!(dc.hop_diameter <= dp.hop_diameter);
        assert_eq!(dc.shortest_path_diameter, n / 2);
        assert!(dc.hop_diameter < dc.shortest_path_diameter);
    }

    #[test]
    fn chorded_ring_has_requested_extra_edges() {
        let g = ring_with_chords(20, 5, 3, GeneratorConfig::unit(2));
        assert!(g.num_edges() >= 20);
        assert!(g.num_edges() <= 25);
        assert!(is_connected(&g));
    }
}
