//! Waxman random graphs: the classic Internet-topology model.
//!
//! Nodes are placed uniformly in the unit square and each pair `(u, v)` is
//! connected independently with probability `alpha * exp(-d(u,v) / (beta * L))`
//! where `L` is the maximum possible Euclidean distance (`√2`).  Compared to
//! random geometric graphs, Waxman graphs mix local and long-range edges,
//! which is the structure the paper's motivating applications (Internet-scale
//! distance estimation) actually have.

use super::{connect_components, GeneratorConfig, WeightModel};
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Waxman random graph with parameters `alpha` (overall density) and `beta`
/// (long-edge propensity), both in `(0, 1]`.
pub fn waxman(n: usize, alpha: f64, beta: f64, config: GeneratorConfig) -> Graph {
    assert!(n >= 1);
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let mut rng = config.rng();
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let l = 2f64.sqrt();

    let mut builder = GraphBuilder::new(n);
    let mut edge_list = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                let w = match config.weights {
                    WeightModel::Unit => ((d * 1000.0).ceil() as u64).max(1),
                    other => other.sample(&mut rng),
                };
                builder.add_edge_idx(i, j, w);
                edge_list.push((i, j));
            }
        }
    }
    connect_components(&mut builder, &mut rng, config.weights, &edge_list);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected;

    #[test]
    fn waxman_is_connected() {
        let g = waxman(150, 0.4, 0.3, GeneratorConfig::unit(13));
        assert_eq!(g.num_nodes(), 150);
        assert!(is_connected(&g));
    }

    #[test]
    fn waxman_density_increases_with_alpha() {
        let sparse = waxman(100, 0.1, 0.2, GeneratorConfig::unit(3));
        let dense = waxman(100, 0.9, 0.2, GeneratorConfig::unit(3));
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn waxman_deterministic() {
        let a = waxman(60, 0.5, 0.5, GeneratorConfig::unit(7));
        let b = waxman(60, 0.5, 0.5, GeneratorConfig::unit(7));
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn waxman_invalid_alpha_panics() {
        waxman(10, 0.0, 0.5, GeneratorConfig::unit(1));
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn waxman_invalid_beta_panics() {
        waxman(10, 0.5, 1.5, GeneratorConfig::unit(1));
    }
}
