//! Preferential attachment (Barabási–Albert) graphs: power-law degree
//! distributions typical of P2P and social overlays (Section 2.1 of the
//! paper motivates exactly these applications).

use super::GeneratorConfig;
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Barabási–Albert preferential attachment: start from a small clique of
/// `m + 1` nodes, then each new node attaches to `m` existing nodes chosen
/// proportionally to their degree (implemented with the standard
/// repeated-endpoint urn trick).
pub fn preferential_attachment(n: usize, m: usize, config: GeneratorConfig) -> Graph {
    assert!(m >= 1, "attachment degree m must be at least 1");
    assert!(
        n > m,
        "need more nodes ({n}) than the attachment degree ({m})"
    );
    let mut rng = config.rng();
    let mut builder = GraphBuilder::with_capacity(n, n * m);

    // `urn` holds one entry per edge endpoint; sampling uniformly from it is
    // sampling proportionally to degree.
    let mut urn: Vec<usize> = Vec::with_capacity(2 * n * m);

    // Seed clique on nodes 0..=m.
    for u in 0..=m {
        for v in (u + 1)..=m {
            builder.add_edge_idx(u, v, config.weights.sample(&mut rng));
            urn.push(u);
            urn.push(v);
        }
    }

    for new_node in (m + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m + 100 {
            guard += 1;
            let pick = urn[rng.gen_range(0..urn.len())];
            targets.insert(pick);
        }
        // Fallback: if degree-proportional sampling keeps colliding (tiny
        // graphs), fill with uniformly random earlier nodes.
        while targets.len() < m {
            targets.insert(rng.gen_range(0..new_node));
        }
        for &t in &targets {
            builder.add_edge_idx(new_node, t, config.weights.sample(&mut rng));
            urn.push(new_node);
            urn.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected;

    #[test]
    fn ba_counts_and_connectivity() {
        let n = 300;
        let m = 3;
        let g = preferential_attachment(n, m, GeneratorConfig::unit(21));
        assert_eq!(g.num_nodes(), n);
        assert!(is_connected(&g));
        // seed clique edges + m per subsequent node (some may collide into
        // fewer due to dedup, but builder dedups identical pairs only if the
        // same pair repeats, which we prevent via the BTreeSet).
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn ba_has_skewed_degrees() {
        let g = preferential_attachment(500, 2, GeneratorConfig::unit(8));
        let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        // Hubs should be much larger than the average degree.
        assert!(
            max_deg as f64 > 4.0 * avg_deg,
            "max degree {max_deg} vs avg {avg_deg}: not heavy-tailed"
        );
    }

    #[test]
    fn ba_minimum_degree_is_m() {
        let m = 3;
        let g = preferential_attachment(100, m, GeneratorConfig::unit(5));
        let min_deg = g.nodes().map(|u| g.degree(u)).min().unwrap();
        assert!(min_deg >= m);
    }

    #[test]
    fn ba_deterministic() {
        let a = preferential_attachment(120, 2, GeneratorConfig::uniform(2, 1, 9));
        let b = preferential_attachment(120, 2, GeneratorConfig::uniform(2, 1, 9));
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn ba_rejects_too_few_nodes() {
        preferential_attachment(3, 3, GeneratorConfig::unit(1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn ba_rejects_zero_m() {
        preferential_attachment(10, 0, GeneratorConfig::unit(1));
    }
}
