//! Tree topologies: hierarchical overlays.

use super::GeneratorConfig;
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Complete `arity`-ary tree on `n` nodes (node `i > 0` attaches to parent
/// `(i - 1) / arity`).
pub fn balanced_tree(n: usize, arity: usize, config: GeneratorConfig) -> Graph {
    assert!(n >= 1, "tree needs at least 1 node");
    assert!(arity >= 1, "arity must be at least 1");
    let mut rng = config.rng();
    let mut builder = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let parent = (i - 1) / arity;
        builder.add_edge_idx(i, parent, config.weights.sample(&mut rng));
    }
    builder.build()
}

/// Uniform random recursive tree: node `i` attaches to a uniformly random
/// earlier node.  Expected depth `Θ(log n)`.
pub fn random_tree(n: usize, config: GeneratorConfig) -> Graph {
    assert!(n >= 1, "tree needs at least 1 node");
    let mut rng = config.rng();
    let mut builder = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        builder.add_edge_idx(i, parent, config.weights.sample(&mut rng));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameters;
    use crate::generators::is_connected;

    #[test]
    fn balanced_tree_structure() {
        let g = balanced_tree(15, 2, GeneratorConfig::unit(1));
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(is_connected(&g));
        // Complete binary tree of 15 nodes has depth 3, diameter 6.
        assert_eq!(diameters(&g).hop_diameter, 6);
    }

    #[test]
    fn unary_balanced_tree_is_path() {
        let g = balanced_tree(10, 1, GeneratorConfig::unit(1));
        assert_eq!(diameters(&g).hop_diameter, 9);
    }

    #[test]
    fn random_tree_is_tree_and_connected() {
        let g = random_tree(100, GeneratorConfig::uniform(3, 1, 5));
        assert_eq!(g.num_edges(), 99);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_tree_depth_is_moderate() {
        let g = random_tree(512, GeneratorConfig::unit(9));
        let d = diameters(&g).hop_diameter;
        // Random recursive trees have diameter O(log n); 512 nodes should be
        // far below, say, 60.
        assert!(d < 60, "random recursive tree unexpectedly deep: {d}");
    }

    #[test]
    fn single_node_tree() {
        let g = balanced_tree(1, 2, GeneratorConfig::unit(1));
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = random_tree(1, GeneratorConfig::unit(1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_random_tree() {
        let a = random_tree(50, GeneratorConfig::unit(4));
        let b = random_tree(50, GeneratorConfig::unit(4));
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }
}
