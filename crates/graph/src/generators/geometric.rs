//! Random geometric graphs: nodes scattered in the unit square, edges
//! between nodes within a connection radius, edge weight proportional to
//! Euclidean distance.  Models wireless / proximity overlays where network
//! distance correlates with a low-dimensional embedding — the regime where
//! network-coordinate systems like Vivaldi do well and against which the
//! paper positions its guarantees for *general* graphs.

use super::{connect_components, GeneratorConfig, WeightModel};
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Random geometric graph on `n` points in the unit square with connection
/// radius `radius`.
///
/// Edge weights: if the config's model is [`WeightModel::Unit`] the weight is
/// the Euclidean distance scaled to `1..=1415` (so that geometry shows up in
/// the metric); otherwise the configured model is sampled as usual.
///
/// The pair scan is the straightforward `O(n^2)` loop — the experiment
/// harness uses this family at `n ≤ 4096`, where the scan is negligible next
/// to the simulation itself.
pub fn random_geometric(n: usize, radius: f64, config: GeneratorConfig) -> Graph {
    assert!(n >= 1, "need at least one node");
    assert!(radius > 0.0, "radius must be positive");
    let mut rng = config.rng();
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();

    let mut builder = GraphBuilder::new(n);
    let mut edge_list = Vec::new();
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            let d2 = dx * dx + dy * dy;
            if d2 <= r2 {
                let w = match config.weights {
                    WeightModel::Unit => ((d2.sqrt() * 1000.0).ceil() as u64).max(1),
                    other => other.sample(&mut rng),
                };
                builder.add_edge_idx(i, j, w);
                edge_list.push((i, j));
            }
        }
    }

    connect_components(&mut builder, &mut rng, config.weights, &edge_list);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected;

    #[test]
    fn geometric_is_connected_and_full_size() {
        let g = random_geometric(200, 0.15, GeneratorConfig::unit(3));
        assert_eq!(g.num_nodes(), 200);
        assert!(is_connected(&g));
        assert!(g.num_edges() >= 199);
    }

    #[test]
    fn geometric_weights_reflect_distance() {
        let g = random_geometric(100, 0.2, GeneratorConfig::unit(5));
        // Distance-derived weights are bounded by ceil(radius * 1000) except
        // for the few connectivity-repair edges, which use the Unit model
        // (weight 1).  So all weights are <= 283 or == 1.
        for (_, _, w) in g.undirected_edges() {
            assert!(w == 1 || w <= (0.2f64.hypot(0.2) * 1000.0).ceil() as u64 + 1);
        }
    }

    #[test]
    fn geometric_deterministic() {
        let a = random_geometric(80, 0.2, GeneratorConfig::unit(9));
        let b = random_geometric(80, 0.2, GeneratorConfig::unit(9));
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn geometric_explicit_weight_model() {
        let g = random_geometric(60, 0.3, GeneratorConfig::uniform(2, 5, 10));
        for (_, _, w) in g.undirected_edges() {
            assert!((5..=10).contains(&w));
        }
    }

    #[test]
    fn sparse_radius_still_connected_via_repair() {
        let g = random_geometric(50, 0.01, GeneratorConfig::unit(4));
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        random_geometric(10, 0.0, GeneratorConfig::unit(1));
    }
}
