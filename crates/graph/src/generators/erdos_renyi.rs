//! Erdős–Rényi random graphs, `G(n, p)` and `G(n, m)` variants.

use super::{connect_components, GeneratorConfig};
use crate::csr::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// `G(n, p)`: each of the `n(n-1)/2` possible edges is present independently
/// with probability `p`.  The result is then augmented (if necessary) with a
/// minimal set of connecting edges so the returned graph is connected.
///
/// For `p = c/n` with `c > 1` the augmentation is almost always tiny, so the
/// degree distribution is essentially unchanged.
pub fn erdos_renyi(n: usize, p: f64, config: GeneratorConfig) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = config.rng();
    let mut builder = GraphBuilder::new(n);
    let mut edge_list: Vec<(usize, usize)> = Vec::new();

    if p > 0.0 {
        // Geometric skipping (Batagelj–Brandes): iterate over the implicit
        // edge enumeration and skip ahead by geometrically distributed gaps.
        // O(n + m) instead of O(n^2) when p is small.
        let log_q = (1.0 - p).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        let n_i = n as i64;
        while v < n_i {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p >= 1.0 {
                0
            } else {
                (r.ln() / log_q).floor() as i64
            };
            w += 1 + skip;
            while w >= v && v < n_i {
                w -= v;
                v += 1;
            }
            if v < n_i {
                let (u, t) = (w as usize, v as usize);
                builder.add_edge_idx(u, t, config.weights.sample(&mut rng));
                edge_list.push((u, t));
            }
        }
    }

    connect_components(&mut builder, &mut rng, config.weights, &edge_list);
    builder.build()
}

/// `G(n, m)`: exactly `m` distinct edges chosen uniformly at random (then
/// connected as in [`erdos_renyi`]).
pub fn erdos_renyi_gnm(n: usize, m: usize, config: GeneratorConfig) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "cannot place {m} edges in a simple graph on {n} nodes (max {max_edges})"
    );
    let mut rng = config.rng();
    let mut builder = GraphBuilder::new(n);
    let mut chosen = std::collections::BTreeSet::new();
    let mut edge_list = Vec::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            builder.add_edge_idx(key.0, key.1, config.weights.sample(&mut rng));
            edge_list.push(key);
        }
    }
    connect_components(&mut builder, &mut rng, config.weights, &edge_list);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected;

    #[test]
    fn gnp_is_connected_and_roughly_right_density() {
        let n = 200;
        let g = erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::unit(17));
        assert_eq!(g.num_nodes(), n);
        assert!(is_connected(&g));
        // Expected edges ~ n*8/2 = 800; allow wide tolerance.
        assert!(g.num_edges() > 500, "too sparse: {}", g.num_edges());
        assert!(g.num_edges() < 1200, "too dense: {}", g.num_edges());
    }

    #[test]
    fn gnp_deterministic_for_fixed_seed() {
        let a = erdos_renyi(100, 0.05, GeneratorConfig::unit(5));
        let b = erdos_renyi(100, 0.05, GeneratorConfig::unit(5));
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.undirected_edges().collect();
        let eb: Vec<_> = b.undirected_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let a = erdos_renyi(100, 0.05, GeneratorConfig::unit(5));
        let b = erdos_renyi(100, 0.05, GeneratorConfig::unit(6));
        let ea: Vec<_> = a.undirected_edges().collect();
        let eb: Vec<_> = b.undirected_edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn gnp_zero_probability_still_connected() {
        let g = erdos_renyi(10, 0.0, GeneratorConfig::unit(3));
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 9); // exactly a connecting tree/path
    }

    #[test]
    fn gnp_full_probability_is_complete() {
        let n = 20;
        let g = erdos_renyi(n, 1.0, GeneratorConfig::unit(3));
        assert_eq!(g.num_edges(), n * (n - 1) / 2);
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 120, GeneratorConfig::uniform(9, 1, 10));
        // connect_components may add a few extra edges
        assert!(g.num_edges() >= 120);
        assert!(g.num_edges() <= 120 + 50);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_too_many_edges_panics() {
        erdos_renyi_gnm(4, 100, GeneratorConfig::unit(1));
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn gnp_invalid_probability_panics() {
        erdos_renyi(10, 1.5, GeneratorConfig::unit(1));
    }
}
