//! Grid and torus topologies: structured overlays with `S = Θ(√n)`.

use super::GeneratorConfig;
use crate::csr::Graph;
use crate::GraphBuilder;

/// `rows × cols` 2-D grid (4-neighborhood, no wraparound).
pub fn grid(rows: usize, cols: usize, config: GeneratorConfig) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let mut rng = config.rng();
    let n = rows * cols;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge_idx(idx(r, c), idx(r, c + 1), config.weights.sample(&mut rng));
            }
            if r + 1 < rows {
                builder.add_edge_idx(idx(r, c), idx(r + 1, c), config.weights.sample(&mut rng));
            }
        }
    }
    builder.build()
}

/// `rows × cols` 2-D torus (grid with wraparound edges).
pub fn torus(rows: usize, cols: usize, config: GeneratorConfig) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus needs at least 3x3 to avoid parallel wrap edges"
    );
    let mut rng = config.rng();
    let n = rows * cols;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            builder.add_edge_idx(
                idx(r, c),
                idx(r, (c + 1) % cols),
                config.weights.sample(&mut rng),
            );
            builder.add_edge_idx(
                idx(r, c),
                idx((r + 1) % rows, c),
                config.weights.sample(&mut rng),
            );
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameters;
    use crate::generators::is_connected;

    #[test]
    fn grid_counts() {
        let g = grid(4, 5, GeneratorConfig::unit(1));
        assert_eq!(g.num_nodes(), 20);
        // edges: 4*(5-1) horizontal + (4-1)*5 vertical = 16 + 15 = 31
        assert_eq!(g.num_edges(), 31);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = grid(4, 4, GeneratorConfig::unit(1));
        let d = diameters(&g);
        assert_eq!(d.hop_diameter, 6); // (4-1)+(4-1)
        assert_eq!(d.shortest_path_diameter, 6);
    }

    #[test]
    fn single_row_grid_is_path() {
        let g = grid(1, 7, GeneratorConfig::unit(1));
        assert_eq!(g.num_edges(), 6);
        assert_eq!(diameters(&g).hop_diameter, 6);
    }

    #[test]
    fn torus_counts_and_degree() {
        let g = torus(4, 4, GeneratorConfig::unit(1));
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32); // 2 per node
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_diameter_halves_grid() {
        let g = torus(6, 6, GeneratorConfig::unit(1));
        assert_eq!(diameters(&g).hop_diameter, 6); // 3 + 3
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn small_torus_panics() {
        torus(2, 5, GeneratorConfig::unit(1));
    }

    #[test]
    fn weighted_grid_deterministic() {
        let a = grid(5, 5, GeneratorConfig::uniform(3, 1, 9));
        let b = grid(5, 5, GeneratorConfig::uniform(3, 1, 9));
        let ea: Vec<_> = a.undirected_edges().collect();
        let eb: Vec<_> = b.undirected_edges().collect();
        assert_eq!(ea, eb);
    }
}
