//! Synthetic network topologies used by the experiment harness.
//!
//! The paper's theorems hold for *all* weighted graphs, with round complexity
//! parameterized by the shortest-path diameter `S`.  To exercise the full
//! range of that parameter the harness uses several families:
//!
//! | family | S behaviour | motivation in the paper |
//! |---|---|---|
//! | [`erdos_renyi`] | `S = O(log n)` w.h.p. | Internet/P2P-like expanders (Section 1) |
//! | [`random_geometric`] | `S = Θ(√n)` | wireless / proximity overlays |
//! | [`grid`] / torus | `S = Θ(√n)` | structured overlays, worst-ish case for Bellman–Ford |
//! | [`ring`] | `S = Θ(n)` | adversarial high-S case (round bounds are tight in S) |
//! | [`random_tree`] / [`balanced_tree`] | `S = Θ(log n)`..`Θ(n)` | hierarchical overlays |
//! | [`preferential_attachment`] | power-law degrees | social/P2P networks (Section 2.1) |
//! | [`waxman`] | Internet-like locality | classic Internet topology model |
//!
//! Every generator takes an explicit RNG seed and a [`WeightModel`]; all
//! generators guarantee a *connected* graph (the paper assumes connectivity)
//! either by construction or by augmenting with a connecting spanning
//! structure.

use crate::csr::{Graph, NodeId};
use crate::union_find::UnionFind;
use crate::{GraphBuilder, Weight};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

mod erdos_renyi;
mod geometric;
mod grid;
mod preferential;
mod ring;
mod tree;
mod waxman;

pub use erdos_renyi::{erdos_renyi, erdos_renyi_gnm};
pub use geometric::random_geometric;
pub use grid::{grid, torus};
pub use preferential::preferential_attachment;
pub use ring::{ring, ring_with_chords};
pub use tree::{balanced_tree, random_tree};
pub use waxman::waxman;

/// How edge weights are assigned by the generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// Every edge has weight 1 (unweighted network; `S == D`).
    Unit,
    /// Weights drawn uniformly from `[lo, hi]` (inclusive).
    UniformRange {
        /// Smallest possible weight (must be ≥ 1 to keep `S` well behaved).
        lo: Weight,
        /// Largest possible weight.
        hi: Weight,
    },
    /// Heavy-tailed weights: `ceil(scale / u)` where `u ~ Uniform(0, 1]`,
    /// clamped to `[1, cap]`.  Produces a few very heavy edges, which widens
    /// the gap between hop-shortest and weight-shortest paths (S vs D).
    HeavyTail {
        /// Scale of the distribution; typical weights are around `scale`.
        scale: Weight,
        /// Upper clamp on generated weights.
        cap: Weight,
    },
}

impl WeightModel {
    /// Draw one edge weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::UniformRange { lo, hi } => {
                assert!(lo <= hi, "UniformRange requires lo <= hi");
                rng.gen_range(lo..=hi)
            }
            WeightModel::HeavyTail { scale, cap } => {
                let u: f64 = rng.gen_range(f64::EPSILON..=1.0);
                let w = (scale as f64 / u).ceil() as u128;
                (w.min(cap as u128).max(1)) as Weight
            }
        }
    }
}

/// Shared parameters for all generators.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// RNG seed; identical seeds produce identical graphs.
    pub seed: u64,
    /// Edge-weight model.
    pub weights: WeightModel,
}

impl GeneratorConfig {
    /// Unit weights with the given seed.
    pub fn unit(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            weights: WeightModel::Unit,
        }
    }

    /// Uniform weights in `[lo, hi]` with the given seed.
    pub fn uniform(seed: u64, lo: Weight, hi: Weight) -> Self {
        GeneratorConfig {
            seed,
            weights: WeightModel::UniformRange { lo, hi },
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Add the fewest edges needed to make the graph described by `builder`
/// connected: components are linked in index order with fresh random-weight
/// edges between uniformly chosen representatives.
///
/// Returns the number of edges added.
pub(crate) fn connect_components<R: Rng>(
    builder: &mut GraphBuilder,
    rng: &mut R,
    weights: WeightModel,
    existing_edges: &[(usize, usize)],
) -> usize {
    let n = builder.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut uf = UnionFind::new(n);
    for &(u, v) in existing_edges {
        uf.union(u, v);
    }
    if uf.num_sets() <= 1 {
        return 0;
    }
    // Collect one representative per component, in node order.
    let mut reps: Vec<usize> = Vec::new();
    let mut seen_roots = std::collections::BTreeSet::new();
    for v in 0..n {
        let root = uf.find(v);
        if seen_roots.insert(root) {
            reps.push(v);
        }
    }
    let mut added = 0;
    for window in reps.windows(2) {
        let (a, b) = (window[0], window[1]);
        if !uf.connected(a, b) {
            builder.add_edge_idx(a, b, weights.sample(rng));
            uf.union(a, b);
            added += 1;
        }
    }
    added
}

/// Convenience: build a named standard suite of test graphs for the
/// experiment harness.  Returns `(name, graph)` pairs.
pub fn standard_suite(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let side = (n as f64).sqrt().round() as usize;
    vec![
        (
            "erdos_renyi_unit",
            erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::unit(seed)),
        ),
        (
            "erdos_renyi_weighted",
            erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 100)),
        ),
        (
            "grid",
            grid(side, side, GeneratorConfig::uniform(seed, 1, 10)),
        ),
        ("ring", ring(n, GeneratorConfig::unit(seed))),
        (
            "preferential",
            preferential_attachment(n, 3, GeneratorConfig::uniform(seed, 1, 50)),
        ),
    ]
}

/// Verify a generated graph is connected (used in debug assertions and
/// tests).
pub fn is_connected(graph: &Graph) -> bool {
    let n = graph.num_nodes();
    if n == 0 {
        return true;
    }
    let hops = crate::shortest_path::bfs_hops(graph, NodeId(0));
    hops.iter().all(|&h| h != usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_model_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(WeightModel::Unit.sample(&mut rng), 1);
        }
    }

    #[test]
    fn weight_model_uniform_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = WeightModel::UniformRange { lo: 3, hi: 9 };
        for _ in 0..200 {
            let w = m.sample(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn weight_model_heavy_tail_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = WeightModel::HeavyTail {
            scale: 10,
            cap: 1000,
        };
        for _ in 0..500 {
            let w = m.sample(&mut rng);
            assert!((1..=1000).contains(&w));
        }
    }

    #[test]
    fn generator_config_constructors() {
        let c = GeneratorConfig::unit(5);
        assert_eq!(c.seed, 5);
        assert_eq!(c.weights, WeightModel::Unit);
        let c = GeneratorConfig::uniform(6, 1, 10);
        assert_eq!(c.weights, WeightModel::UniformRange { lo: 1, hi: 10 });
    }

    #[test]
    fn standard_suite_is_connected() {
        for (name, g) in standard_suite(64, 11) {
            assert!(is_connected(&g), "{name} should be connected");
            assert!(g.num_nodes() >= 60, "{name} too small: {}", g.num_nodes());
        }
    }

    #[test]
    fn connect_components_links_everything() {
        let mut b = GraphBuilder::new(6);
        // Two components: {0,1}, {2,3}; 4 and 5 isolated.
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(2, 3, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let added = connect_components(&mut b, &mut rng, WeightModel::Unit, &[(0, 1), (2, 3)]);
        assert_eq!(added, 3); // 4 components -> 3 connecting edges
        let g = b.build();
        assert!(is_connected(&g));
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(1, 2, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let added = connect_components(&mut b, &mut rng, WeightModel::Unit, &[(0, 1), (1, 2)]);
        assert_eq!(added, 0);
    }
}
