//! Plain-text edge-list persistence for generated networks.
//!
//! Format (one record per line, `#`-prefixed comment lines ignored):
//!
//! ```text
//! # distance-sketches edge list
//! nodes <n>
//! <u> <v> <weight>
//! ...
//! ```
//!
//! The format is intentionally trivial so that generated workloads can be
//! inspected, diffed, and re-used across experiment runs without adding a
//! serialization dependency.

use crate::csr::{Graph, NodeId};
use crate::GraphBuilder;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced when parsing an edge-list file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content with a human-readable description and line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what was wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write `graph` to `writer` in edge-list format.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# distance-sketches edge list")?;
    writeln!(w, "nodes {}", graph.num_nodes())?;
    for (u, v, weight) in graph.undirected_edges() {
        writeln!(w, "{} {} {}", u.0, v.0, weight)?;
    }
    w.flush()?;
    Ok(())
}

/// Write `graph` to the file at `path`.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Read a graph from edge-list text.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let buf = BufReader::new(reader);
    let mut num_nodes: Option<usize> = None;
    // Each edge keeps the 1-based file line it came from, so range errors
    // (which can only be checked once the node count is known) point at the
    // offending line instead of the edge's position in the list.
    let mut edges: Vec<(usize, usize, usize, u64)> = Vec::new();

    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("invalid node count '{rest}'"),
            })?;
            num_nodes = Some(n);
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_field = |s: Option<&str>, what: &str| -> Result<u64, IoError> {
            s.ok_or_else(|| IoError::Parse {
                line: line_no,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| IoError::Parse {
                line: line_no,
                message: format!("invalid {what}"),
            })
        };
        let u = parse_field(parts.next(), "source node")? as usize;
        let v = parse_field(parts.next(), "target node")? as usize;
        let w = parse_field(parts.next(), "weight")?;
        if parts.next().is_some() {
            return Err(IoError::Parse {
                line: line_no,
                message: "trailing fields after weight".to_string(),
            });
        }
        edges.push((line_no, u, v, w));
    }

    let n = num_nodes.ok_or(IoError::Parse {
        line: 0,
        message: "missing 'nodes <n>' header".to_string(),
    })?;
    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    for &(line_no, u, v, w) in &edges {
        if u >= n || v >= n {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("edge ({u}, {v}) out of range for {n} nodes"),
            });
        }
        builder.add_edge(NodeId::from_index(u), NodeId::from_index(v), w);
    }
    Ok(builder.build())
}

/// Read a graph from the file at `path`.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, GeneratorConfig};

    #[test]
    fn round_trip_preserves_graph() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(3, 1, 20));
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(
            g.undirected_edges().collect::<Vec<_>>(),
            g2.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# comment\n\nnodes 3\n# another\n0 1 5\n1 2 7\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(7));
    }

    #[test]
    fn missing_header_is_an_error() {
        let text = "0 1 5\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("nodes"));
    }

    #[test]
    fn malformed_edge_line_is_an_error() {
        let text = "nodes 3\n0 1\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("weight"));
    }

    #[test]
    fn trailing_fields_are_an_error() {
        let text = "nodes 3\n0 1 5 9\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn out_of_range_edge_is_an_error() {
        let text = "nodes 2\n0 5 1\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn out_of_range_error_reports_the_file_line() {
        // The range check runs after parsing (it needs the node count), but
        // the error must still point at the offending *file* line — here
        // line 4, not "the second edge".
        let text = "# header\nnodes 2\n0 1 1\n0 9 1\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 4, "{message}");
                assert!(message.contains("out of range"));
            }
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn isolated_vertices_survive_the_round_trip() {
        // Nodes 2 and 4 have no incident edges; the `nodes <n>` header must
        // preserve them so that sketches built from a re-loaded graph cover
        // the same node-id space (the persistence layer fingerprints n).
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 3);
        b.add_edge(NodeId(1), NodeId(3), 2);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.degree(NodeId(2)), 0);
        assert_eq!(g2.degree(NodeId(4)), 0);
        assert_eq!(g.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn duplicate_edges_canonicalize_to_the_minimum_weight() {
        // An edge list may repeat an edge (both orientations, different
        // weights); loading must collapse duplicates exactly like
        // GraphBuilder does, so that load(save(g)) == g structurally and
        // re-loading an externally produced list with duplicates yields the
        // same fingerprint as building it directly.
        let text = "nodes 3\n0 1 9\n1 0 4\n0 1 7\n1 2 5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4));

        let mut direct = GraphBuilder::new(3);
        direct.add_edge(NodeId(0), NodeId(1), 4);
        direct.add_edge(NodeId(1), NodeId(2), 5);
        assert_eq!(g.fingerprint(), direct.build().fingerprint());

        // And the canonical form round-trips losslessly.
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn file_round_trip() {
        let g = erdos_renyi(20, 0.2, GeneratorConfig::unit(7));
        let dir = std::env::temp_dir().join("netgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
