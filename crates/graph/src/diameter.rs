//! Hop diameter `D` and shortest-path diameter `S`.
//!
//! The paper's round bounds are stated in terms of the *shortest-path
//! diameter* `S` (Section 2.2): for each pair `(u, v)` let `h(u, v)` be the
//! minimum number of hops over all minimum-weight `u`–`v` paths; then
//! `S = max_{u,v} h(u, v)`.  The *hop diameter* `D` is the ordinary
//! unweighted diameter.  `D ≤ S` always holds, and the gap between them is
//! exactly what makes sketch-based querying attractive (Section 2.1).
//!
//! Exact computation is `n` single-source runs; for larger graphs an
//! estimator over a sampled subset of sources is provided (it is a lower
//! bound on the true value, which is the conservative direction for checking
//! the paper's upper bounds on rounds).

use crate::csr::{Graph, NodeId};
use crate::shortest_path::{bfs_hops, multi_source_dijkstra};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Exact and estimated diameter quantities of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterReport {
    /// Hop diameter `D` (maximum unweighted eccentricity).
    pub hop_diameter: usize,
    /// Shortest-path diameter `S` (maximum hop count of a minimum-hop
    /// shortest path).
    pub shortest_path_diameter: usize,
    /// Number of source nodes the maxima were taken over (`n` for exact).
    pub sources_examined: usize,
}

/// Compute the exact hop diameter `D`.
///
/// Returns `usize::MAX` if the graph is disconnected.
pub fn hop_diameter(graph: &Graph) -> usize {
    let mut best = 0usize;
    for u in graph.nodes() {
        let hops = bfs_hops(graph, u);
        for &h in &hops {
            if h == usize::MAX {
                return usize::MAX;
            }
            best = best.max(h);
        }
    }
    best
}

/// Compute the exact shortest-path diameter `S`.
///
/// For every source we run Dijkstra with hop-minimizing tie-breaking (see
/// [`crate::shortest_path::multi_source_dijkstra`]), so `hops[v]` is the
/// fewest hops among minimum-weight paths, exactly the paper's `h(u, v)`.
/// Returns `usize::MAX` if the graph is disconnected.
pub fn shortest_path_diameter(graph: &Graph) -> usize {
    let mut best = 0usize;
    for u in graph.nodes() {
        let tree = multi_source_dijkstra(graph, &[u]);
        for &h in &tree.hops {
            if h == usize::MAX {
                return usize::MAX;
            }
            best = best.max(h);
        }
    }
    best
}

/// Compute both diameters exactly.
pub fn diameters(graph: &Graph) -> DiameterReport {
    DiameterReport {
        hop_diameter: hop_diameter(graph),
        shortest_path_diameter: shortest_path_diameter(graph),
        sources_examined: graph.num_nodes(),
    }
}

/// Estimate both diameters from `num_sources` random sources (plus the
/// extremal node found by a double-sweep heuristic).  The estimates are lower
/// bounds on the exact values.
pub fn estimate_diameters(graph: &Graph, num_sources: usize, seed: u64) -> DiameterReport {
    let n = graph.num_nodes();
    if n == 0 {
        return DiameterReport {
            hop_diameter: 0,
            shortest_path_diameter: 0,
            sources_examined: 0,
        };
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.shuffle(&mut rng);
    let mut sources: Vec<NodeId> = nodes.into_iter().take(num_sources.max(1)).collect();

    // Double sweep: from the first source, add the farthest node as another
    // source; this sharply improves diameter lower bounds on path-like graphs.
    let first_tree = multi_source_dijkstra(graph, &[sources[0]]);
    if let Some((far_idx, _)) = first_tree
        .dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != crate::INFINITY)
        .max_by_key(|(_, &d)| d)
    {
        sources.push(NodeId::from_index(far_idx));
    }

    let mut hop_best = 0usize;
    let mut sp_best = 0usize;
    for &s in &sources {
        let hops = bfs_hops(graph, s);
        for &h in &hops {
            if h != usize::MAX {
                hop_best = hop_best.max(h);
            }
        }
        let tree = multi_source_dijkstra(graph, &[s]);
        for &h in &tree.hops {
            if h != usize::MAX {
                sp_best = sp_best.max(h);
            }
        }
    }
    DiameterReport {
        hop_diameter: hop_best,
        shortest_path_diameter: sp_best.max(hop_best),
        sources_examined: sources.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Unweighted ring of 6 nodes: D = S = 3.
    fn ring6() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..6 {
            b.add_edge_idx(i, (i + 1) % 6, 1);
        }
        b.build()
    }

    /// A graph where S > D: a heavy chord makes the hop-short path not the
    /// weighted-shortest path.
    ///
    /// Ring 0-1-2-3-4-5-0 with weight 1 edges, plus chord (0,3) with weight 100.
    fn ring_with_heavy_chord() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..6 {
            b.add_edge_idx(i, (i + 1) % 6, 1);
        }
        b.add_edge_idx(0, 3, 100);
        b.build()
    }

    #[test]
    fn ring_diameters() {
        let g = ring6();
        let r = diameters(&g);
        assert_eq!(r.hop_diameter, 3);
        assert_eq!(r.shortest_path_diameter, 3);
        assert_eq!(r.sources_examined, 6);
    }

    #[test]
    fn heavy_chord_separates_s_from_d() {
        let g = ring_with_heavy_chord();
        // Hop diameter: with the chord, every pair is within 3 hops still,
        // but 0-3 is now 1 hop, so D <= 3.
        let d = hop_diameter(&g);
        // Weighted shortest path 0..3 goes around the ring: 3 hops of weight 1.
        let s = shortest_path_diameter(&g);
        assert!(d <= 3);
        assert_eq!(s, 3);
        assert!(s >= d);
    }

    #[test]
    fn path_graph_diameters() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge_idx(i, i + 1, 2);
        }
        let g = b.build();
        let r = diameters(&g);
        assert_eq!(r.hop_diameter, 4);
        assert_eq!(r.shortest_path_diameter, 4);
    }

    #[test]
    fn disconnected_graph_reports_max() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        assert_eq!(hop_diameter(&g), usize::MAX);
        assert_eq!(shortest_path_diameter(&g), usize::MAX);
    }

    #[test]
    fn estimate_is_lower_bound_and_finds_path_diameter() {
        let mut b = GraphBuilder::new(32);
        for i in 0..31 {
            b.add_edge_idx(i, i + 1, 1);
        }
        let g = b.build();
        let exact = diameters(&g);
        let est = estimate_diameters(&g, 4, 42);
        assert!(est.hop_diameter <= exact.hop_diameter);
        assert!(est.shortest_path_diameter <= exact.shortest_path_diameter);
        // Double sweep should find the true diameter of a path.
        assert_eq!(est.hop_diameter, 31);
        assert_eq!(est.shortest_path_diameter, 31);
    }

    #[test]
    fn estimate_on_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let est = estimate_diameters(&g, 3, 1);
        assert_eq!(est.sources_examined, 0);
        assert_eq!(est.hop_diameter, 0);
    }

    #[test]
    fn single_node_graph() {
        let g = GraphBuilder::new(1).build();
        let r = diameters(&g);
        assert_eq!(r.hop_diameter, 0);
        assert_eq!(r.shortest_path_diameter, 0);
    }
}
