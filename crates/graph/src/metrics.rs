//! Summary statistics about generated networks, used in experiment reports
//! (every EXPERIMENTS.md row records the workload it ran on).

use crate::csr::Graph;
use crate::union_find::UnionFind;
use crate::Weight;

/// Degree distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2|E| / n`).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Edge-weight distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightStats {
    /// Minimum edge weight.
    pub min: Weight,
    /// Maximum edge weight.
    pub max: Weight,
    /// Mean edge weight.
    pub mean: f64,
}

/// Full per-graph report.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Number of connected components.
    pub num_components: usize,
    /// Degree statistics.
    pub degrees: DegreeStats,
    /// Weight statistics (`None` for an edgeless graph).
    pub weights: Option<WeightStats>,
}

/// Number of connected components.
pub fn num_components(graph: &Graph) -> usize {
    let n = graph.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut uf = UnionFind::new(n);
    for (u, v, _) in graph.undirected_edges() {
        uf.union(u.index(), v.index());
    }
    uf.num_sets()
}

/// Compute degree statistics.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
        };
    }
    let mut degrees: Vec<usize> = graph.nodes().map(|u| graph.degree(u)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: 2.0 * graph.num_edges() as f64 / n as f64,
        median: degrees[n / 2],
    }
}

/// Compute weight statistics; `None` if the graph has no edges.
pub fn weight_stats(graph: &Graph) -> Option<WeightStats> {
    if graph.num_edges() == 0 {
        return None;
    }
    let mut min = Weight::MAX;
    let mut max = 0;
    let mut sum: u128 = 0;
    for (_, _, w) in graph.undirected_edges() {
        min = min.min(w);
        max = max.max(w);
        sum += w as u128;
    }
    Some(WeightStats {
        min,
        max,
        mean: sum as f64 / graph.num_edges() as f64,
    })
}

/// Compute the full [`GraphReport`].
pub fn report(graph: &Graph) -> GraphReport {
    GraphReport {
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        num_components: num_components(graph),
        degrees: degree_stats(graph),
        weights: weight_stats(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, GeneratorConfig};
    use crate::GraphBuilder;

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(2, 3, 1);
        let g = b.build();
        assert_eq!(num_components(&g), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn components_of_connected_graph() {
        let g = erdos_renyi(64, 0.2, GeneratorConfig::unit(1));
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn degree_stats_on_star() {
        let mut b = GraphBuilder::new(5);
        for i in 1..5 {
            b.add_edge_idx(0, i, 1);
        }
        let g = b.build();
        let d = degree_stats(&g);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 4);
        assert!((d.mean - 1.6).abs() < 1e-9);
        assert_eq!(d.median, 1);
    }

    #[test]
    fn weight_stats_basic() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 2);
        b.add_edge_idx(1, 2, 6);
        let g = b.build();
        let w = weight_stats(&g).unwrap();
        assert_eq!(w.min, 2);
        assert_eq!(w.max, 6);
        assert!((w.mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weight_stats_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert!(weight_stats(&g).is_none());
    }

    #[test]
    fn full_report() {
        let g = erdos_renyi(50, 0.1, GeneratorConfig::uniform(2, 1, 10));
        let r = report(&g);
        assert_eq!(r.num_nodes, 50);
        assert_eq!(r.num_components, 1);
        assert!(r.degrees.max >= r.degrees.min);
        let w = r.weights.unwrap();
        assert!(w.min >= 1 && w.max <= 10);
    }

    #[test]
    fn empty_graph_report() {
        let g = GraphBuilder::new(0).build();
        let r = report(&g);
        assert_eq!(r.num_nodes, 0);
        assert_eq!(r.num_components, 0);
        assert_eq!(r.degrees.mean, 0.0);
    }
}
