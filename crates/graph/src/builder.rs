//! Edge-list builder that produces validated CSR [`Graph`]s.
//!
//! The builder accepts arbitrary (possibly duplicated, possibly self-loop)
//! edge insertions, then canonicalizes: self-loops are dropped, parallel
//! edges are collapsed to the minimum weight (the only one that can ever lie
//! on a shortest path), and the adjacency of every node is sorted by target
//! id so that CSR scans and equality comparisons are deterministic.

use crate::csr::{Graph, NodeId};
use crate::Weight;

/// Incremental builder for a weighted undirected [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Canonicalized edges (min(u,v), max(u,v), w); may contain duplicates
    /// until `build`.
    edges: Vec<(u32, u32, Weight)>,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Create a builder for a graph on `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dropped_self_loops: 0,
        }
    }

    /// Create a builder with pre-reserved capacity for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(num_edges),
            dropped_self_loops: 0,
        }
    }

    /// Number of nodes this builder was created for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edge insertions accepted so far (before deduplication).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of self-loops that were silently dropped.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Add an undirected edge `(u, v)` with weight `w`.
    ///
    /// Self-loops are ignored (they can never appear on a shortest path).
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(
            u.index() < self.num_nodes && v.index() < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        let (a, b) = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.push((a, b, w));
    }

    /// Add an edge by raw indices; convenience for generators and I/O.
    pub fn add_edge_idx(&mut self, u: usize, v: usize, w: Weight) {
        self.add_edge(NodeId::from_index(u), NodeId::from_index(v), w);
    }

    /// Returns `true` if an edge between `u` and `v` has already been added.
    ///
    /// Linear scan — intended for generators that add few edges per node, not
    /// for hot paths.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.iter().any(|&(x, y, _)| x == a && y == b)
    }

    /// Finalize into a CSR [`Graph`].
    ///
    /// Parallel edges are collapsed keeping the minimum weight.
    pub fn build(mut self) -> Graph {
        // Sort canonical edges so duplicates are adjacent; keep minimum weight.
        self.edges.sort_unstable();
        self.edges.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                // `prev` is retained; keep the smaller weight there.
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let n = self.num_nodes;
        let m = self.edges.len();

        // Count degrees.
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        // Prefix sums -> offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }

        // Fill adjacency using a moving cursor per node.
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![NodeId(0); 2 * m];
        let mut weights = vec![0 as Weight; 2 * m];
        for &(u, v, w) in &self.edges {
            let (ui, vi) = (u as usize, v as usize);
            targets[cursor[ui]] = NodeId(v);
            weights[cursor[ui]] = w;
            cursor[ui] += 1;
            targets[cursor[vi]] = NodeId(u);
            weights[cursor[vi]] = w;
            cursor[vi] += 1;
        }

        // Sort each adjacency slice by target id for determinism.
        for u in 0..n {
            let lo = offsets[u];
            let hi = offsets[u + 1];
            let mut pairs: Vec<(NodeId, Weight)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(t, _)| t);
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                targets[lo + i] = t;
                weights[lo + i] = w;
            }
        }

        Graph::from_csr(offsets, targets, weights, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 0);
        }
    }

    #[test]
    fn self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(1), NodeId(1), 5);
        b.add_edge(NodeId(0), NodeId(1), 2);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 9);
        b.add_edge(NodeId(1), NodeId(0), 4);
        b.add_edge(NodeId(0), NodeId(1), 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4));
    }

    #[test]
    fn adjacency_is_sorted_by_target() {
        let mut b = GraphBuilder::new(5);
        b.add_edge_idx(2, 4, 1);
        b.add_edge_idx(2, 0, 1);
        b.add_edge_idx(2, 3, 1);
        b.add_edge_idx(2, 1, 1);
        let g = b.build();
        let targets: Vec<u32> = g.neighbors(NodeId(2)).map(|e| e.to.0).collect();
        assert_eq!(targets, vec![0, 1, 3, 4]);
    }

    #[test]
    fn contains_edge_detects_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 2, 1);
        assert!(b.contains_edge(NodeId(0), NodeId(2)));
        assert!(b.contains_edge(NodeId(2), NodeId(0)));
        assert!(!b.contains_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_idx(0, 2, 1);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = GraphBuilder::new(4);
        let mut b = GraphBuilder::with_capacity(4, 3);
        for (u, v, w) in [(0, 1, 1), (1, 2, 2), (2, 3, 3)] {
            a.add_edge_idx(u, v, w);
            b.add_edge_idx(u, v, w);
        }
        let ga = a.build();
        let gb = b.build();
        assert_eq!(ga.num_edges(), gb.num_edges());
        for u in ga.nodes() {
            let ea: Vec<_> = ga.neighbors(u).collect();
            let eb: Vec<_> = gb.neighbors(u).collect();
            assert_eq!(ea, eb);
        }
    }
}
