//! `netgraph` — the weighted-graph substrate used by the distance-sketch
//! reproduction of *Efficient Computation of Distance Sketches in Distributed
//! Networks* (Das Sarma, Dinitz, Pandurangan, SPAA 2012).
//!
//! The paper models a communication network as a weighted, undirected,
//! connected `n`-node graph `G = (V, E)` with nonnegative edge weights that
//! are polynomial in `n` (Section 2.2).  This crate provides:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation with
//!   O(1) access to the neighbor slice of a node, designed so that the CONGEST
//!   simulator can iterate adjacencies without allocation in the hot loop.
//! * [`GraphBuilder`] — an edge-list builder that validates, deduplicates and
//!   symmetrizes input edges.
//! * [`generators`] — synthetic topology families used by the experiment
//!   harness (Erdős–Rényi, random geometric, grid/torus, ring, trees,
//!   preferential attachment, Waxman) together with edge-weight models.
//! * [`shortest_path`] — exact Dijkstra / multi-source Dijkstra / BFS used as
//!   ground truth when measuring stretch.
//! * [`diameter`] — the hop diameter `D` and the shortest-path diameter `S`
//!   (the quantity the paper's round bounds are stated in).
//! * [`completion`] — the metric completion of a node subset, used to verify
//!   the Lemma 4.5 claim about net-restricted sketches.
//! * [`fingerprint`] — structural graph fingerprints (`n`, `m`, edge
//!   checksum) used by the sketch persistence layer to refuse serving a
//!   snapshot against the wrong graph.
//! * [`apsp`] — all-pairs (or sampled-pairs) ground-truth distance tables.
//! * [`io`] — a plain-text edge-list format for persisting generated networks.
//! * [`metrics`] — degree/weight/connectivity summaries used in experiment
//!   reports.
//!
//! # Conventions
//!
//! Nodes are dense indices `0..n` wrapped in [`NodeId`].  Distances and edge
//! weights are `u64`; the sentinel [`INFINITY`] denotes "unreachable".  All
//! randomized generators take an explicit seed so experiments are exactly
//! reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apsp;
pub mod builder;
pub mod completion;
pub mod csr;
pub mod diameter;
pub mod fingerprint;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod shortest_path;
pub mod union_find;

pub use builder::GraphBuilder;
pub use csr::{EdgeRef, Graph, NodeId};
pub use fingerprint::GraphFingerprint;

/// Edge weight / distance type used throughout the workspace.
///
/// The paper assumes weights polynomial in `n`, i.e. representable in one
/// O(log n)-bit word; `u64` is the natural machine analogue.
pub type Weight = u64;

/// Distance value: same representation as [`Weight`], with [`INFINITY`]
/// denoting "no path known / unreachable".
pub type Distance = u64;

/// Sentinel for an unknown or unreachable distance.
///
/// We use `u64::MAX` and rely on saturating arithmetic when relaxing edges so
/// that `INFINITY + w` never wraps.
pub const INFINITY: Distance = u64::MAX;

/// Saturating distance addition: `add_dist(INFINITY, w) == INFINITY`.
#[inline]
pub fn add_dist(a: Distance, b: Distance) -> Distance {
    a.saturating_add(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_dist_saturates_at_infinity() {
        assert_eq!(add_dist(INFINITY, 5), INFINITY);
        assert_eq!(add_dist(5, INFINITY), INFINITY);
        assert_eq!(add_dist(INFINITY, INFINITY), INFINITY);
    }

    #[test]
    fn add_dist_normal_values() {
        assert_eq!(add_dist(3, 4), 7);
        assert_eq!(add_dist(0, 0), 0);
    }
}
